//! Property-based tests (proptest) on the core invariants: scrambler
//! bijectivity, schedule correctness, region arithmetic, and row-bit
//! algebra, over randomized inputs.

use proptest::prelude::*;

use parbor_core::{LevelPlan, Parbor, ParborConfig, RoundSchedule};
use parbor_dram::{
    hamiltonian_walk, walk_distance_set, IdentityScrambler, PatternKind, RemapTable, RowBits,
    Scrambler, TileWalkScrambler, Vendor,
};

proptest! {
    #[test]
    fn rowbits_flip_is_involution(len in 1usize..600, bits in prop::collection::vec(0usize..600, 0..40)) {
        let mut row = RowBits::zeros(len);
        let bits: Vec<usize> = bits.into_iter().map(|b| b % len).collect();
        for &b in &bits {
            row.flip(b);
        }
        for &b in &bits {
            row.flip(b);
        }
        prop_assert_eq!(row.count_ones(), 0);
    }

    #[test]
    fn rowbits_inversion_complements_counts(len in 1usize..700, seed in any::<u64>()) {
        let row = PatternKind::Random { seed }.row_bits(0, len);
        let inv = row.inverted();
        prop_assert_eq!(row.count_ones() + inv.count_ones(), len);
        // Double inversion is identity.
        prop_assert_eq!(inv.inverted(), row);
    }

    #[test]
    fn diff_indices_matches_manual_xor(len in 1usize..300, seed in any::<u64>()) {
        let a = PatternKind::Random { seed }.row_bits(0, len);
        let b = PatternKind::Random { seed: seed ^ 1 }.row_bits(1, len);
        let diffs = a.diff_indices(&b);
        for i in 0..len {
            let differs = a.get(i) != b.get(i);
            prop_assert_eq!(differs, diffs.contains(&i));
        }
    }

    #[test]
    fn vendor_scramblers_bijective_at_any_width(
        vendor_idx in 0usize..3,
        groups in 1usize..6,
    ) {
        let vendor = Vendor::ALL[vendor_idx];
        let span = match vendor {
            Vendor::A => 1024,
            Vendor::B => 512,
            Vendor::C => 128,
        };
        let width = span * groups;
        let s = vendor.scrambler(width);
        let mut seen = vec![false; width];
        for col in 0..width {
            let p = s.system_to_physical(col);
            prop_assert!(!seen[p]);
            seen[p] = true;
            prop_assert_eq!(s.physical_to_system(p), col);
        }
    }

    #[test]
    fn remap_preserves_bijection(
        pairs in prop::collection::vec((0usize..512, 512usize..1024), 0..12),
    ) {
        // Deduplicate positions to satisfy RemapTable's validation.
        let mut used = std::collections::HashSet::new();
        let pairs: Vec<(usize, usize)> = pairs
            .into_iter()
            .filter(|&(a, b)| used.insert(a) && used.insert(b))
            .collect();
        let base = std::sync::Arc::new(IdentityScrambler::new(1024));
        let s = RemapTable::new(pairs).unwrap().apply(base).unwrap();
        let mut seen = vec![false; 1024];
        for col in 0..1024 {
            let p = s.system_to_physical(col);
            prop_assert!(!seen[p]);
            seen[p] = true;
            prop_assert_eq!(s.physical_to_system(p), col);
        }
    }

    #[test]
    fn schedules_verify_for_random_distance_sets(
        mags in prop::collection::btree_set(1i64..64, 1..4),
        order in 1u32..4,
    ) {
        let distances: Vec<i64> = mags.iter().flat_map(|&m| [m, -m]).collect();
        let s = RoundSchedule::with_order(&distances, 8192, order).unwrap();
        prop_assert!(s.verify(&distances));
        // Every chunk position is a victim exactly once.
        let mut count = vec![0usize; s.chunk()];
        for r in 0..s.rounds_per_polarity() {
            for &v in s.victims(r) {
                count[v as usize] += 1;
            }
        }
        prop_assert!(count.iter().all(|&c| c == 1));
    }

    #[test]
    fn level_plan_region_ranges_partition_the_row(width_exp in 1u32..4) {
        // Widths 2·8^k: 16, 128, 1024.
        let width = 2 * 8usize.pow(width_exp);
        let plan = LevelPlan::paper(width).unwrap();
        for level in 0..plan.levels() {
            let mut covered = 0usize;
            for idx in 0..plan.region_count(level) {
                let (lo, hi) = plan.region_range(idx, level).unwrap();
                prop_assert_eq!(lo, covered);
                covered = hi;
            }
            prop_assert_eq!(covered, width);
        }
    }

    #[test]
    fn hamiltonian_walks_honor_step_sets(
        len in 8usize..48,
        s1 in 1u64..5,
        s2 in 1u64..7,
    ) {
        // Always include step 1 so a walk exists.
        let steps = vec![1u64, s1, s2];
        let walk = hamiltonian_walk(len, &steps).unwrap();
        let mut sorted = walk.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..len).collect::<Vec<_>>());
        for d in walk_distance_set(&walk) {
            prop_assert!(steps.contains(&d));
        }
    }

    #[test]
    fn observability_never_perturbs_the_pipeline(seed in 1u64..64, vendor_idx in 0usize..3) {
        // Recording metrics must not change a single pipeline outcome:
        // NullRecorder, InMemoryRecorder, and ShardedRecorder runs of the
        // same chip produce identical reports (and match the unrecorded
        // default).
        use parbor_dram::{ChipGeometry, DramChip};
        use parbor_obs::{metrics, InMemoryRecorder, RecorderHandle, ShardedRecorder};

        let vendor = Vendor::ALL[vendor_idx];
        let geometry = ChipGeometry::new(1, 64, 8192).unwrap();
        let run = |rec: RecorderHandle| {
            let mut chip = DramChip::new(geometry, vendor, seed)
                .unwrap()
                .with_recorder(rec.clone());
            let report = Parbor::new(ParborConfig::default())
                .with_recorder(rec)
                .run(&mut chip)
                .unwrap();
            (
                report.victim_count,
                report.recursion,
                report.chipwide.rounds,
                report.chipwide.failing,
            )
        };
        let null = run(RecorderHandle::null());
        let mem_rec = InMemoryRecorder::handle();
        let mem = run(RecorderHandle::from(mem_rec.clone()));
        prop_assert_eq!(&null, &mem);
        let sharded_rec = ShardedRecorder::handle();
        let sharded = run(RecorderHandle::from(sharded_rec.clone()));
        prop_assert_eq!(&null, &sharded);
        // ...and both recording runs really recorded the phases,
        // identically to each other.
        prop_assert!(mem_rec.counter(metrics::recursion::TESTS) > 0);
        prop_assert!(mem_rec.counter(metrics::chipwide::ROUNDS) > 0);
        let mem_snap = mem_rec.snapshot();
        let sharded_snap = sharded_rec.snapshot();
        prop_assert_eq!(&mem_snap.counters, &sharded_snap.counters);
        prop_assert_eq!(&mem_snap.histograms, &sharded_snap.histograms);
    }

    #[test]
    fn histogram_percentiles_match_the_sorted_sample_oracle(
        samples in prop::collection::vec(0u64..2_000_000, 1..400),
    ) {
        // p50/p99/p999 must land within one bucket of the exact
        // sorted-sample percentile: the snapshot's answer and the oracle's
        // answer fall in the same or adjacent log-linear buckets.
        use parbor_obs::hist::{bucket_index, HdrHistogram};

        let mut h = HdrHistogram::new();
        for &v in &samples {
            h.record(v);
        }
        let snap = h.snapshot();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.50, 0.99, 0.999] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
            let exact = sorted[rank - 1];
            let approx = snap.p(q);
            let distance = bucket_index(approx).abs_diff(bucket_index(exact));
            prop_assert!(
                distance <= 1,
                "p({}) = {} vs exact {} ({} buckets apart, n={})",
                q, approx, exact, distance, sorted.len()
            );
        }
        prop_assert_eq!(snap.min, sorted[0]);
        prop_assert_eq!(snap.max, *sorted.last().unwrap());
    }

    #[test]
    fn parallel_module_execution_is_bit_identical_to_serial(
        seed in 1u64..64,
        vendor_idx in 0usize..3,
        chips in 2usize..5,
        pattern_seed in any::<u64>(),
    ) {
        // The scoped-thread per-chip path must produce the same flips in the
        // same order as the serial path — not just the same set. ParallelMode
        // is forced (Always / Never) so the comparison is meaningful even on
        // single-core hosts where Auto degrades to serial.
        use parbor_hal::{ParallelMode, RoundPlan, TestPort};
use parbor_dram::{ChipGeometry, ModuleConfig, RowId};

        let vendor = Vendor::ALL[vendor_idx];
        let build = |mode: ParallelMode| {
            let mut module = ModuleConfig::new(vendor)
                .geometry(ChipGeometry::new(1, 24, 1024).unwrap())
                .chips(chips)
                .seed(seed)
                .build()
                .unwrap();
            module.set_parallel_mode(mode);
            module
        };
        let plans = |module: &parbor_dram::DramModule| {
            let units = module.units();
            (0..6u64)
                .map(|round| {
                    RoundPlan::broadcast(units, &(0..24).map(|r| RowId::new(0, r)).collect::<Vec<_>>(), |row| {
                        PatternKind::Random { seed: pattern_seed ^ round ^ u64::from(row.row) }
                            .row_bits(row.row, 1024)
                    })
                })
                .collect::<Vec<_>>()
        };

        let mut par = build(ParallelMode::Always);
        let mut ser = build(ParallelMode::Never);
        prop_assert_eq!(par.parallel_mode(), ParallelMode::Always);
        prop_assert!(!ser.parallel());
        let par_flips = par.run_rounds(plans(&par)).unwrap();
        let ser_flips = ser.run_rounds(plans(&ser)).unwrap();
        prop_assert_eq!(par_flips, ser_flips);
        prop_assert_eq!(par.rounds_run(), ser.rounds_run());
    }

    #[test]
    fn sparse_fault_map_build_is_bit_identical_to_reference(
        seed in any::<u64>(),
        vendor_idx in 0usize..3,
        bank in 0u32..4,
        row in 0u32..4096,
    ) {
        // The geometric-screen sampler must reproduce the reference
        // per-stream sampler exactly: same entries, same order, same floats.
        use parbor_dram::{RetentionModel, RowFaultMap, RowId};

        let vendor = Vendor::ALL[vendor_idx];
        let scrambler = vendor.scrambler(1024);
        let rates = vendor.default_rates();
        let retention = RetentionModel::default();
        let id = RowId::new(bank, row);
        let fast = RowFaultMap::build(seed, id, scrambler.as_ref(), &rates, &retention);
        let reference =
            RowFaultMap::build_reference(seed, id, scrambler.as_ref(), &rates, &retention);
        prop_assert_eq!(fast, reference);
    }

    #[test]
    fn stencil_eval_is_bit_identical_to_scalar_kernel(
        seed in any::<u64>(),
        vendor_idx in 0usize..3,
        row in 0u32..256,
        data_seed in any::<u64>(),
        shift_milli in -900i32..900,
    ) {
        // The compiled word-parallel stencil must report exactly the scalar
        // walk's failing system columns, in the same ascending order.
        use parbor_dram::{CouplingStencil, RetentionModel, RowFaultMap, RowId};

        let vendor = Vendor::ALL[vendor_idx];
        let scrambler = vendor.scrambler(1024);
        let map = RowFaultMap::build(
            seed,
            RowId::new(0, row),
            scrambler.as_ref(),
            &vendor.default_rates(),
            &RetentionModel::default(),
        );
        let theta_shift = f64::from(shift_milli) / 1000.0;
        let stencil = CouplingStencil::compile(&map, theta_shift);
        let data = PatternKind::Random { seed: data_seed }.row_bits(row, 1024);
        prop_assert_eq!(
            stencil.eval(&data),
            map.coupling_fail_indices(&data, theta_shift)
        );
    }

    #[test]
    fn optimized_module_run_matches_full_reference_path(
        seed in 1u64..64,
        vendor_idx in 0usize..3,
        chips in 2usize..4,
        pattern_seed in any::<u64>(),
    ) {
        // Strongest end-to-end equivalence: every optimization enabled at
        // once (sparse sampler + compiled stencil + chip- and row-level
        // threads) against the fully retained reference path (scalar
        // kernel, reference sampler, serial execution). Flip streams and
        // cache/counter-visible behavior must match bit for bit.
        use parbor_hal::{KernelMode, ParallelMode, RoundPlan, TestPort};
use parbor_dram::{ChipGeometry, ModuleConfig, RowId};

        let vendor = Vendor::ALL[vendor_idx];
        let build = |mode: ParallelMode, kernel: KernelMode| {
            let mut module = ModuleConfig::new(vendor)
                .geometry(ChipGeometry::new(1, 24, 1024).unwrap())
                .chips(chips)
                .seed(seed)
                .build()
                .unwrap();
            module.set_parallel_mode(mode);
            module.set_kernel_mode(kernel);
            module
        };
        let plans = |module: &parbor_dram::DramModule| {
            let units = module.units();
            (0..6u64)
                .map(|round| {
                    RoundPlan::broadcast(units, &(0..24).map(|r| RowId::new(0, r)).collect::<Vec<_>>(), |row| {
                        PatternKind::Random { seed: pattern_seed ^ round ^ u64::from(row.row) }
                            .row_bits(row.row, 1024)
                    })
                })
                .collect::<Vec<_>>()
        };

        let mut fast = build(ParallelMode::Always, KernelMode::Stencil);
        let mut reference = build(ParallelMode::Never, KernelMode::Reference);
        let fast_flips = fast.run_rounds(plans(&fast)).unwrap();
        let ref_flips = reference.run_rounds(plans(&reference)).unwrap();
        prop_assert_eq!(fast_flips, ref_flips);
        prop_assert_eq!(fast.rounds_run(), reference.rounds_run());
    }

    #[test]
    fn tile_walk_round_trips(groups in 1usize..5, stride in 1usize..4) {
        // A small valid walk: identity over span/stride.
        let span = 24 * stride;
        let tile_len = span / stride;
        let walk: Vec<usize> = (0..tile_len).collect();
        let width = span * groups;
        let s = TileWalkScrambler::new(width, span, stride, walk).unwrap();
        for col in 0..width {
            prop_assert_eq!(s.physical_to_system(s.system_to_physical(col)), col);
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpoint/resume invariants (the parbor-fleet contract): a scan state
// survives JSON losslessly at any point, and a scan interrupted after an
// arbitrary number of rounds finishes with the exact same profile.
// ---------------------------------------------------------------------------

mod checkpointing {
    use super::*;
    use parbor_core::{FailureProfile, ScanMachine, ScanState};
    use parbor_dram::{ChipGeometry, ModuleSpec};
    use std::sync::OnceLock;

    fn spec(vendor: Vendor, seed: u64) -> ModuleSpec {
        ModuleSpec {
            chips: 1,
            geometry: ChipGeometry::new(1, 48, 8192).unwrap(),
            seed,
            ..ModuleSpec::new(vendor)
        }
    }

    /// The uninterrupted reference profile, computed once for the fixed
    /// module the resume property runs against.
    fn clean_profile() -> &'static FailureProfile {
        static CLEAN: OnceLock<FailureProfile> = OnceLock::new();
        CLEAN.get_or_init(|| {
            let mut machine = ScanMachine::new(ParborConfig::default());
            let mut module = spec(Vendor::B, 77).build().unwrap();
            machine.run_to_completion(&mut module).unwrap().clone()
        })
    }

    proptest! {
        #[test]
        fn scan_state_json_roundtrip_is_lossless_at_any_prefix(
            vendor_idx in 0usize..3,
            seed in 1u64..5000,
            k in 0usize..64,
        ) {
            let mut machine = ScanMachine::new(ParborConfig::default());
            let mut module = spec(Vendor::ALL[vendor_idx], seed).build().unwrap();
            let mut left = k;
            while left > 0 && !machine.is_done() {
                match machine.advance(&mut module, left) {
                    Ok(0) | Err(_) => break,
                    Ok(ran) => left -= ran.min(left),
                }
            }
            let json = serde_json::to_string(machine.state()).unwrap();
            let back: ScanState = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(&back, machine.state());
            prop_assert_eq!(serde_json::to_string(&back).unwrap(), json);
        }

        #[test]
        fn scan_interrupted_after_k_rounds_resumes_bit_identical(k in 0u64..300) {
            // Run the scan for (up to) k rounds, "crash" keeping only the
            // serialized checkpoint, rebuild a fresh device fast-forwarded
            // past the executed rounds, and finish.
            let mut machine = ScanMachine::new(ParborConfig::default());
            let mut module = spec(Vendor::B, 77).build().unwrap();
            while machine.rounds_done() < k && !machine.is_done() {
                let budget = (k - machine.rounds_done()) as usize;
                machine.advance(&mut module, budget).unwrap();
            }
            let json = serde_json::to_string(machine.state()).unwrap();
            drop(machine);
            drop(module);

            let state: ScanState = serde_json::from_str(&json).unwrap();
            let mut resumed = ScanMachine::from_state(state);
            let mut module = spec(Vendor::B, 77).build().unwrap();
            module.fast_forward(resumed.rounds_done());
            let profile = resumed.run_to_completion(&mut module).unwrap();
            prop_assert_eq!(profile, clean_profile());
        }
    }
}

// ---------------------------------------------------------------------------
// HAL transcript invariants (the parbor-hal contract): wrapping a backend in
// a RecordingPort never changes what the pipeline observes, and replaying
// the transcript reproduces the run bit for bit — including the bytes the
// fleet store persists.
// ---------------------------------------------------------------------------

mod hal_transcripts {
    use super::*;
    use parbor_core::{FailureProfile, ScanMachine};
    use parbor_dram::{ChipGeometry, ModuleSpec};
    use parbor_fleet::{Fleet, FleetConfig, ScanJob};
    use parbor_hal::{RecordingPort, ReplayPort, TestPort, TranscriptFormat};
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn spec(vendor: Vendor, seed: u64) -> ModuleSpec {
        ModuleSpec {
            chips: 1,
            geometry: ChipGeometry::new(1, 48, 1024).unwrap(),
            seed,
            ..ModuleSpec::new(vendor)
        }
    }

    fn scan<P: TestPort + ?Sized>(port: &mut P) -> FailureProfile {
        let mut machine = ScanMachine::new(ParborConfig::default());
        machine.run_to_completion(port).unwrap().clone()
    }

    fn temp_path(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("parbor-hal-prop-{}-{tag}-{n}", std::process::id()))
    }

    /// Every file under `root`, as sorted (relative path, contents) pairs.
    fn dir_snapshot(root: &Path) -> Vec<(String, Vec<u8>)> {
        fn walk(dir: &Path, root: &Path, out: &mut Vec<(String, Vec<u8>)>) {
            for entry in std::fs::read_dir(dir).expect("read_dir") {
                let path = entry.expect("entry").path();
                if path.is_dir() {
                    walk(&path, root, out);
                } else {
                    let rel = path
                        .strip_prefix(root)
                        .expect("under root")
                        .to_string_lossy()
                        .into_owned();
                    out.push((rel, std::fs::read(&path).expect("read file")));
                }
            }
        }
        let mut out = Vec::new();
        walk(root, root, &mut out);
        out.sort();
        out
    }

    proptest! {
        #[test]
        fn recording_is_transparent_and_replay_is_bit_identical(
            vendor_idx in 0usize..3,
            seed in 1u64..5000,
        ) {
            let vendor = Vendor::ALL[vendor_idx];
            let bare = scan(&mut spec(vendor, seed).build().unwrap());

            let path = temp_path("transcript");
            let mut recording =
                RecordingPort::create(spec(vendor, seed).build().unwrap(), &path).unwrap();
            let recorded = scan(&mut recording);
            recording.finish().unwrap();
            prop_assert_eq!(&recorded, &bare);

            let mut replay = ReplayPort::open(&path).unwrap();
            let replayed = scan(&mut replay);
            std::fs::remove_file(&path).ok();
            prop_assert_eq!(&replayed, &bare);
        }

        #[test]
        fn json_and_binary_transcripts_replay_byte_identical(
            vendor_idx in 0usize..3,
            seed in 1u64..5000,
        ) {
            // The same run captured in both on-disk formats must replay to
            // profiles whose *serialized bytes* are identical — the fleet
            // store persists those bytes, so byte equality is the contract.
            let vendor = Vendor::ALL[vendor_idx];
            let json_path = temp_path("fmt-json");
            let bin_path = temp_path("fmt-bin");
            let mut serialized = Vec::new();
            for (format, path) in [
                (TranscriptFormat::Json, &json_path),
                (TranscriptFormat::Binary, &bin_path),
            ] {
                let mut recording = RecordingPort::create_with_format(
                    spec(vendor, seed).build().unwrap(),
                    path,
                    format,
                )
                .unwrap();
                let recorded = scan(&mut recording);
                recording.finish().unwrap();

                let mut replay = ReplayPort::open(path).unwrap();
                prop_assert_eq!(replay.format(), format);
                let replayed = scan(&mut replay);
                prop_assert_eq!(&replayed, &recorded);
                serialized.push(serde_json::to_string(&replayed).unwrap());
            }
            let json_bytes = std::fs::metadata(&json_path).unwrap().len();
            let bin_bytes = std::fs::metadata(&bin_path).unwrap().len();
            std::fs::remove_file(&json_path).ok();
            std::fs::remove_file(&bin_path).ok();
            prop_assert_eq!(&serialized[0], &serialized[1]);
            prop_assert!(
                bin_bytes < json_bytes,
                "binary transcript ({bin_bytes} B) should undercut JSON ({json_bytes} B)"
            );
        }

        #[test]
        fn fleet_replay_reproduces_the_store_bytes(seed in 1u64..2000) {
            let transcripts = temp_path("fleet-tr");
            std::fs::create_dir_all(&transcripts).unwrap();
            let config = || FleetConfig {
                workers: 1,
                ..FleetConfig::default()
            };
            let jobs = || vec![ScanJob::new("j0", spec(Vendor::B, seed))];

            let rec_root = temp_path("fleet-rec");
            let rec_dir = transcripts.clone();
            let fleet = Fleet::new(&rec_root, config())
                .unwrap()
                .with_port_factory(Box::new(move |job| {
                    Ok(Box::new(RecordingPort::create(
                        job.module.build()?,
                        rec_dir.join(format!("{}.jsonl", job.name)),
                    )?))
                }));
            let report = fleet.run(jobs()).unwrap();
            prop_assert_eq!(report.failed(), 0);

            let replay_root = temp_path("fleet-replay");
            let replay_dir = transcripts.clone();
            let fleet = Fleet::new(&replay_root, config())
                .unwrap()
                .with_port_factory(Box::new(move |job| {
                    Ok(Box::new(ReplayPort::open(
                        replay_dir.join(format!("{}.jsonl", job.name)),
                    )?))
                }));
            let report = fleet.run(jobs()).unwrap();
            prop_assert_eq!(report.failed(), 0);

            let rec_store = dir_snapshot(&rec_root.join("store"));
            let replay_store = dir_snapshot(&replay_root.join("store"));
            for dir in [&transcripts, &rec_root, &replay_root] {
                std::fs::remove_dir_all(dir).ok();
            }
            prop_assert!(!rec_store.is_empty(), "recorded store is empty");
            prop_assert_eq!(rec_store, replay_store);
        }
    }
}
