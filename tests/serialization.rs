//! Round-trip tests for the serde derives on persistent result types: a
//! deployment stores campaign results (victim sets, recursion outcomes,
//! failure directories) across sessions, so these must serialize faithfully.

use parbor_core::{FailureDirectory, Parbor, ParborConfig, RecursionOutcome, VictimSet};
use parbor_dram::{CellCensus, ChipGeometry, DramChip, RowId, Vendor};

fn campaign() -> (VictimSet, RecursionOutcome, FailureDirectory, DramChip) {
    let mut chip = DramChip::new(ChipGeometry::new(1, 64, 8192).unwrap(), Vendor::B, 3).unwrap();
    let parbor = Parbor::new(ParborConfig::default());
    let victims = parbor.discover(&mut chip).unwrap();
    let recursion = parbor.locate(&mut chip, &victims).unwrap();
    let chipwide = parbor.chip_test(&mut chip, &recursion.distances).unwrap();
    let directory = FailureDirectory::from_chipwide(&chipwide, &recursion.distances);
    (victims, recursion, directory, chip)
}

#[test]
fn victim_set_round_trips() {
    let (victims, ..) = campaign();
    let json = serde_json::to_string(&victims).unwrap();
    let back: VictimSet = serde_json::from_str(&json).unwrap();
    assert_eq!(back, victims);
}

#[test]
fn recursion_outcome_round_trips() {
    let (_, recursion, ..) = campaign();
    let json = serde_json::to_string(&recursion).unwrap();
    let back: RecursionOutcome = serde_json::from_str(&json).unwrap();
    assert_eq!(back, recursion);
    assert_eq!(back.distances, vec![-64, -1, 1, 64]);
}

#[test]
fn failure_directory_round_trips() {
    let (_, _, directory, _) = campaign();
    let json = serde_json::to_string(&directory).unwrap();
    let back: FailureDirectory = serde_json::from_str(&json).unwrap();
    assert_eq!(back, directory);
    // The restored directory still builds a working DC-REF monitor.
    let monitor = back.dcref_monitor().unwrap();
    assert_eq!(monitor.cell_count(), directory.failing_cells());
}

#[test]
fn census_round_trips() {
    let (.., mut chip) = campaign();
    let rows: Vec<RowId> = (0..16).map(|r| RowId::new(0, r)).collect();
    let census = CellCensus::take(&mut chip, &rows).unwrap();
    let json = serde_json::to_string(&census).unwrap();
    let back: CellCensus = serde_json::from_str(&json).unwrap();
    assert_eq!(back, census);
}

#[test]
fn config_types_round_trip() {
    let config = ParborConfig::default();
    let json = serde_json::to_string(&config).unwrap();
    let back: ParborConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back, config);

    let sys = parbor_memsim::SystemConfig::paper();
    let json = serde_json::to_string(&sys).unwrap();
    let back: parbor_memsim::SystemConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back, sys);
}
