//! Sensitivity studies from the paper's §6 and §7.3: temperature
//! independence of neighbor locations, refresh-interval behaviour, and the
//! remapped-column limitation.

use std::sync::Arc;

use parbor_core::{Parbor, ParborConfig};
use parbor_dram::{
    Celsius, ChipGeometry, DramChip, FaultRates, ModuleConfig, RemapTable, RetentionModel, RowId,
    Seconds, Vendor,
};

fn run_at(temp: f64, interval: f64, seed: u64) -> Vec<i64> {
    let mut module = ModuleConfig::new(Vendor::A)
        .geometry(ChipGeometry::new(1, 64, 8192).unwrap())
        .chips(4)
        .seed(seed)
        .temperature(Celsius(temp))
        .refresh_interval(Seconds(interval))
        .build()
        .unwrap();
    Parbor::new(ParborConfig::default())
        .run(&mut module)
        .unwrap()
        .distances()
        .to_vec()
}

#[test]
fn neighbor_locations_are_temperature_independent() {
    // Paper §6: "neighbor locations determined by PARBOR are not dependent
    // on temperature" — tested at 40/45/50 °C.
    let d40 = run_at(40.0, 4.0, 77);
    let d45 = run_at(45.0, 4.0, 77);
    let d50 = run_at(50.0, 4.0, 77);
    assert_eq!(d40, d45);
    assert_eq!(d45, d50);
    assert_eq!(d45, Vendor::A.paper_distances());
}

#[test]
fn neighbor_locations_survive_interval_changes() {
    // Paper §6: results hold across refresh intervals (failure *population*
    // changes, neighbor *locations* do not).
    let d_short = run_at(45.0, 3.0, 78);
    let d_long = run_at(45.0, 6.0, 78);
    assert_eq!(d_short, d_long);
}

#[test]
fn hotter_chips_fail_more_but_in_the_same_places() {
    let make = |temp: f64| {
        let mut chip =
            DramChip::new(ChipGeometry::new(1, 64, 8192).unwrap(), Vendor::C, 9).unwrap();
        chip.set_conditions(Celsius(temp), Seconds(4.0));
        let report = Parbor::new(ParborConfig::default()).run(&mut chip).unwrap();
        (report.distances().to_vec(), report.failure_count())
    };
    let (d_cool, n_cool) = make(40.0);
    let (d_hot, n_hot) = make(55.0);
    assert_eq!(d_cool, d_hot, "distances must not move with temperature");
    assert!(n_hot > n_cool, "hot {n_hot} must exceed cool {n_cool}");
}

#[test]
fn remapped_columns_limit_coverage_but_not_distances() {
    // Paper §7.3: remapped redundant columns have neighbors at irregular
    // distances; PARBOR's ranking ignores them and its patterns may miss
    // their worst case, but the *regular* population's distances still come
    // out right.
    let geometry = ChipGeometry::new(1, 96, 8192).unwrap();
    let base = Vendor::B.scrambler(8192);
    // Remap a scattering of physical columns to far-away spares.
    let swaps: Vec<(usize, usize)> = (0..24).map(|i| (40 + i * 96, 4000 + i * 128)).collect();
    let remapped = Arc::new(RemapTable::new(swaps).unwrap().apply(base).unwrap());
    let mut module = ModuleConfig::new(Vendor::B)
        .geometry(geometry)
        .chips(4)
        .seed(55)
        .scrambler(remapped)
        .build()
        .unwrap();
    let report = Parbor::new(ParborConfig::default())
        .run(&mut module)
        .unwrap();
    assert_eq!(
        report.distances(),
        Vendor::B.paper_distances(),
        "regular-population distances must survive remapping"
    );
}

#[test]
fn noise_only_chip_yields_no_distances() {
    // A chip with no coupling cells at all (only marginal noise) must make
    // the recursion fail cleanly rather than hallucinate distances.
    let mut chip = DramChip::with_parts(
        ChipGeometry::new(1, 64, 8192).unwrap(),
        Vendor::A.scrambler(8192),
        13,
        FaultRates {
            interesting: 0.0,
            marginal: 5.0e-4,
            ..FaultRates::default()
        },
        RetentionModel::default(),
        Celsius(45.0),
        Seconds(4.0),
    )
    .unwrap();
    let parbor = Parbor::new(ParborConfig::default());
    let victims = parbor.discover(&mut chip).unwrap();
    assert!(
        !victims.is_empty(),
        "marginal cells should look like victims"
    );
    let outcome = parbor.locate(&mut chip, &victims);
    assert!(
        outcome.is_err(),
        "noise must not produce neighbor distances"
    );
}

#[test]
fn scout_rows_subset_is_honored() {
    let rows: Vec<RowId> = (0..32).map(|r| RowId::new(0, r)).collect();
    let mut chip = DramChip::new(ChipGeometry::new(1, 256, 8192).unwrap(), Vendor::B, 4).unwrap();
    let parbor = Parbor::new(ParborConfig {
        rows: Some(rows),
        ..ParborConfig::default()
    });
    let victims = parbor.discover(&mut chip).unwrap();
    for v in victims.victims() {
        assert!(v.row.row < 32);
    }
}
