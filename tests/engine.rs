//! Equivalence tests for the round engine: every pipeline stage must produce
//! identical results whether the port batches rounds (`DramModule`'s
//! parallel `run_rounds` override) or replays them through the `TestPort`
//! trait's default one-round-at-a-time loop.
//!
//! `SerialOnly` hides the inner port's `run_rounds` override, forcing the
//! default loop; comparing it against the unwrapped port pins the contract
//! that batching is an optimization, never a behavior change.

use parbor_core::{
    exhaustive_neighbor_search, linear_neighbor_search, random_pattern_test, solid_pattern_test,
    walking_pattern_test, OnlinePhase, OnlineTester, Parbor, ParborConfig, Victim,
};
use parbor_dram::{ChipGeometry, DramError, DramModule, ModuleConfig, ModuleId, RowId, Vendor};
use parbor_hal::{Flip, ParallelMode, RoundExecutor, RoundPlan, RowWrite, TestPort};

/// Forwards everything except `run_rounds`, so batches fall back to the
/// trait's default loop over [`TestPort::run_round`].
struct SerialOnly<P>(P);

impl<P: TestPort> TestPort for SerialOnly<P> {
    fn geometry(&self) -> ChipGeometry {
        self.0.geometry()
    }

    fn units(&self) -> u32 {
        self.0.units()
    }

    fn run_round(&mut self, writes: Vec<RowWrite>) -> Result<Vec<Flip>, DramError> {
        self.0.run_round(writes)
    }

    fn rounds_run(&self) -> u64 {
        self.0.rounds_run()
    }
}

fn module(vendor: Vendor, seed: u64, rows: u32) -> DramModule {
    ModuleConfig::new(vendor)
        .geometry(ChipGeometry::new(1, rows, 8192).unwrap())
        .chips(2)
        .seed(seed)
        .module_id(ModuleId(9))
        .build()
        .unwrap()
}

#[test]
fn full_pipeline_matches_default_loop_for_every_vendor() {
    for vendor in Vendor::ALL {
        let mut batched = module(vendor, 11, 64);
        let report = Parbor::new(ParborConfig::default())
            .run(&mut batched)
            .unwrap();

        let mut looped = SerialOnly(module(vendor, 11, 64));
        let loop_report = Parbor::new(ParborConfig::default())
            .run(&mut looped)
            .unwrap();

        assert_eq!(report, loop_report, "vendor {vendor:?} reports diverge");
        assert_eq!(batched.rounds_run(), looped.rounds_run());
    }
}

#[test]
fn baseline_tests_match_default_loop() {
    let rows: Vec<RowId> = (0..16).map(|r| RowId::new(0, r)).collect();

    let mut batched = module(Vendor::B, 23, 16);
    let mut looped = SerialOnly(module(Vendor::B, 23, 16));

    let rand_b = random_pattern_test(&mut batched, &rows, 12, 5).unwrap();
    let rand_l = random_pattern_test(&mut looped, &rows, 12, 5).unwrap();
    assert_eq!(rand_b, rand_l);

    let solid_b = solid_pattern_test(&mut batched, &rows).unwrap();
    let solid_l = solid_pattern_test(&mut looped, &rows).unwrap();
    assert_eq!(solid_b, solid_l);

    let walk_b = walking_pattern_test(&mut batched, &rows, 8).unwrap();
    let walk_l = walking_pattern_test(&mut looped, &rows, 8).unwrap();
    assert_eq!(walk_b, walk_l);
}

#[test]
fn oracle_neighbor_searches_match_default_loop() {
    let victim = Victim {
        unit: 1,
        row: RowId::new(0, 3),
        col: 40,
        fail_value: true,
    };

    let mut batched = module(Vendor::C, 31, 8);
    let mut looped = SerialOnly(module(Vendor::C, 31, 8));

    let lin_b = linear_neighbor_search(&mut batched, &victim, 0..128).unwrap();
    let lin_l = linear_neighbor_search(&mut looped, &victim, 0..128).unwrap();
    assert_eq!(lin_b, lin_l);

    let exh_b = exhaustive_neighbor_search(&mut batched, &victim, 0..40).unwrap();
    let exh_l = exhaustive_neighbor_search(&mut looped, &victim, 0..40).unwrap();
    assert_eq!(exh_b, exh_l);
}

#[test]
fn online_tester_matches_default_loop() {
    let mut batched = module(Vendor::A, 17, 64);
    let mut online_b = OnlineTester::new(ParborConfig::default());
    online_b.run_to_completion(&mut batched).unwrap();
    assert_eq!(online_b.phase(), OnlinePhase::Done);
    let report_b = online_b.into_report().unwrap();

    let mut looped = SerialOnly(module(Vendor::A, 17, 64));
    let mut online_l = OnlineTester::new(ParborConfig::default());
    online_l.run_to_completion(&mut looped).unwrap();
    let report_l = online_l.into_report().unwrap();

    assert_eq!(report_b, report_l);
}

#[test]
fn executor_batch_flips_match_default_loop_even_when_threaded() {
    let plans = |units: u32| -> Vec<RoundPlan> {
        (0..5u64)
            .map(|round| {
                let rows: Vec<RowId> = (0..32).map(|r| RowId::new(0, r)).collect();
                RoundPlan::broadcast(units, &rows, |row| {
                    parbor_dram::PatternKind::Random {
                        seed: round ^ u64::from(row.row),
                    }
                    .row_bits(row.row, 8192)
                })
            })
            .collect()
    };

    let mut batched = module(Vendor::A, 41, 32);
    batched.set_parallel_mode(ParallelMode::Always);
    let units = batched.units();
    let mut exec = RoundExecutor::new(&mut batched);
    let flips_b = exec.run_batch(plans(units)).unwrap();
    assert_eq!(exec.rounds_executed(), 5);

    let mut looped = SerialOnly(module(Vendor::A, 41, 32));
    let mut exec = RoundExecutor::new(&mut looped);
    let flips_l = exec.run_batch(plans(units)).unwrap();

    assert_eq!(flips_b, flips_l);
}
