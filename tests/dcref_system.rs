//! Cross-crate integration of the DC-REF study: workloads → memsim, with
//! the paper's §8 invariants.

use parbor_memsim::{
    weighted_speedup, Density, RefreshPolicyKind, SimReport, Simulation, SystemConfig,
};
use parbor_workloads::{paper_mixes, AppProfile, WorkloadMix};

fn quick() -> SystemConfig {
    SystemConfig {
        cores: 4,
        ..SystemConfig::paper()
    }
}

fn run(config: SystemConfig, policy: RefreshPolicyKind, mix: &WorkloadMix) -> SimReport {
    Simulation::new(config, policy, mix, 77).run(250_000)
}

#[test]
fn policy_performance_ordering_holds() {
    // The paper's Figure 16 ordering: baseline < RAIDR < DC-REF, with
    // no-refresh as the ceiling.
    let mix = &paper_mixes(1, 4, 12)[0];
    let insts = |k| run(quick(), k, mix).total_instructions();
    let base = insts(RefreshPolicyKind::Uniform64);
    let raidr = insts(RefreshPolicyKind::Raidr);
    let dcref = insts(RefreshPolicyKind::DcRef);
    let none = insts(RefreshPolicyKind::NoRefresh);
    assert!(base < raidr, "base {base} raidr {raidr}");
    assert!(raidr <= dcref, "raidr {raidr} dcref {dcref}");
    assert!(dcref <= none, "dcref {dcref} none {none}");
}

#[test]
fn refresh_reduction_matches_paper_numbers() {
    let mix = &paper_mixes(1, 4, 13)[0];
    let raidr = run(quick(), RefreshPolicyKind::Raidr, mix);
    let dcref = run(quick(), RefreshPolicyKind::DcRef, mix);
    // RAIDR: 16.4 % hot → 37.3 % of baseline refresh ops.
    assert!((raidr.refresh_work_fraction - 0.373).abs() < 0.01);
    // DC-REF ~27 % of baseline ops (paper: −73 %) and ~27.6 % under RAIDR.
    assert!((dcref.refresh_work_fraction - 0.27).abs() < 0.03);
    let vs_raidr = 1.0 - dcref.refresh_work_fraction / raidr.refresh_work_fraction;
    assert!((vs_raidr - 0.276).abs() < 0.06, "vs RAIDR {vs_raidr}");
    // Hot-row fractions: 16.4 % vs ~2.7 %.
    assert!((raidr.hot_row_fraction - 0.164).abs() < 0.01);
    assert!((dcref.hot_row_fraction - 0.027).abs() < 0.02);
}

#[test]
fn denser_chips_suffer_more_from_refresh() {
    // tRFC grows with density, so the baseline loses more at 32 Gbit and
    // refresh reduction pays more (the paper evaluates 16 vs 32 Gbit).
    let mix = &paper_mixes(1, 4, 14)[0];
    let gain_at = |density| {
        let config = SystemConfig { density, ..quick() };
        let base = run(config, RefreshPolicyKind::Uniform64, mix).total_instructions();
        let dcref = run(config, RefreshPolicyKind::DcRef, mix).total_instructions();
        dcref as f64 / base as f64
    };
    let g16 = gain_at(Density::Gb16);
    let g32 = gain_at(Density::Gb32);
    assert!(g32 > g16, "32Gbit gain {g32} must exceed 16Gbit gain {g16}");
}

#[test]
fn weighted_speedup_reflects_contention() {
    // A mix of one memory hog + compute apps: the hog's normalized IPC
    // drops below the compute apps'.
    let apps = AppProfile::spec2006();
    let mcf = apps.iter().find(|a| a.name == "mcf").unwrap().clone();
    let sjeng = apps.iter().find(|a| a.name == "sjeng").unwrap().clone();
    let mix = WorkloadMix {
        id: 0,
        apps: vec![mcf.clone(), sjeng.clone(), sjeng.clone(), sjeng.clone()],
    };
    let config = quick();
    let shared = run(config, RefreshPolicyKind::Uniform64, &mix).ipcs();
    let alone: Vec<f64> = mix
        .apps
        .iter()
        .map(|a| Simulation::alone_ipc(config, RefreshPolicyKind::Uniform64, a, 3, 250_000))
        .collect();
    let ws = weighted_speedup(&shared, &alone);
    assert!(ws > 1.0 && ws < 4.0, "ws = {ws}");
    // Compute-bound cores keep most of their alone performance.
    assert!(shared[1] / alone[1] > 0.8);
}

#[test]
fn dcref_hot_fraction_tracks_mix_content() {
    // A mix of apps whose writes rarely match the worst-case pattern keeps
    // fewer rows hot than a frequently-matching mix.
    let apps = AppProfile::spec2006();
    let low = apps
        .iter()
        .find(|a| a.name == "libquantum")
        .unwrap()
        .clone(); // 0.05
    let high = apps.iter().find(|a| a.name == "omnetpp").unwrap().clone(); // 0.28
    let mk = |app: &AppProfile| WorkloadMix {
        id: 0,
        apps: vec![app.clone(); 4],
    };
    let h_low = run(quick(), RefreshPolicyKind::DcRef, &mk(&low)).hot_row_fraction;
    let h_high = run(quick(), RefreshPolicyKind::DcRef, &mk(&high)).hot_row_fraction;
    assert!(h_low < h_high, "low {h_low} vs high {h_high}");
    assert!(h_low < 0.02 && h_high > 0.03);
}
