//! Oracle cross-validation: compare what PARBOR *finds* against the device
//! model's ground truth, which the algorithm never sees. These are the
//! strongest correctness checks in the suite — they assert coverage
//! guarantees, not just self-consistency.

use std::collections::HashSet;

use parbor_core::{Parbor, ParborConfig};
use parbor_dram::{CellClass, ChipGeometry, DramChip, RowId, Scrambler, Vendor};

fn run(vendor: Vendor, seed: u64) -> (parbor_core::ParborReport, DramChip) {
    let mut chip = DramChip::new(ChipGeometry::new(1, 96, 8192).unwrap(), vendor, seed).unwrap();
    let report = Parbor::new(ParborConfig::default()).run(&mut chip).unwrap();
    (report, chip)
}

#[test]
fn strongly_and_weakly_coupled_cells_are_fully_covered() {
    // Every oracle strongly/weakly coupled cell must appear in PARBOR's
    // chip-wide failure set: its worst case needs at most both immediate
    // neighbors opposite, which every victim round guarantees.
    for (vendor, seed) in [(Vendor::A, 1u64), (Vendor::B, 2), (Vendor::C, 3)] {
        let (report, mut chip) = run(vendor, seed);
        let found: HashSet<(u32, u32)> = report
            .chipwide
            .failing
            .keys()
            .map(|&(_, addr)| (addr.row, addr.col))
            .collect();
        let mut missed = 0usize;
        let mut total = 0usize;
        for r in 0..96 {
            for (sys, class) in chip.oracle_data_dependent(RowId::new(0, r)) {
                if matches!(
                    class,
                    CellClass::StrongLeft
                        | CellClass::StrongRight
                        | CellClass::StrongBoth
                        | CellClass::WeaklyCoupled
                ) {
                    total += 1;
                    if !found.contains(&(r, sys)) {
                        missed += 1;
                    }
                }
            }
        }
        assert!(total > 100, "vendor {vendor}: oracle population too small");
        assert_eq!(
            missed, 0,
            "vendor {vendor}: {missed}/{total} strong/weak cells escaped the chip-wide test"
        );
    }
}

#[test]
fn deep_cells_are_mostly_covered() {
    // Deep cells need a biased second-order window; the order-3 scheduler
    // keeps windows pure except for distance-4 co-victims, so a small tail
    // may be missed — but the bulk must be found.
    let (report, mut chip) = run(Vendor::A, 9);
    let found: HashSet<(u32, u32)> = report
        .chipwide
        .failing
        .keys()
        .map(|&(_, addr)| (addr.row, addr.col))
        .collect();
    let mut missed = 0usize;
    let mut total = 0usize;
    for r in 0..96 {
        for (sys, class) in chip.oracle_data_dependent(RowId::new(0, r)) {
            if class == CellClass::DeepCoupled {
                total += 1;
                if !found.contains(&(r, sys)) {
                    missed += 1;
                }
            }
        }
    }
    assert!(total > 100, "deep population too small ({total})");
    let coverage = 1.0 - missed as f64 / total as f64;
    assert!(
        coverage > 0.8,
        "deep coverage {coverage:.2} ({missed}/{total} missed)"
    );
}

#[test]
fn found_failures_are_oracle_explainable() {
    // Conversely: every chip-wide failure must be a cell the oracle knows
    // about (coupling/weak) or an intermittent (marginal/VRT/soft) hit —
    // the fault map lists those too, except soft errors. Allow a tiny
    // unexplained tail for soft errors.
    let (report, mut chip) = run(Vendor::C, 4);
    let mut unexplained = 0usize;
    for &(_, addr) in report.chipwide.failing.keys() {
        let row = addr.row();
        let known: HashSet<u32> = chip.fault_map(row).entries.iter().map(|e| e.sys).collect();
        if !known.contains(&addr.col) {
            unexplained += 1;
        }
    }
    let frac = unexplained as f64 / report.failure_count().max(1) as f64;
    assert!(
        frac < 0.01,
        "{unexplained} of {} failures unexplained ({frac:.3})",
        report.failure_count()
    );
}

#[test]
fn distances_match_oracle_for_custom_walks() {
    // Build a fresh custom scrambler and verify end-to-end discovery on it
    // (generalization beyond the three calibrated vendors).
    use parbor_dram::{
        hamiltonian_walk, Celsius, FaultRates, RetentionModel, Seconds, TileWalkScrambler,
    };
    use std::sync::Arc;
    let walk = hamiltonian_walk(32, &[2, 5]).unwrap();
    let scrambler: Arc<dyn Scrambler> =
        Arc::new(TileWalkScrambler::new(8192, 32, 1, walk).unwrap());
    let truth = scrambler.distance_set();
    let mut chip = DramChip::with_parts(
        ChipGeometry::new(1, 160, 8192).unwrap(),
        Arc::clone(&scrambler),
        77,
        FaultRates {
            interesting: 4.0e-3,
            ..FaultRates::default()
        },
        RetentionModel::default(),
        Celsius(45.0),
        Seconds(4.0),
    )
    .unwrap();
    let report = Parbor::new(ParborConfig::default()).run(&mut chip).unwrap();
    assert_eq!(report.distances(), truth);
}
