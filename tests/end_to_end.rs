//! End-to-end pipeline tests: every vendor, chip- and module-level, checked
//! against the paper's Table 1 and Figure 11 ground truth.

use parbor_core::{Parbor, ParborConfig};
use parbor_dram::{ChipGeometry, DramChip, ModuleConfig, Scrambler, Vendor};
use parbor_hal::TestPort;

fn run_vendor_chip(vendor: Vendor, seed: u64) -> parbor_core::ParborReport {
    let mut chip = DramChip::new(ChipGeometry::new(1, 192, 8192).unwrap(), vendor, seed).unwrap();
    Parbor::new(ParborConfig::default()).run(&mut chip).unwrap()
}

#[test]
fn vendor_a_full_pipeline_matches_paper() {
    let report = run_vendor_chip(Vendor::A, 31);
    assert_eq!(report.distances(), Vendor::A.paper_distances());
    assert_eq!(report.recursion.tests_per_level(), vec![2, 8, 8, 24, 48]);
    assert_eq!(report.recursion.total_tests, 90);
}

#[test]
fn vendor_b_full_pipeline_matches_paper() {
    let report = run_vendor_chip(Vendor::B, 32);
    assert_eq!(report.distances(), Vendor::B.paper_distances());
    assert_eq!(report.recursion.tests_per_level(), vec![2, 8, 8, 24, 24]);
    assert_eq!(report.recursion.total_tests, 66);
}

#[test]
fn vendor_c_full_pipeline_matches_paper() {
    let report = run_vendor_chip(Vendor::C, 33);
    assert_eq!(report.distances(), Vendor::C.paper_distances());
    assert_eq!(report.recursion.total_tests, 90);
}

#[test]
fn module_level_pipeline_aggregates_chips() {
    let mut module = ModuleConfig::new(Vendor::A)
        .geometry(ChipGeometry::new(1, 48, 8192).unwrap())
        .chips(8)
        .seed(3)
        .build()
        .unwrap();
    let report = Parbor::new(ParborConfig::default())
        .run(&mut module)
        .unwrap();
    assert_eq!(report.distances(), Vendor::A.paper_distances());
    // Failures come from multiple chips.
    let units: std::collections::HashSet<u32> =
        report.chipwide.failing.keys().map(|&(u, _)| u).collect();
    assert!(
        units.len() > 4,
        "failures confined to {} chips",
        units.len()
    );
}

#[test]
fn distances_discovered_equal_scrambler_ground_truth() {
    for (vendor, seed) in [(Vendor::A, 1u64), (Vendor::B, 2), (Vendor::C, 3)] {
        let mut chip =
            DramChip::new(ChipGeometry::new(1, 192, 8192).unwrap(), vendor, seed).unwrap();
        let truth = chip.scrambler().distance_set();
        let report = Parbor::new(ParborConfig::default()).run(&mut chip).unwrap();
        assert_eq!(report.distances(), truth, "vendor {vendor}");
    }
}

#[test]
fn budget_stays_within_paper_envelope() {
    // Paper: 92-132 tests depending on vendor (discovery 10 + recursion
    // 66-90 + chip-wide 16-32). Our chip-wide scheduler spends a few more
    // rounds for second-order purity, so allow up to 150.
    for (vendor, seed) in [(Vendor::A, 5u64), (Vendor::B, 6), (Vendor::C, 7)] {
        let report = run_vendor_chip(vendor, seed);
        let total = report.total_rounds();
        assert!(
            (92..=150).contains(&total),
            "vendor {vendor}: budget {total}"
        );
    }
}

#[test]
fn repeated_runs_are_deterministic() {
    let a = run_vendor_chip(Vendor::B, 11);
    let b = run_vendor_chip(Vendor::B, 11);
    assert_eq!(a.distances(), b.distances());
    assert_eq!(a.failure_count(), b.failure_count());
    assert_eq!(a.victim_count, b.victim_count);
}

#[test]
fn rounds_accounting_matches_port_counter() {
    let mut chip = DramChip::new(ChipGeometry::new(1, 96, 8192).unwrap(), Vendor::C, 8).unwrap();
    let report = Parbor::new(ParborConfig::default()).run(&mut chip).unwrap();
    assert_eq!(TestPort::rounds_run(&chip), report.total_rounds() as u64);
}
