//! The metric-name registry test: run the real pipeline, a real fleet
//! campaign, and a store compact + aggregate pass, then assert every
//! emitted counter, gauge, histogram, and span name is declared in
//! `parbor_obs::metrics`. A typo'd name at a recording
//! site records silently and dashboards never see it — this test turns that
//! silence into a failure.

use parbor_core::{FailingCell, FailureProfile, Parbor, ParborConfig};
use parbor_dram::{ChipGeometry, DramChip, ModuleSpec, Vendor};
use parbor_fleet::{Fleet, FleetConfig, ScanJob};
use parbor_obs::{metrics, InMemoryRecorder, ObsSnapshot, RecorderHandle, ShardedRecorder};
use parbor_store::ProfileStore;

fn assert_all_registered(snapshot: &ObsSnapshot, context: &str) {
    let unregistered: Vec<String> = snapshot
        .metric_names()
        .into_iter()
        .filter(|name| !metrics::is_registered(name))
        .collect();
    assert!(
        unregistered.is_empty(),
        "{context} emitted unregistered metric names {unregistered:?} — \
         add them to crates/obs/src/metrics.rs or fix the typo"
    );
}

#[test]
fn every_pipeline_metric_is_registered() {
    let rec = InMemoryRecorder::handle();
    let handle = RecorderHandle::from(rec.clone());
    let mut chip = DramChip::new(ChipGeometry::new(1, 64, 8192).unwrap(), Vendor::A, 7)
        .unwrap()
        .with_recorder(handle.clone());
    Parbor::new(ParborConfig::default())
        .with_recorder(handle)
        .run(&mut chip)
        .unwrap();
    let snapshot = rec.snapshot();
    // The run must actually have exercised the stages being checked.
    assert!(snapshot.counter(metrics::recursion::TESTS) > 0);
    assert!(snapshot.counter(metrics::chipwide::ROUNDS) > 0);
    assert!(snapshot.counter(metrics::dram::ROW_WRITES) > 0);
    assert!(!snapshot.spans.is_empty());
    assert_all_registered(&snapshot, "pipeline run");
}

#[test]
fn every_fleet_metric_is_registered() {
    let root = std::env::temp_dir().join(format!("parbor-metrics-reg-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();

    let rec = ShardedRecorder::handle();
    let spec = ModuleSpec {
        chips: 1,
        geometry: ChipGeometry::new(1, 48, 8192).unwrap(),
        seed: 11,
        ..ModuleSpec::new(Vendor::A)
    };
    let fleet = Fleet::new(&root, FleetConfig::default())
        .unwrap()
        .with_recorder(RecorderHandle::from(rec.clone()));
    let report = fleet.run(vec![ScanJob::new("reg0", spec)]).unwrap();
    assert!(report.is_clean());

    let snapshot = rec.snapshot();
    assert!(snapshot.counter(metrics::fleet::JOBS_DONE) > 0);
    assert_all_registered(&snapshot, "fleet campaign");

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn every_store_metric_is_registered() {
    let root = std::env::temp_dir().join(format!("parbor-metrics-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let rec = ShardedRecorder::handle();
    let mut store =
        ProfileStore::open_with_recorder(&root, RecorderHandle::from(rec.clone())).unwrap();
    for i in 0..8u32 {
        let profile = FailureProfile {
            victim_count: 1,
            discovery_rounds: 10,
            tests_per_level: vec![2, 4],
            recursion_tests: 6,
            distances: vec![-8, 8],
            chipwide_rounds: 3,
            failures: vec![FailingCell {
                unit: 0,
                bank: 0,
                row: i,
                col: i,
                value: true,
            }],
        };
        store.put(&format!("reg{i}"), &profile).unwrap();
    }
    let report = store.compact().unwrap();
    assert_eq!(report.output_records, 8);
    let agg = store.aggregate().unwrap();
    assert_eq!(agg.modules, 8);
    store.get("reg0").unwrap();

    let snapshot = rec.snapshot();
    assert!(snapshot.counter(metrics::store::PUTS) > 0);
    assert!(snapshot.counter(metrics::store::COMPACTIONS) > 0);
    assert!(snapshot.counter(metrics::store::AGG_RECORDS) > 0);
    assert!(snapshot.counter(metrics::store::READS) > 0);
    assert_all_registered(&snapshot, "store compact + aggregate");

    std::fs::remove_dir_all(&root).ok();
}
