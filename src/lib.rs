//! # parbor-suite — umbrella for the PARBOR reproduction
//!
//! This crate re-exports the workspace members and hosts the runnable
//! examples (`examples/`) and cross-crate integration tests (`tests/`).
//! See the individual crates for the substance:
//!
//! * [`parbor_dram`] — the DRAM device simulator (scrambling + fault model)
//! * [`parbor_core`] — the PARBOR algorithm itself
//! * [`parbor_memsim`] — the DDR3 timing simulator for the DC-REF study
//! * [`parbor_workloads`] — synthetic SPEC-like workload traces

#![forbid(unsafe_code)]

pub use parbor_core as core;
pub use parbor_dram as dram;
pub use parbor_memsim as memsim;
pub use parbor_workloads as workloads;
