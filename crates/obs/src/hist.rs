//! Exact-percentile histograms: fixed-precision log-linear buckets in the
//! style of HdrHistogram.
//!
//! Values below `2^SUB_BUCKET_BITS` get exact unit-width buckets; every
//! higher octave `[2^m, 2^(m+1))` is split into `2^SUB_BUCKET_BITS` linear
//! sub-buckets, bounding the relative quantization error of any recorded
//! value by `1 / 2^SUB_BUCKET_BITS` (~3 % at the default precision). That
//! makes `p(q)` exact *to within one bucket* of the true sorted-sample
//! percentile at every scale from nanoseconds to hours, with a few KB of
//! counts — the property `parbor-serve`'s latency CDFs and the fleet rate
//! accounting need.
//!
//! Snapshots are mergeable: per-thread shards record independently and
//! [`HistogramSnapshot::merge`] combines them without losing percentile
//! fidelity (bucket boundaries are global constants, so merging is an
//! element-wise add).

use serde::{Deserialize, Serialize};

/// Linear sub-buckets per octave, as a power of two. 5 bits = 32 sub-buckets
/// = at most 1/32 (~3.1 %) relative error on any recorded value.
pub const SUB_BUCKET_BITS: u32 = 5;

const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;
const SUB_MASK: usize = (SUB_BUCKETS - 1) as usize;

/// The bucket index a value lands in.
///
/// Indices are contiguous from 0 and strictly monotone in `value`, so the
/// index distance between two values bounds how far apart their buckets
/// are.
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    let magnitude = 63 - value.leading_zeros() as u64; // >= SUB_BUCKET_BITS
    let group = magnitude - u64::from(SUB_BUCKET_BITS) + 1;
    let sub = (value >> (magnitude - u64::from(SUB_BUCKET_BITS))) - SUB_BUCKETS;
    (group * SUB_BUCKETS + sub) as usize
}

/// The inclusive `[low, high]` value range of bucket `index` (the inverse
/// of [`bucket_index`]).
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    let group = (index >> SUB_BUCKET_BITS) as u64;
    let sub = (index & SUB_MASK) as u64;
    if group == 0 {
        return (sub, sub);
    }
    let width = 1u64 << (group - 1);
    let low = (SUB_BUCKETS + sub) << (group - 1);
    // `low + (width - 1)`: the top bucket ends exactly at `u64::MAX`, so
    // adding the full width first would overflow.
    (low, low + (width - 1))
}

/// A recording histogram: dense bucket counts grown on demand.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HdrHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl HdrHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let idx = bucket_index(value);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = if self.count == 1 {
            value
        } else {
            self.min.min(value)
        };
        self.max = self.max.max(value);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Freezes the current state into a mergeable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let used = self
            .counts
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| i + 1);
        HistogramSnapshot {
            counts: self.counts[..used].to_vec(),
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
        }
    }
}

/// Snapshot of one log-linear histogram; see the module docs for the bucket
/// scheme. Buckets are global constants, so snapshots from different shards
/// (or machines) merge losslessly.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Observation count per bucket, indexed by [`bucket_index`]; empty
    /// tail buckets are trimmed.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Saturating sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`): the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(q * count)`, clamped to
    /// the exact observed `[min, max]`. Within one bucket (≤ ~3 % relative
    /// error) of the true sorted-sample percentile.
    ///
    /// Returns 0 for an empty histogram.
    pub fn p(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, high) = bucket_bounds(idx);
                return high.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median shorthand.
    pub fn p50(&self) -> u64 {
        self.p(0.50)
    }

    /// 99th-percentile shorthand.
    pub fn p99(&self) -> u64 {
        self.p(0.99)
    }

    /// 99.9th-percentile shorthand.
    pub fn p999(&self) -> u64 {
        self.p(0.999)
    }

    /// Folds another snapshot into this one (element-wise bucket add).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..SUB_BUCKETS {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn indices_are_contiguous_and_monotone() {
        let mut prev = 0usize;
        let mut value = 0u64;
        while value < 1 << 20 {
            let idx = bucket_index(value);
            assert!(idx == prev || idx == prev + 1, "gap at value {value}");
            prev = prev.max(idx);
            value += 1 + value / 64; // sample densely at low magnitudes
        }
    }

    #[test]
    fn bounds_invert_the_index() {
        for &v in &[0u64, 1, 31, 32, 33, 63, 64, 100, 1000, 1 << 20, u64::MAX] {
            let idx = bucket_index(v);
            let (low, high) = bucket_bounds(idx);
            assert!(
                low <= v && v <= high,
                "value {v} outside bucket [{low},{high}]"
            );
            assert_eq!(bucket_index(low), idx);
            assert_eq!(bucket_index(high), idx);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for &v in &[100u64, 999, 12_345, 1 << 30, u64::MAX / 3] {
            let (low, high) = bucket_bounds(bucket_index(v));
            let width = high - low;
            assert!(
                (width as f64) <= v as f64 / SUB_BUCKETS as f64 + 1.0,
                "bucket width {width} too wide for value {v}"
            );
        }
    }

    #[test]
    fn percentiles_track_a_uniform_ramp() {
        let mut h = HdrHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10_000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 10_000);
        for (q, exact) in [(0.5, 5_000u64), (0.99, 9_900), (0.999, 9_990)] {
            let approx = s.p(q);
            let err = (approx as f64 - exact as f64).abs() / exact as f64;
            assert!(
                err <= 1.0 / SUB_BUCKETS as f64,
                "p({q}) = {approx}, exact {exact}"
            );
        }
        assert_eq!(s.p(0.0), 1);
        assert_eq!(s.p(1.0), 10_000);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = HdrHistogram::new();
        let mut b = HdrHistogram::new();
        let mut whole = HdrHistogram::new();
        for v in 0..500u64 {
            let v = v * v % 7919;
            if v % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
            whole.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, whole.snapshot());
    }

    #[test]
    fn empty_histogram_is_inert() {
        let s = HdrHistogram::new().snapshot();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.mean(), 0.0);
        let mut other = s.clone();
        other.merge(&s);
        assert_eq!(other, s);
    }
}
