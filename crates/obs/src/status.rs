//! The live status surface: a small JSON document the fleet orchestrator
//! atomically swaps while a campaign runs, and anything — `parbor fleet
//! top`, a dashboard, a shell script — polls to watch progress.
//!
//! Writes go through the same tmp-then-rename dance as the profile store,
//! so a reader never observes a half-written document; a crash leaves at
//! worst a stale one. All rates are computed by the writer from its
//! recorded histograms (not re-derived ad hoc), so the surface can never
//! disagree with the telemetry it summarizes.

use serde::{Deserialize, Serialize};

/// Snapshot of a fleet campaign, written to `status.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FleetStatus {
    /// Campaign phase: `"running"`, `"done"`, `"crashed"`, or `"halted"`.
    pub state: String,
    /// Total jobs in the campaign.
    pub jobs_total: u64,
    /// Jobs not yet claimed by a worker.
    pub jobs_queued: u64,
    /// Jobs currently executing.
    pub jobs_running: u64,
    /// Jobs finished successfully.
    pub jobs_done: u64,
    /// Jobs that errored.
    pub jobs_failed: u64,
    /// Jobs skipped (already complete on resume).
    pub jobs_skipped: u64,
    /// Detection rounds completed so far, across all jobs.
    pub rounds_done: u64,
    /// Rows written so far (each round writes every row under test).
    pub rows_written: u64,
    /// Wall-clock since the campaign started, milliseconds.
    pub elapsed_ms: u64,
    /// Detection-round throughput over the campaign so far.
    pub rounds_per_s: f64,
    /// Row-write throughput over the campaign so far.
    pub rows_per_s: f64,
    /// Rounds executed since the last durable checkpoint (work at risk if
    /// the process dies now).
    pub checkpoint_lag_rounds: u64,
    /// Milliseconds since the last durable checkpoint.
    pub checkpoint_lag_ms: u64,
    /// Estimated seconds to completion (absent until at least one job has
    /// finished, since the estimate extrapolates per-job wall-clock).
    pub eta_s: Option<f64>,
    /// Milliseconds since the campaign started when this document was
    /// written (lets a watcher spot a stale/abandoned surface).
    pub updated_ms: u64,
}

impl FleetStatus {
    /// File name of the status surface inside a fleet directory.
    pub const FILE_NAME: &'static str = "status.json";

    /// Atomically replaces `path` with this status (write tmp, rename).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_atomic(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        let mut json =
            serde_json::to_string_pretty(self).map_err(|e| std::io::Error::other(e.to_string()))?;
        json.push('\n');
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, path)
    }

    /// Loads a status document.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; malformed JSON surfaces as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<FleetStatus> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Whether the campaign has reached a terminal state.
    pub fn is_terminal(&self) -> bool {
        matches!(self.state.as_str(), "done" | "crashed" | "halted")
    }

    /// Renders the status as the multi-line panel `parbor fleet top`
    /// prints.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fleet {:<8} {:>4}/{} jobs done  ({} running, {} queued, {} failed, {} skipped)",
            self.state,
            self.jobs_done,
            self.jobs_total,
            self.jobs_running,
            self.jobs_queued,
            self.jobs_failed,
            self.jobs_skipped,
        );
        let _ = writeln!(
            out,
            "rounds {:>10}   {:>10.1} rounds/s   {:>12.0} rows/s",
            self.rounds_done, self.rounds_per_s, self.rows_per_s,
        );
        let _ = writeln!(
            out,
            "ckpt lag {:>6} rounds / {:>6} ms   elapsed {:>6.1} s   eta {}",
            self.checkpoint_lag_rounds,
            self.checkpoint_lag_ms,
            self.elapsed_ms as f64 / 1000.0,
            self.eta_s
                .map_or_else(|| "--".to_string(), |s| format!("{s:.1} s")),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FleetStatus {
        FleetStatus {
            state: "running".into(),
            jobs_total: 8,
            jobs_queued: 3,
            jobs_running: 1,
            jobs_done: 4,
            rounds_done: 1234,
            rows_written: 98_720,
            elapsed_ms: 2000,
            rounds_per_s: 617.0,
            rows_per_s: 49_360.0,
            checkpoint_lag_rounds: 34,
            checkpoint_lag_ms: 120,
            eta_s: Some(2.5),
            updated_ms: 2000,
            ..FleetStatus::default()
        }
    }

    #[test]
    fn round_trips_through_disk_atomically() {
        let dir = std::env::temp_dir().join(format!("parbor-obs-status-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(FleetStatus::FILE_NAME);
        let status = sample();
        status.write_atomic(&path).unwrap();
        assert_eq!(FleetStatus::load(&path).unwrap(), status);
        // No tmp file left behind.
        assert!(!path.with_extension("json.tmp").exists());
    }

    #[test]
    fn renders_jobs_rates_and_eta() {
        let text = sample().render();
        assert!(text.contains("4/8 jobs done"));
        assert!(text.contains("rounds/s"));
        assert!(text.contains("eta 2.5 s"));
        let done = FleetStatus {
            state: "done".into(),
            eta_s: None,
            ..sample()
        };
        assert!(done.is_terminal());
        assert!(done.render().contains("eta --"));
        assert!(!sample().is_terminal());
    }

    #[test]
    fn malformed_status_is_invalid_data() {
        let dir = std::env::temp_dir().join(format!("parbor-obs-badstatus-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("status.json");
        std::fs::write(&path, "{torn").unwrap();
        let err = FleetStatus::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
