//! [`ShardedRecorder`]: contention-free recording for scoped-thread
//! parallelism, and [`ObsSnapshot`], the merged read-side view every
//! recorder drains into.
//!
//! The record path touches **no shared lock**: each thread is assigned a
//! shard slot on first use (a round-robin thread-local, so the first
//! `shards` threads get exclusive slots) and every `incr`/`observe`/span
//! call locks only that shard's own mutex — uncontended unless more
//! threads than shards are recording at once, in which case slots are
//! shared but remain correct. Counters merge by summation, histograms by
//! bucket-wise addition (see [`crate::hist`]), gauges by a global write
//! sequence so last-write-wins survives the merge, and spans carry their
//! shard in the id's high bits so a guard may drop on any thread.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use crate::hist::{HdrHistogram, HistogramSnapshot};
use crate::recorder::{Recorder, SpanId, SpanRecord};

/// Bits below the shard tag in a [`SpanId`].
const SPAN_SHARD_SHIFT: u32 = 40;

/// Round-robin source of thread slots. Global (not per recorder) so a
/// thread keeps one stable slot number for its whole life; each recorder
/// reduces it modulo its own shard count.
static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SLOT: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

fn thread_slot() -> usize {
    THREAD_SLOT.with(|slot| {
        let mut v = slot.get();
        if v == usize::MAX {
            v = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
            slot.set(v);
        }
        v
    })
}

#[derive(Default)]
struct ShardInner {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HdrHistogram>,
    /// Gauge name → (global write sequence, value).
    gauges: BTreeMap<String, (u64, i64)>,
    spans: Vec<SpanRecord>,
    open: Vec<SpanId>,
    next_local: u64,
}

/// Per-thread recording shard. The mutex is private to the shard; see the
/// module docs for why the record path never blocks on another thread.
#[derive(Default)]
struct Shard {
    inner: Mutex<ShardInner>,
}

impl Shard {
    fn lock(&self) -> MutexGuard<'_, ShardInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A sharded, low-overhead recorder: per-thread slots on the record path,
/// merged into an [`ObsSnapshot`] on demand.
pub struct ShardedRecorder {
    epoch: Instant,
    shards: Box<[Shard]>,
    gauge_seq: AtomicU64,
}

impl std::fmt::Debug for ShardedRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRecorder")
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

impl Default for ShardedRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedRecorder {
    /// A recorder with one shard per hardware thread (at least 8, rounded
    /// up to a power of two so slot assignment is a mask).
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::with_shards(threads.max(8).next_power_of_two())
    }

    /// A recorder with exactly `shards` slots (rounded up to a power of
    /// two, minimum 1). Span parent tracking is exact while at most
    /// `shards` threads record concurrently.
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        ShardedRecorder {
            epoch: Instant::now(),
            shards: (0..shards).map(|_| Shard::default()).collect(),
            gauge_seq: AtomicU64::new(0),
        }
    }

    /// Creates a recorder already wrapped in an `Arc` (mirrors
    /// [`InMemoryRecorder::handle`](crate::InMemoryRecorder::handle)).
    pub fn handle() -> Arc<ShardedRecorder> {
        Arc::new(Self::new())
    }

    /// Number of shard slots.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self) -> &Shard {
        // Power-of-two length, so modulo is a mask.
        &self.shards[thread_slot() & (self.shards.len() - 1)]
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Merges every shard into one consistent snapshot. Concurrent
    /// recording may continue; each shard is locked briefly in turn.
    pub fn snapshot(&self) -> ObsSnapshot {
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut histograms: BTreeMap<String, HistogramSnapshot> = BTreeMap::new();
        let mut gauges: BTreeMap<String, (u64, i64)> = BTreeMap::new();
        let mut spans: Vec<SpanRecord> = Vec::new();
        for shard in self.shards.iter() {
            let inner = shard.lock();
            for (name, &v) in &inner.counters {
                *counters.entry(name.clone()).or_insert(0) += v;
            }
            for (name, h) in &inner.histograms {
                histograms
                    .entry(name.clone())
                    .or_default()
                    .merge(&h.snapshot());
            }
            for (name, &(seq, v)) in &inner.gauges {
                match gauges.get_mut(name) {
                    Some(existing) if existing.0 >= seq => {}
                    Some(existing) => *existing = (seq, v),
                    None => {
                        gauges.insert(name.clone(), (seq, v));
                    }
                }
            }
            spans.extend(inner.spans.iter().filter(|s| s.end_us.is_some()).cloned());
        }
        // Finish order across shards; on an end-time tie, the higher id
        // (the deeper span) first, preserving the children-before-parents
        // property of single-threaded traces.
        spans.sort_by_key(|s| (s.end_us.unwrap_or(u64::MAX), std::cmp::Reverse(s.id)));
        ObsSnapshot {
            counters,
            gauges: gauges.into_iter().map(|(k, (_, v))| (k, v)).collect(),
            histograms,
            spans,
        }
    }
}

impl Recorder for ShardedRecorder {
    fn incr(&self, name: &str, delta: u64) {
        let mut inner = self.shard().lock();
        // `get_mut` first: the hot path (an existing counter) must not
        // allocate a fresh `String` per call.
        match inner.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                inner.counters.insert(name.to_string(), delta);
            }
        }
    }

    fn observe(&self, name: &str, value: u64) {
        let mut inner = self.shard().lock();
        match inner.histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = HdrHistogram::new();
                h.record(value);
                inner.histograms.insert(name.to_string(), h);
            }
        }
    }

    fn gauge(&self, name: &str, value: i64) {
        let seq = self.gauge_seq.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.shard().lock();
        inner.gauges.insert(name.to_string(), (seq, value));
    }

    fn span_enter(&self, name: &str, value: Option<u64>) -> SpanId {
        let start_us = self.now_us();
        let slot = thread_slot() & (self.shards.len() - 1);
        let mut inner = self.shards[slot].lock();
        inner.next_local += 1;
        let id = ((slot as u64 + 1) << SPAN_SHARD_SHIFT) | inner.next_local;
        let parent = inner.open.last().copied();
        inner.spans.push(SpanRecord {
            id,
            parent,
            name: name.to_string(),
            value,
            start_us,
            end_us: None,
        });
        inner.open.push(id);
        id
    }

    fn span_exit(&self, id: SpanId) {
        let end_us = self.now_us();
        // The id names its shard, so a guard may drop on any thread.
        let slot = ((id >> SPAN_SHARD_SHIFT) as usize).wrapping_sub(1);
        let Some(shard) = self.shards.get(slot) else {
            return;
        };
        let mut inner = shard.lock();
        if let Some(pos) = inner.open.iter().rposition(|&open| open == id) {
            inner.open.truncate(pos);
        }
        if let Some(span) = inner
            .spans
            .iter_mut()
            .rev()
            .find(|s| s.id == id && s.end_us.is_none())
        {
            span.end_us = Some(end_us);
        }
    }
}

/// The merged, read-only view of everything a recorder captured: the one
/// type summaries, traces, and the profiler consume, whatever recorder
/// produced it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObsSnapshot {
    /// Final counter values, keyed by name.
    pub counters: BTreeMap<String, u64>,
    /// Final gauge values (last write wins across shards).
    pub gauges: BTreeMap<String, i64>,
    /// Merged histogram snapshots.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Finished spans in finish order (children before parents).
    pub spans: Vec<SpanRecord>,
}

impl ObsSnapshot {
    /// Value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Snapshot of a histogram (`None` if nothing was observed).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Every name this snapshot mentions — counters, gauges, histograms,
    /// and span names — sorted and deduplicated. The metric-name registry
    /// test walks this.
    pub fn metric_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .cloned()
            .chain(self.spans.iter().map(|s| s.name.clone()))
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// The span event stream as JSONL: one JSON object per line, spans in
    /// finish order followed by one `counter` event per counter.
    pub fn trace_jsonl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for s in &self.spans {
            let parent = s.parent.map_or("null".to_string(), |p| p.to_string());
            let value = s.value.map_or("null".to_string(), |v| v.to_string());
            let _ = writeln!(
                out,
                "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":{},\"value\":{},\"start_us\":{},\"dur_us\":{}}}",
                s.id,
                parent,
                serde_json::to_string(&s.name).unwrap_or_default(),
                value,
                s.start_us,
                s.duration_us(),
            );
        }
        for (name, value) in &self.counters {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"name\":{},\"value\":{value}}}",
                serde_json::to_string(name).unwrap_or_default(),
            );
        }
        out
    }

    /// Writes [`trace_jsonl`](ObsSnapshot::trace_jsonl) to `path`, creating
    /// parent directories as needed and rotating the previous trace to
    /// `<path>.1` when the combined size would exceed `cap_bytes` (see
    /// [`crate::trace::rotate_if_needed`]). Returns whether a rotation
    /// happened.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_trace_rotating(
        &self,
        path: impl AsRef<std::path::Path>,
        cap_bytes: u64,
    ) -> std::io::Result<bool> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let jsonl = self.trace_jsonl();
        let rotated = crate::trace::rotate_if_needed(path, jsonl.len() as u64, cap_bytes)?;
        std::fs::write(path, jsonl)?;
        Ok(rotated)
    }

    /// Wall-clock totals per span name, as an aligned text table sorted by
    /// total time (descending).
    pub fn phase_table(&self) -> String {
        use std::fmt::Write as _;
        let mut totals: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for s in &self.spans {
            let entry = totals.entry(s.name.clone()).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += s.duration_us();
        }
        let mut rows: Vec<(String, u64, u64)> =
            totals.into_iter().map(|(n, (c, t))| (n, c, t)).collect();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        let name_width = rows
            .iter()
            .map(|(n, _, _)| n.len())
            .max()
            .unwrap_or(5)
            .max(5);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<name_width$}  {:>6}  {:>12}",
            "phase", "count", "total"
        );
        for (name, count, total_us) in rows {
            let _ = writeln!(
                out,
                "{name:<name_width$}  {count:>6}  {:>9}.{:03} ms",
                total_us / 1000,
                total_us % 1000,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_across_threads_exactly() {
        // Scoped threads hammer disjoint and shared counter names; the
        // merged snapshot must account for every single increment.
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        let rec = ShardedRecorder::with_shards(4); // fewer shards than threads
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let rec = &rec;
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        rec.incr("shared.total", 1);
                        rec.incr(if t % 2 == 0 { "even" } else { "odd" }, 2);
                        rec.observe("lat", i % 997);
                    }
                });
            }
        });
        let snap = rec.snapshot();
        assert_eq!(snap.counter("shared.total"), THREADS * PER_THREAD);
        assert_eq!(snap.counter("even"), THREADS / 2 * PER_THREAD * 2);
        assert_eq!(snap.counter("odd"), THREADS / 2 * PER_THREAD * 2);
        let lat = snap.histogram("lat").expect("histogram recorded");
        assert_eq!(lat.count, THREADS * PER_THREAD);
        assert_eq!(lat.max, 996);
    }

    #[test]
    fn gauges_keep_the_last_write_across_shards() {
        let rec = ShardedRecorder::with_shards(4);
        rec.gauge("g", 1);
        std::thread::scope(|s| {
            s.spawn(|| rec.gauge("g", 7));
        });
        rec.gauge("g", 42);
        assert_eq!(rec.snapshot().gauge("g"), Some(42));
    }

    #[test]
    fn spans_nest_per_thread_and_merge() {
        let rec = ShardedRecorder::with_shards(8);
        {
            let _outer = crate::span!(rec, "outer");
            let _inner = crate::span!(rec, "inner", 3);
        }
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let inner = snap.spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = snap.spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(inner.value, Some(3));
        assert_eq!(outer.parent, None);
        // Children precede parents in finish order.
        assert_eq!(snap.spans[0].name, "inner");
    }

    #[test]
    fn parallel_spans_do_not_cross_parent() {
        let rec = ShardedRecorder::with_shards(8);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rec = &rec;
                s.spawn(move || {
                    let _root = crate::span!(*rec, "thread.root");
                    let _leaf = crate::span!(*rec, "thread.leaf");
                });
            }
        });
        let snap = rec.snapshot();
        let roots: Vec<_> = snap
            .spans
            .iter()
            .filter(|s| s.name == "thread.root")
            .collect();
        assert_eq!(roots.len(), 4);
        assert!(roots.iter().all(|s| s.parent.is_none()));
        for leaf in snap.spans.iter().filter(|s| s.name == "thread.leaf") {
            let parent = leaf.parent.expect("leaf has a parent");
            assert!(roots.iter().any(|r| r.id == parent));
        }
    }

    #[test]
    fn snapshot_mirrors_in_memory_semantics() {
        let rec = ShardedRecorder::with_shards(1);
        rec.incr("a", 2);
        rec.incr("a", 3);
        rec.observe("h", 7);
        rec.gauge("g", -4);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("a"), 5);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.gauge("g"), Some(-4));
        assert_eq!(snap.histogram("h").unwrap().sum, 7);
        assert!(snap.metric_names().contains(&"a".to_string()));
    }
}
