//! The canonical registry of every metric and span name the workspace
//! emits.
//!
//! Names are plain strings at the recording site, which makes a typo'd
//! metric silent: it records fine, dashboards just never see it. The
//! constants here are the single spelling authority — producers record
//! through them, consumers (`bench_report`, `fleet top`, tests) read
//! through them, and [`is_registered`] lets the registry test run the full
//! pipeline and reject any emitted name that is not declared below.
//!
//! Naming convention: `<subsystem>.<noun>` with `snake_case` nouns;
//! histograms of per-round quantities end in a plural (`round_flips`),
//! spans name the thing being timed (`pipeline.discover`).

/// Names recorded by the detection pipeline's stage spans
/// (`crates/parbor/src/pipeline.rs`).
pub mod pipeline {
    /// Span: one full detection run end to end.
    pub const RUN: &str = "pipeline.run";
    /// Span: the victim-discovery stage.
    pub const DISCOVER: &str = "pipeline.discover";
    /// Span: the recursive neighborhood-narrowing stage.
    pub const RECURSION: &str = "pipeline.recursion";
    /// Span: the chip-wide verification stage.
    pub const CHIPWIDE: &str = "pipeline.chipwide";
}

/// Names recorded during victim discovery.
pub mod discover {
    /// Counter: victim rows admitted to the working set.
    pub const VICTIMS: &str = "discover.victims";
    /// Counter: detection rounds executed while discovering.
    pub const ROUNDS: &str = "discover.rounds";
    /// Histogram: bit flips observed per discovery round.
    pub const ROUND_FLIPS: &str = "discover.round_flips";
}

/// Names recorded by the recursive narrowing stage.
pub mod recursion {
    /// Span: one recursion level; the payload is the region size.
    pub const LEVEL: &str = "recursion.level";
    /// Counter: neighborhood tests executed (the paper's Table 1 count).
    pub const TESTS: &str = "recursion.tests";
    /// Counter: candidate victims discarded as non-reproducing.
    pub const VICTIMS_DISCARDED: &str = "recursion.victims_discarded";
}

/// Names recorded while aggregating recursion results.
pub mod aggregate {
    /// Counter: coupling distances kept after ranking.
    pub const DISTANCES_KEPT: &str = "aggregate.distances_kept";
    /// Counter: coupling distances dropped by the ranking cut.
    pub const DISTANCES_DROPPED: &str = "aggregate.distances_dropped";
}

/// Names recorded by the chip-wide verification stage.
pub mod chipwide {
    /// Counter: detection rounds executed chip-wide.
    pub const ROUNDS: &str = "chipwide.rounds";
    /// Histogram: bit flips observed per chip-wide round.
    pub const ROUND_FLIPS: &str = "chipwide.round_flips";
    /// Counter: data-dependent failures confirmed.
    pub const FAILURES: &str = "chipwide.failures";
}

/// Names recorded by the simulated DRAM chip and module
/// (`crates/dram`).
pub mod dram {
    /// Counter: detection rounds applied to a chip.
    pub const ROUNDS: &str = "dram.rounds";
    /// Counter: row reads served.
    pub const ROW_READS: &str = "dram.row_reads";
    /// Counter: row writes served.
    pub const ROW_WRITES: &str = "dram.row_writes";
    /// Gauge: rows currently resident in the evaluation cache.
    pub const EVAL_CACHE: &str = "dram.eval_cache";
    /// Counter: evaluation-cache hits.
    pub const EVAL_CACHE_HITS: &str = "dram.eval_cache_hits";
    /// Counter: evaluation-cache misses.
    pub const EVAL_CACHE_MISSES: &str = "dram.eval_cache_misses";
    /// Gauge: fault maps currently cached.
    pub const FAULT_MAP_CACHE: &str = "dram.fault_map_cache";
    /// Counter: fault maps built.
    pub const FAULT_MAPS_BUILT: &str = "dram.fault_maps_built";
    /// Counter: fault maps evicted from the cache.
    pub const FAULT_MAPS_EVICTED: &str = "dram.fault_maps_evicted";
    /// Counter: scrambler address translations performed through the trait
    /// path (arithmetic per call).
    pub const SCRAMBLER_TRANSLATIONS: &str = "dram.scrambler_translations";
    /// Counter: scrambler address translations served from a precomputed
    /// lookup table instead of the trait path.
    pub const SCRAMBLER_LUT_LOOKUPS: &str = "dram.scrambler_lut_lookups";
    /// Counter: port-level detection rounds (module fan-out).
    pub const PORT_ROUNDS: &str = "dram.port_rounds";
    /// Histogram: row writes per port-level round.
    pub const PORT_ROUND_WRITES: &str = "dram.port_round_writes";
    /// Histogram: bit flips per port-level round.
    pub const PORT_ROUND_FLIPS: &str = "dram.port_round_flips";
}

/// Names recorded by the `parbor efficacy` harness
/// (`crates/parbor/src/efficacy.rs`): per-cell detection quality of the
/// pipeline against each failure mechanism.
pub mod efficacy {
    /// Counter: truth cells the pipeline missed, summed over runs.
    pub const FALSE_NEGATIVES: &str = "efficacy.false_negatives";
    /// Counter: detected cells outside the mechanism truth set.
    pub const FALSE_POSITIVES: &str = "efficacy.false_positives";
    /// Counter: mechanism × vendor pipeline runs executed.
    pub const RUNS: &str = "efficacy.runs";
    /// Counter: truth cells the pipeline detected.
    pub const TRUE_POSITIVES: &str = "efficacy.true_positives";
}

/// Names recorded by the HAL round executor (`crates/hal`).
pub mod engine {
    /// Counter: rounds executed through the engine.
    pub const ROUNDS: &str = "engine.rounds";
    /// Counter: round-arena buffer requests served from the pool (each hit
    /// is one heap allocation avoided on the round hot path).
    pub const ARENA_HITS: &str = "engine.arena_hits";
    /// Counter: round-arena buffer requests that fell through to a fresh
    /// allocation (pool empty or still warming up).
    pub const ARENA_MISSES: &str = "engine.arena_misses";
    /// Counter: buffers returned to the round arena for reuse.
    pub const ARENA_RECYCLED: &str = "engine.arena_recycled";
    /// Histogram: row writes per engine round.
    pub const ROUND_WRITES: &str = "engine.round_writes";
    /// Histogram: bit flips per engine round.
    pub const ROUND_FLIPS: &str = "engine.round_flips";
    /// Histogram: rounds per submitted batch.
    pub const BATCH_ROUNDS: &str = "engine.batch_rounds";
}

/// Names recorded by the composable failure-mechanism layer — the chip's
/// extra-mechanism stack (`crates/dram`) and the mechanism-backed port
/// injector (`crates/hal/src/inject.rs`).
pub mod mech {
    /// Counter: mechanism flips merged into round results.
    pub const FLIPS: &str = "mech.flips";
    /// Counter: rounds evaluated against a non-empty mechanism stack.
    pub const ROUNDS: &str = "mech.rounds";
    /// Counter: mechanism flips dropped because the base model (or inner
    /// port) already flipped the same bit.
    pub const SUPPRESSED: &str = "mech.suppressed";
}

/// Names recorded by the memory-controller simulator (`crates/memsim`).
pub mod memsim {
    /// Counter: accesses that hit the open row.
    pub const ROW_HITS: &str = "memsim.row_hits";
    /// Counter: accesses that forced an activate.
    pub const ROW_MISSES: &str = "memsim.row_misses";
    /// Counter: refresh windows owed and issued.
    pub const REFRESH_WINDOWS: &str = "memsim.refresh_windows";
    /// Counter: DC-REF reclassifications of a weak row to the slow bin.
    pub const DCREF_FAST_TO_SLOW: &str = "memsim.dcref_fast_to_slow";
    /// Counter: DC-REF reclassifications of a weak row to the fast bin.
    pub const DCREF_SLOW_TO_FAST: &str = "memsim.dcref_slow_to_fast";
}

/// Names recorded by the figure-reproduction harness (`crates/repro`).
pub mod figure {
    /// Span: one paper-figure reproduction run.
    pub const RUN: &str = "figure.run";
}

/// Names recorded by the `parbor-fleet` scan orchestrator.
pub mod fleet {
    /// Counter: jobs accepted into the queue (excludes jobs already in the
    /// profile store).
    pub const JOBS_QUEUED: &str = "fleet.jobs_queued";
    /// Gauge: jobs currently executing on a worker.
    pub const JOBS_RUNNING: &str = "fleet.jobs_running";
    /// Counter: jobs that finished and landed a profile in the store.
    pub const JOBS_DONE: &str = "fleet.jobs_done";
    /// Counter: jobs that errored (no profile landed).
    pub const JOBS_FAILED: &str = "fleet.jobs_failed";
    /// Counter: checkpoint records appended to job journals.
    pub const CHECKPOINTS: &str = "fleet.checkpoints";
    /// Counter: bytes of checkpoint records written (framing included).
    pub const CHECKPOINT_BYTES: &str = "fleet.checkpoint_bytes";
    /// Counter: jobs resumed from a journal instead of started fresh.
    pub const RESUMES: &str = "fleet.resumes";
    /// Counter: recovery events — a journal tail or store segment failed
    /// its checksum and was rolled back to the last valid record.
    pub const RECOVERY: &str = "fleet.recovery";
    /// Span: one scan job from claim to completion.
    pub const JOB_SPAN: &str = "fleet.job";
    /// Histogram: wall-clock per completed job, microseconds (the source
    /// of `bench_report`'s fleet rates and `status.json`'s ETA).
    pub const JOB_US: &str = "fleet.job_us";
    /// Span: one campaign from first claim to final store flush.
    pub const CAMPAIGN_SPAN: &str = "fleet.campaign";
}

/// Names recorded by the `parbor-serve` profile-query service.
///
/// Workers count locally on the hot path (no recorder call per request)
/// and flush these once at shutdown, so a saturated server costs the
/// recorder a handful of calls per run, not one per query.
pub mod serve {
    /// Counter: requests answered (all types, across workers).
    pub const ANSWERED: &str = "serve.answered";
    /// Counter: worker-arena index buffers served from the pool. The
    /// hit/(hit+miss) ratio is the zero-allocation assertion in CI.
    pub const ARENA_HITS: &str = "serve.arena_hits";
    /// Counter: worker-arena index buffers that allocated fresh.
    pub const ARENA_MISSES: &str = "serve.arena_misses";
    /// Counter: worker-arena index buffers returned to the pool.
    pub const ARENA_RECYCLED: &str = "serve.arena_recycled";
    /// Counter: `ContentCheck` requests answered.
    pub const CONTENT_CHECKS: &str = "serve.content_checks";
    /// Counter: requests rejected at a full worker queue (accounted
    /// drops; offered = answered + dropped + still-queued).
    pub const DROPPED: &str = "serve.dropped";
    /// Counter: content checks whose row content matched a worst-case
    /// coupling pattern (at least one failing lane).
    pub const HOT_ROWS: &str = "serve.hot_rows";
    /// Gauge: p50 request latency in nanoseconds (merged workers).
    pub const LATENCY_P50_NS: &str = "serve.latency_p50_ns";
    /// Gauge: p99.9 request latency in nanoseconds (merged workers).
    pub const LATENCY_P999_NS: &str = "serve.latency_p999_ns";
    /// Gauge: p99 request latency in nanoseconds (merged workers).
    pub const LATENCY_P99_NS: &str = "serve.latency_p99_ns";
    /// Counter: `RescanQuery` requests answered.
    pub const RESCAN_QUERIES: &str = "serve.rescan_queries";
    /// Counter: responses dropped because the client vanished without
    /// draining its reply ring (zero under the documented in-flight cap).
    pub const RESP_DROPPED: &str = "serve.resp_dropped";
    /// Span: one server lifetime from first worker spawn to drain.
    pub const RUN: &str = "serve.run";
    /// Counter: `StoreStats` requests answered.
    pub const STORE_STATS: &str = "serve.store_stats";
    /// Gauge: workers serving at shutdown.
    pub const WORKERS: &str = "serve.workers";
}

/// Names recorded by the `parbor-store` columnar profile storage engine.
pub mod store {
    /// Counter: live records folded into streaming aggregation.
    pub const AGG_RECORDS: &str = "store.agg_records";
    /// Counter: segment files streamed during aggregation.
    pub const AGG_SEGMENTS: &str = "store.agg_segments";
    /// Span: one generational compaction end to end.
    pub const COMPACT_SPAN: &str = "store.compact";
    /// Counter: bytes written into compacted generations.
    pub const COMPACT_BYTES: &str = "store.compact_bytes";
    /// Counter: records written into compacted generations.
    pub const COMPACT_RECORDS: &str = "store.compact_records";
    /// Counter: compactions completed (the manifest swap landed and the
    /// index was rewritten).
    pub const COMPACTIONS: &str = "store.compactions";
    /// Counter: stale files collected — retired compaction inputs, orphan
    /// chunks from a crashed compaction, leftover temp files.
    pub const GC_FILES: &str = "store.gc_files";
    /// Counter: reads served from v1 JSONL segments awaiting migration.
    pub const LEGACY_READS: &str = "store.legacy_reads";
    /// Counter: bytes written through `put`/`stage` (magic and framing
    /// included).
    pub const PUT_BYTES: &str = "store.put_bytes";
    /// Counter: profiles written through `put`/`stage`.
    pub const PUTS: &str = "store.puts";
    /// Counter: profile reads served (columnar and legacy).
    pub const READS: &str = "store.reads";
    /// Counter: recovery events — a record needed salvage, a torn manifest
    /// was rebuilt from segments, or a crashed compaction was rolled
    /// forward.
    pub const RECOVERY: &str = "store.recovery";
}

/// Every registered name, in ASCII order (checked by a test) so
/// [`is_registered`] can binary-search and the slice doubles as
/// documentation.
pub const ALL: &[&str] = &[
    aggregate::DISTANCES_DROPPED,
    aggregate::DISTANCES_KEPT,
    chipwide::FAILURES,
    chipwide::ROUND_FLIPS,
    chipwide::ROUNDS,
    discover::ROUND_FLIPS,
    discover::ROUNDS,
    discover::VICTIMS,
    dram::EVAL_CACHE,
    dram::EVAL_CACHE_HITS,
    dram::EVAL_CACHE_MISSES,
    dram::FAULT_MAP_CACHE,
    dram::FAULT_MAPS_BUILT,
    dram::FAULT_MAPS_EVICTED,
    dram::PORT_ROUND_FLIPS,
    dram::PORT_ROUND_WRITES,
    dram::PORT_ROUNDS,
    dram::ROUNDS,
    dram::ROW_READS,
    dram::ROW_WRITES,
    dram::SCRAMBLER_LUT_LOOKUPS,
    dram::SCRAMBLER_TRANSLATIONS,
    efficacy::FALSE_NEGATIVES,
    efficacy::FALSE_POSITIVES,
    efficacy::RUNS,
    efficacy::TRUE_POSITIVES,
    engine::ARENA_HITS,
    engine::ARENA_MISSES,
    engine::ARENA_RECYCLED,
    engine::BATCH_ROUNDS,
    engine::ROUND_FLIPS,
    engine::ROUND_WRITES,
    engine::ROUNDS,
    figure::RUN,
    fleet::CAMPAIGN_SPAN,
    fleet::CHECKPOINT_BYTES,
    fleet::CHECKPOINTS,
    fleet::JOB_SPAN,
    fleet::JOB_US,
    fleet::JOBS_DONE,
    fleet::JOBS_FAILED,
    fleet::JOBS_QUEUED,
    fleet::JOBS_RUNNING,
    fleet::RECOVERY,
    fleet::RESUMES,
    mech::FLIPS,
    mech::ROUNDS,
    mech::SUPPRESSED,
    memsim::DCREF_FAST_TO_SLOW,
    memsim::DCREF_SLOW_TO_FAST,
    memsim::REFRESH_WINDOWS,
    memsim::ROW_HITS,
    memsim::ROW_MISSES,
    pipeline::CHIPWIDE,
    pipeline::DISCOVER,
    pipeline::RECURSION,
    pipeline::RUN,
    recursion::LEVEL,
    recursion::TESTS,
    recursion::VICTIMS_DISCARDED,
    serve::ANSWERED,
    serve::ARENA_HITS,
    serve::ARENA_MISSES,
    serve::ARENA_RECYCLED,
    serve::CONTENT_CHECKS,
    serve::DROPPED,
    serve::HOT_ROWS,
    serve::LATENCY_P50_NS,
    serve::LATENCY_P999_NS,
    serve::LATENCY_P99_NS,
    serve::RESCAN_QUERIES,
    serve::RESP_DROPPED,
    serve::RUN,
    serve::STORE_STATS,
    serve::WORKERS,
    store::AGG_RECORDS,
    store::AGG_SEGMENTS,
    store::COMPACT_SPAN,
    store::COMPACT_BYTES,
    store::COMPACT_RECORDS,
    store::COMPACTIONS,
    store::GC_FILES,
    store::LEGACY_READS,
    store::PUT_BYTES,
    store::PUTS,
    store::READS,
    store::RECOVERY,
];

/// Whether `name` is a registered metric or span name.
pub fn is_registered(name: &str) -> bool {
    ALL.binary_search(&name).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        for pair in ALL.windows(2) {
            assert!(pair[0] < pair[1], "{:?} out of order", pair);
        }
    }

    #[test]
    fn lookup_finds_registered_names_only() {
        assert!(is_registered(pipeline::RUN));
        assert!(is_registered(fleet::JOB_US));
        assert!(is_registered(mech::FLIPS));
        assert!(is_registered(efficacy::TRUE_POSITIVES));
        assert!(!is_registered("pipeline.runn"));
        assert!(!is_registered("mech.flipss"));
        assert!(!is_registered(""));
    }

    #[test]
    fn names_follow_the_subsystem_dot_noun_convention() {
        for name in ALL {
            let (subsystem, noun) = name.split_once('.').expect("dot-separated");
            assert!(!subsystem.is_empty() && !noun.is_empty(), "bad name {name}");
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "bad characters in {name}"
            );
        }
    }
}
