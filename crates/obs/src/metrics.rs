//! Canonical metric names shared across crates.
//!
//! Metric names are plain strings at the recording site; the constants here
//! exist so producers (the fleet orchestrator) and consumers (dashboards,
//! tests, `bench_report`) agree on spelling without a string literal in
//! every call site. Stage-level names (`discover.*`, `recursion.*`,
//! `chipwide.*`, `dram.*`) predate this module and stay literal in their
//! crates; new subsystems should add their names here.

/// Names recorded by the `parbor-fleet` scan orchestrator.
pub mod fleet {
    /// Counter: jobs accepted into the queue (excludes jobs already in the
    /// profile store).
    pub const JOBS_QUEUED: &str = "fleet.jobs_queued";
    /// Gauge: jobs currently executing on a worker.
    pub const JOBS_RUNNING: &str = "fleet.jobs_running";
    /// Counter: jobs that finished and landed a profile in the store.
    pub const JOBS_DONE: &str = "fleet.jobs_done";
    /// Counter: jobs that errored (no profile landed).
    pub const JOBS_FAILED: &str = "fleet.jobs_failed";
    /// Counter: checkpoint records appended to job journals.
    pub const CHECKPOINTS: &str = "fleet.checkpoints";
    /// Counter: bytes of checkpoint records written (framing included).
    pub const CHECKPOINT_BYTES: &str = "fleet.checkpoint_bytes";
    /// Counter: jobs resumed from a journal instead of started fresh.
    pub const RESUMES: &str = "fleet.resumes";
    /// Counter: recovery events — a journal tail or store segment failed
    /// its checksum and was rolled back to the last valid record.
    pub const RECOVERY: &str = "fleet.recovery";
    /// Span: one scan job from claim to completion.
    pub const JOB_SPAN: &str = "fleet.job";
}
