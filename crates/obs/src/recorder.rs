//! The [`Recorder`] trait and its in-process implementations.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::hist::{HdrHistogram, HistogramSnapshot};
use crate::shard::ObsSnapshot;

/// Identifier of an open span. `0` means "no span" (the null recorder).
pub type SpanId = u64;

/// Sink for metrics and spans emitted by instrumented code.
///
/// All methods take `&self`; implementations are internally synchronized so
/// a recorder can be shared across the pipeline, device, and simulator via
/// an `Arc` ([`RecorderHandle`]).
pub trait Recorder: Send + Sync {
    /// Whether this recorder observes anything. Instrumentation sites may
    /// skip computing expensive values when this is `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Adds `delta` to the named monotonic counter.
    fn incr(&self, name: &str, delta: u64);

    /// Records one observation into the named log-linear histogram (see
    /// [`crate::hist`] for the bucket scheme).
    fn observe(&self, name: &str, value: u64);

    /// Sets the named gauge to `value` (last write wins).
    fn gauge(&self, name: &str, value: i64);

    /// Opens a span; the currently open span (if any) becomes its parent.
    /// Prefer the [`span!`](crate::span) macro, whose guard closes the span
    /// on scope exit.
    fn span_enter(&self, name: &str, value: Option<u64>) -> SpanId;

    /// Closes a span opened by [`Recorder::span_enter`].
    fn span_exit(&self, id: SpanId);
}

/// How instrumented structs carry their recorder: a cheap-to-clone handle
/// that derefs to `dyn Recorder` and defaults to the null recorder.
///
/// The handle implements `Debug`/`PartialEq`/`Eq` so it can ride inside
/// derive-heavy structs: equality always holds, because observability must
/// never affect a value's identity or behavior.
#[derive(Clone)]
pub struct RecorderHandle(Arc<dyn Recorder>);

impl RecorderHandle {
    /// Wraps a recorder.
    pub fn new(rec: Arc<dyn Recorder>) -> Self {
        RecorderHandle(rec)
    }

    /// The shared no-op handle (what [`Default`] returns).
    pub fn null() -> Self {
        null_recorder()
    }
}

impl<R: Recorder + 'static> From<Arc<R>> for RecorderHandle {
    fn from(rec: Arc<R>) -> Self {
        RecorderHandle(rec)
    }
}

impl From<Arc<dyn Recorder>> for RecorderHandle {
    fn from(rec: Arc<dyn Recorder>) -> Self {
        RecorderHandle(rec)
    }
}

impl Default for RecorderHandle {
    fn default() -> Self {
        null_recorder()
    }
}

impl std::ops::Deref for RecorderHandle {
    type Target = dyn Recorder;

    fn deref(&self) -> &Self::Target {
        &*self.0
    }
}

impl std::fmt::Debug for RecorderHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecorderHandle")
            .field("enabled", &self.0.enabled())
            .finish()
    }
}

impl PartialEq for RecorderHandle {
    fn eq(&self, _other: &Self) -> bool {
        true // recorders never contribute to a value's identity
    }
}

impl Eq for RecorderHandle {}

impl AsRecorder for RecorderHandle {
    fn as_dyn(&self) -> &dyn Recorder {
        &*self.0
    }
}

/// The shared no-op recorder instrumented structs default to.
pub fn null_recorder() -> RecorderHandle {
    static NULL: OnceLock<Arc<dyn Recorder>> = OnceLock::new();
    RecorderHandle(Arc::clone(NULL.get_or_init(|| Arc::new(NullRecorder))))
}

/// Converts recorder-ish values to `&dyn Recorder` (used by the
/// [`span!`](crate::span) macro so it accepts concrete recorders,
/// `&dyn Recorder`, and [`RecorderHandle`]s alike).
pub trait AsRecorder {
    /// The value as a trait object.
    fn as_dyn(&self) -> &dyn Recorder;
}

impl<R: Recorder> AsRecorder for R {
    fn as_dyn(&self) -> &dyn Recorder {
        self
    }
}

impl AsRecorder for Arc<dyn Recorder> {
    fn as_dyn(&self) -> &dyn Recorder {
        &**self
    }
}

impl AsRecorder for &dyn Recorder {
    fn as_dyn(&self) -> &dyn Recorder {
        *self
    }
}

/// Closes its span when dropped.
#[must_use = "the span closes when this guard drops"]
pub struct SpanGuard<'a> {
    rec: &'a dyn Recorder,
    id: SpanId,
}

impl<'a> SpanGuard<'a> {
    /// Opens a span (see the [`span!`](crate::span) macro).
    pub fn enter(rec: &'a dyn Recorder, name: &str, value: Option<u64>) -> Self {
        let id = rec.span_enter(name, value);
        SpanGuard { rec, id }
    }

    /// The span's id (0 under the null recorder).
    pub fn id(&self) -> SpanId {
        self.id
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if self.id != 0 {
            self.rec.span_exit(self.id);
        }
    }
}

/// The zero-cost default: records nothing, reads no clocks.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn incr(&self, _name: &str, _delta: u64) {}
    fn observe(&self, _name: &str, _value: u64) {}
    fn gauge(&self, _name: &str, _value: i64) {}
    fn span_enter(&self, _name: &str, _value: Option<u64>) -> SpanId {
        0
    }
    fn span_exit(&self, _id: SpanId) {}
}

/// One recorded span. `end_us == None` while the span is still open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id (1-based, in open order).
    pub id: SpanId,
    /// Id of the span that was open when this one started.
    pub parent: Option<SpanId>,
    /// Span name, e.g. `"recursion.level"`.
    pub name: String,
    /// Optional numeric payload (e.g. the level's region size).
    pub value: Option<u64>,
    /// Start time, microseconds since the recorder was created.
    pub start_us: u64,
    /// End time, microseconds since the recorder was created.
    pub end_us: Option<u64>,
}

impl SpanRecord {
    /// The span's duration in microseconds (0 while still open).
    pub fn duration_us(&self) -> u64 {
        self.end_us.map_or(0, |e| e.saturating_sub(self.start_us))
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HdrHistogram>,
    gauges: BTreeMap<String, i64>,
    spans: Vec<SpanRecord>,
    open: Vec<SpanId>,
    finished: Vec<SpanId>,
    next_id: SpanId,
}

/// Accumulates all metrics and spans in memory.
pub struct InMemoryRecorder {
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl Default for InMemoryRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl InMemoryRecorder {
    /// Creates an empty recorder; span timestamps count from this moment.
    pub fn new() -> Self {
        InMemoryRecorder {
            epoch: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Creates a recorder already wrapped as a [`RecorderHandle`].
    pub fn handle() -> Arc<InMemoryRecorder> {
        Arc::new(Self::new())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        self.lock().gauges.get(name).copied()
    }

    /// Snapshot of a histogram (`None` if nothing was observed under the name).
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.lock().histograms.get(name).map(HdrHistogram::snapshot)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.lock()
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> Vec<(String, i64)> {
        self.lock()
            .gauges
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }

    /// All histogram snapshots, sorted by name.
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        self.lock()
            .histograms
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }

    /// Drains the recorder's state into the merged read-side view shared
    /// with [`ShardedRecorder`](crate::ShardedRecorder).
    pub fn snapshot(&self) -> ObsSnapshot {
        let inner = self.lock();
        let spans = inner
            .finished
            .iter()
            .filter_map(|&id| inner.spans.iter().find(|s| s.id == id).cloned())
            .collect();
        ObsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            spans,
        }
    }

    /// Closed spans, in the order they finished (the natural JSONL order:
    /// children precede their parents).
    pub fn finished_spans(&self) -> Vec<SpanRecord> {
        let inner = self.lock();
        inner
            .finished
            .iter()
            .filter_map(|&id| inner.spans.iter().find(|s| s.id == id).cloned())
            .collect()
    }

    /// The span event stream as JSONL: one JSON object per line, spans in
    /// finish order followed by one `counter` event per counter.
    pub fn trace_jsonl(&self) -> String {
        self.snapshot().trace_jsonl()
    }

    /// Writes [`InMemoryRecorder::trace_jsonl`] to a file, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_trace(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.trace_jsonl())
    }

    /// Wall-clock totals per span name, as an aligned text table sorted by
    /// total time (descending).
    pub fn phase_table(&self) -> String {
        self.snapshot().phase_table()
    }
}

impl Recorder for InMemoryRecorder {
    fn incr(&self, name: &str, delta: u64) {
        *self.lock().counters.entry(name.to_string()).or_insert(0) += delta;
    }

    fn observe(&self, name: &str, value: u64) {
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    fn gauge(&self, name: &str, value: i64) {
        self.lock().gauges.insert(name.to_string(), value);
    }

    fn span_enter(&self, name: &str, value: Option<u64>) -> SpanId {
        let start_us = self.now_us();
        let mut inner = self.lock();
        inner.next_id += 1;
        let id = inner.next_id;
        let parent = inner.open.last().copied();
        inner.spans.push(SpanRecord {
            id,
            parent,
            name: name.to_string(),
            value,
            start_us,
            end_us: None,
        });
        inner.open.push(id);
        id
    }

    fn span_exit(&self, id: SpanId) {
        let end_us = self.now_us();
        let mut inner = self.lock();
        // Guards drop LIFO, so the span is normally on top of the stack;
        // tolerate out-of-order exits by popping through abandoned children.
        if let Some(pos) = inner.open.iter().rposition(|&open| open == id) {
            inner.open.truncate(pos);
        }
        let newly_closed = match inner.spans.iter_mut().rev().find(|s| s.id == id) {
            Some(span) if span.end_us.is_none() => {
                span.end_us = Some(end_us);
                true
            }
            _ => false,
        };
        if newly_closed {
            inner.finished.push(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let rec = InMemoryRecorder::new();
        rec.incr("a", 2);
        rec.incr("a", 3);
        rec.incr("b", 1);
        assert_eq!(rec.counter("a"), 5);
        assert_eq!(rec.counter("b"), 1);
        assert_eq!(rec.counter("missing"), 0);
        assert_eq!(
            rec.counters(),
            vec![("a".to_string(), 5), ("b".to_string(), 1)]
        );
    }

    #[test]
    fn gauges_last_write_wins() {
        let rec = InMemoryRecorder::new();
        rec.gauge("temp", 45);
        rec.gauge("temp", -3);
        assert_eq!(rec.gauge_value("temp"), Some(-3));
        assert_eq!(rec.gauge_value("missing"), None);
    }

    #[test]
    fn histograms_record_exact_percentile_snapshots() {
        let rec = InMemoryRecorder::new();
        for v in [0, 1, 2, 3, 4, 1000] {
            rec.observe("h", v);
        }
        let h = rec.histogram("h").unwrap();
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1010);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        // Small values get exact unit buckets under the log-linear scheme.
        for v in [0usize, 1, 2, 3, 4] {
            assert_eq!(h.counts[v], 1, "value {v} lands in its own bucket");
        }
        assert_eq!(h.p50(), 2);
        assert_eq!(h.p(1.0), 1000);
    }

    #[test]
    fn null_recorder_is_disabled_and_inert() {
        let rec = NullRecorder;
        assert!(!rec.enabled());
        rec.incr("a", 1);
        rec.observe("h", 1);
        rec.gauge("g", 1);
        let id = rec.span_enter("s", None);
        assert_eq!(id, 0);
        rec.span_exit(id);
    }

    #[test]
    fn spans_nest_through_the_parent_stack() {
        let rec = InMemoryRecorder::new();
        {
            let _outer = crate::span!(rec, "outer");
            {
                let _mid = crate::span!(rec, "mid", 42);
                let _leaf = crate::span!(rec, "leaf");
            }
            let _sibling = crate::span!(rec, "sibling");
        }
        let spans = rec.finished_spans();
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap().clone();
        let outer = by_name("outer");
        let mid = by_name("mid");
        let leaf = by_name("leaf");
        let sibling = by_name("sibling");
        assert_eq!(outer.parent, None);
        assert_eq!(mid.parent, Some(outer.id));
        assert_eq!(mid.value, Some(42));
        assert_eq!(leaf.parent, Some(mid.id));
        assert_eq!(sibling.parent, Some(outer.id));
        // Finish order: children before parents.
        let order: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(order, vec!["leaf", "mid", "sibling", "outer"]);
        assert!(outer.duration_us() >= mid.duration_us());
    }

    #[test]
    fn trace_jsonl_is_one_object_per_line() {
        let rec = InMemoryRecorder::new();
        {
            let _s = crate::span!(rec, "run", 7);
        }
        rec.incr("ops", 3);
        let jsonl = rec.trace_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"type\":\"span\""));
        assert!(lines[0].contains("\"name\":\"run\""));
        assert!(lines[0].contains("\"value\":7"));
        assert!(lines[1].contains("\"type\":\"counter\""));
        // Every line parses as JSON.
        for line in lines {
            serde_json::parse_value(line).unwrap();
        }
    }

    #[test]
    fn phase_table_aggregates_by_name() {
        let rec = InMemoryRecorder::new();
        for _ in 0..3 {
            let _s = crate::span!(rec, "phase.a");
        }
        {
            let _s = crate::span!(rec, "phase.b");
        }
        let table = rec.phase_table();
        assert!(table.contains("phase.a"));
        assert!(table.contains("phase.b"));
        let a_row = table.lines().find(|l| l.contains("phase.a")).unwrap();
        assert!(a_row.contains('3'), "count column: {a_row}");
    }

    #[test]
    fn out_of_order_exit_is_tolerated() {
        let rec = InMemoryRecorder::new();
        let outer = rec.span_enter("outer", None);
        let _inner = rec.span_enter("inner", None);
        // Exiting the outer span abandons the still-open inner span.
        rec.span_exit(outer);
        let next = rec.span_enter("next", None);
        rec.span_exit(next);
        let spans = rec.finished_spans();
        let next = spans.iter().find(|s| s.name == "next").unwrap();
        assert_eq!(next.parent, None, "abandoned children are popped");
    }
}
