//! Span-tree profiling: turn a recorded `trace.jsonl` back into per-stage
//! self/total wall-clock and flamegraph-compatible folded stacks.
//!
//! A trace is the JSONL stream [`ObsSnapshot::trace_jsonl`] emits — `span`
//! events in finish order plus trailing `counter` events. The reader
//! salvages a torn tail the same way the fleet journal does: parsing stops
//! at the first malformed line (a crash mid-write leaves at most one), the
//! valid prefix is kept, and [`Trace::salvaged`] reports that it happened.
//!
//! Two views are derived:
//!
//! - [`Profile`] — per-stage aggregates where *total* is the span's full
//!   wall-clock and *self* excludes time attributed to child spans, so an
//!   expensive leaf shows up even under a long-running parent.
//! - [`folded_stacks`] — one `root;child;leaf <self_us>` line per distinct
//!   stack path, the input format of Brendan Gregg's `flamegraph.pl`.
//!
//! [`ObsSnapshot::trace_jsonl`]: crate::ObsSnapshot::trace_jsonl

use std::collections::BTreeMap;

use serde::Value;

/// One `span` event read back from a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// Span id (unique within the trace).
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Stage name, e.g. `"pipeline.discover"`.
    pub name: String,
    /// Optional numeric payload.
    pub value: Option<u64>,
    /// Start time, microseconds since the recorder epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// A parsed trace: spans, final counters, and whether the tail was torn.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Spans in file order (finish order: children before parents).
    pub spans: Vec<TraceSpan>,
    /// Final counter values.
    pub counters: BTreeMap<String, u64>,
    /// `true` when a malformed line cut the parse short (torn tail after a
    /// crash); everything before it was kept.
    pub salvaged: bool,
}

fn field<'v>(map: &'v [(String, Value)], name: &str) -> Option<&'v Value> {
    map.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn as_u64(v: &Value) -> Option<u64> {
    match *v {
        Value::U64(n) => Some(n),
        Value::I64(n) => u64::try_from(n).ok(),
        _ => None,
    }
}

fn as_str(v: &Value) -> Option<&str> {
    match v {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

/// Parses one trace line; `None` means the line is malformed.
fn parse_line(line: &str, trace: &mut Trace) -> Option<()> {
    let value = serde_json::parse_value(line).ok()?;
    let map = value.as_map()?;
    match as_str(field(map, "type")?)? {
        "span" => {
            trace.spans.push(TraceSpan {
                id: as_u64(field(map, "id")?)?,
                parent: match field(map, "parent")? {
                    Value::Null => None,
                    v => Some(as_u64(v)?),
                },
                name: as_str(field(map, "name")?)?.to_string(),
                value: match field(map, "value")? {
                    Value::Null => None,
                    v => Some(as_u64(v)?),
                },
                start_us: as_u64(field(map, "start_us")?)?,
                dur_us: as_u64(field(map, "dur_us")?)?,
            });
        }
        "counter" => {
            let name = as_str(field(map, "name")?)?.to_string();
            trace.counters.insert(name, as_u64(field(map, "value")?)?);
        }
        _ => return None,
    }
    Some(())
}

impl Trace {
    /// Parses trace JSONL, stopping at the first malformed line (see the
    /// module docs for the salvage semantics). Never errors: an entirely
    /// unreadable body yields an empty, `salvaged` trace.
    pub fn parse(text: &str) -> Trace {
        let mut trace = Trace::default();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            if parse_line(line, &mut trace).is_none() {
                trace.salvaged = true;
                break;
            }
        }
        trace
    }

    /// Reads and parses a trace file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; parse problems salvage instead (see
    /// [`Trace::parse`]).
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Trace> {
        Ok(Trace::parse(&std::fs::read_to_string(path)?))
    }

    /// Self time per span: duration minus the total duration of direct
    /// children, keyed by span id.
    fn self_times(&self) -> BTreeMap<u64, u64> {
        let mut child_time: BTreeMap<u64, u64> = BTreeMap::new();
        for s in &self.spans {
            if let Some(parent) = s.parent {
                *child_time.entry(parent).or_insert(0) += s.dur_us;
            }
        }
        self.spans
            .iter()
            .map(|s| {
                let children = child_time.get(&s.id).copied().unwrap_or(0);
                (s.id, s.dur_us.saturating_sub(children))
            })
            .collect()
    }

    /// The stack path of a span, root-first (`["pipeline.run", "pipeline.discover"]`).
    fn stack_of(&self, span: &TraceSpan, by_id: &BTreeMap<u64, &TraceSpan>) -> Vec<String> {
        let mut stack = vec![span.name.clone()];
        let mut cursor = span.parent;
        // Bounded walk: a cycle (corrupt trace) cannot loop forever.
        for _ in 0..self.spans.len() {
            let Some(id) = cursor else { break };
            let Some(parent) = by_id.get(&id) else { break };
            stack.push(parent.name.clone());
            cursor = parent.parent;
        }
        stack.reverse();
        stack
    }
}

/// Per-stage aggregate over every span sharing a name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStat {
    /// Stage (span) name.
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Summed wall-clock including children, microseconds.
    pub total_us: u64,
    /// Summed wall-clock excluding children, microseconds.
    pub self_us: u64,
}

/// The per-stage self/total profile of one trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Profile {
    /// Stages sorted by self time (descending), name as tiebreak.
    pub stages: Vec<StageStat>,
}

impl Profile {
    /// Aggregates a trace's spans by name.
    pub fn from_trace(trace: &Trace) -> Profile {
        let self_times = trace.self_times();
        let mut by_name: BTreeMap<&str, StageStat> = BTreeMap::new();
        for s in &trace.spans {
            let stat = by_name.entry(&s.name).or_insert_with(|| StageStat {
                name: s.name.clone(),
                count: 0,
                total_us: 0,
                self_us: 0,
            });
            stat.count += 1;
            stat.total_us += s.dur_us;
            stat.self_us += self_times.get(&s.id).copied().unwrap_or(0);
        }
        let mut stages: Vec<StageStat> = by_name.into_values().collect();
        stages.sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.name.cmp(&b.name)));
        Profile { stages }
    }

    /// Renders the profile as an aligned text table with self-time
    /// percentages of the trace's total self time.
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let grand_self: u64 = self.stages.iter().map(|s| s.self_us).sum();
        let name_width = self
            .stages
            .iter()
            .map(|s| s.name.len())
            .max()
            .unwrap_or(5)
            .max(5);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<name_width$}  {:>6}  {:>12}  {:>12}  {:>6}",
            "stage", "count", "total", "self", "self%"
        );
        for s in &self.stages {
            let pct = if grand_self == 0 {
                0.0
            } else {
                s.self_us as f64 * 100.0 / grand_self as f64
            };
            let _ = writeln!(
                out,
                "{:<name_width$}  {:>6}  {:>9}.{:03} ms  {:>9}.{:03} ms  {pct:>5.1}%",
                s.name,
                s.count,
                s.total_us / 1000,
                s.total_us % 1000,
                s.self_us / 1000,
                s.self_us % 1000,
            );
        }
        out
    }
}

/// Folds a trace into `flamegraph.pl` input: one
/// `root;child;leaf <self_us>` line per distinct stack path, sorted by
/// path. Self time is the sample weight, in microseconds.
pub fn folded_stacks(trace: &Trace) -> String {
    use std::fmt::Write as _;
    let by_id: BTreeMap<u64, &TraceSpan> = trace.spans.iter().map(|s| (s.id, s)).collect();
    let self_times = trace.self_times();
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for s in &trace.spans {
        let path = trace.stack_of(s, &by_id).join(";");
        *folded.entry(path).or_insert(0) += self_times.get(&s.id).copied().unwrap_or(0);
    }
    let mut out = String::new();
    for (path, weight) in folded {
        let _ = writeln!(out, "{path} {weight}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{InMemoryRecorder, Recorder};

    fn sample_trace() -> Trace {
        let rec = InMemoryRecorder::new();
        {
            let _run = crate::span!(rec, "run");
            {
                let _a = crate::span!(rec, "stage.a");
                let _leaf = crate::span!(rec, "stage.leaf");
            }
            let _b = crate::span!(rec, "stage.b", 7);
        }
        rec.incr("ops", 3);
        Trace::parse(&rec.trace_jsonl())
    }

    #[test]
    fn round_trips_spans_and_counters() {
        let trace = sample_trace();
        assert!(!trace.salvaged);
        assert_eq!(trace.spans.len(), 4);
        assert_eq!(trace.counters.get("ops"), Some(&3));
        let b = trace.spans.iter().find(|s| s.name == "stage.b").unwrap();
        assert_eq!(b.value, Some(7));
        let leaf = trace.spans.iter().find(|s| s.name == "stage.leaf").unwrap();
        let a = trace.spans.iter().find(|s| s.name == "stage.a").unwrap();
        assert_eq!(leaf.parent, Some(a.id));
    }

    #[test]
    fn torn_final_line_is_salvaged() {
        let rec = InMemoryRecorder::new();
        {
            let _s = crate::span!(rec, "kept");
        }
        let mut jsonl = rec.trace_jsonl();
        jsonl.push_str("{\"type\":\"span\",\"id\":9,\"par"); // torn mid-write
        let trace = Trace::parse(&jsonl);
        assert!(trace.salvaged);
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].name, "kept");
    }

    #[test]
    fn garbage_after_the_tear_is_ignored() {
        let text = "{\"type\":\"counter\",\"name\":\"n\",\"value\":1}\nnot json\n{\"type\":\"counter\",\"name\":\"m\",\"value\":2}\n";
        let trace = Trace::parse(text);
        assert!(trace.salvaged);
        assert_eq!(trace.counters.len(), 1, "parsing stops at the tear");
    }

    #[test]
    fn self_time_excludes_children() {
        let mut trace = Trace::default();
        for (id, parent, name, dur) in [
            (3u64, Some(2u64), "leaf", 40u64),
            (2, Some(1), "mid", 60),
            (1, None, "root", 100),
        ] {
            trace.spans.push(TraceSpan {
                id,
                parent,
                name: name.into(),
                value: None,
                start_us: 0,
                dur_us: dur,
            });
        }
        let profile = Profile::from_trace(&trace);
        let by_name = |n: &str| profile.stages.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("root").total_us, 100);
        assert_eq!(by_name("root").self_us, 40);
        assert_eq!(by_name("mid").self_us, 20);
        assert_eq!(by_name("leaf").self_us, 40);
        assert_eq!(profile.stages[0].name, "leaf", "sorted by self time");
        let table = profile.table();
        assert!(table.contains("stage"));
        assert!(table.contains("self%"));

        let folded = folded_stacks(&trace);
        assert!(folded.contains("root 40\n"));
        assert!(folded.contains("root;mid 20\n"));
        assert!(folded.contains("root;mid;leaf 40\n"));
    }

    #[test]
    fn folded_stacks_aggregate_repeated_paths() {
        let rec = InMemoryRecorder::new();
        for _ in 0..3 {
            let _outer = crate::span!(rec, "outer");
            let _inner = crate::span!(rec, "inner");
        }
        let trace = Trace::parse(&rec.trace_jsonl());
        let folded = folded_stacks(&trace);
        let paths: Vec<&str> = folded.lines().collect();
        assert_eq!(
            paths.len(),
            2,
            "three repetitions fold into two paths: {folded}"
        );
        assert!(paths.iter().any(|l| l.starts_with("outer;inner ")));
    }
}
