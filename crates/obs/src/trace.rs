//! Size-bounded trace files: rotation keeps `trace.jsonl` from filling the
//! disk on long fleet runs.
//!
//! The policy is the classic single-generation logrotate: when writing a new
//! trace would push the live file past the cap, the live file is renamed to
//! `<path>.1` (replacing any previous `.1`) and the new trace starts fresh.
//! Total disk use is therefore bounded by roughly `cap + one trace`.

use std::path::Path;

/// Default rotation cap for trace files (64 MiB).
pub const DEFAULT_TRACE_CAP_BYTES: u64 = 64 * 1024 * 1024;

/// The rotated sibling of a trace path: `trace.jsonl` → `trace.jsonl.1`.
pub fn rotated_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".1");
    std::path::PathBuf::from(name)
}

/// Rotates `path` to `<path>.1` if appending/replacing it with
/// `incoming_bytes` of content would exceed `cap_bytes`.
///
/// Returns `true` when a rotation happened. A missing or empty live file
/// never rotates; an `incoming_bytes` larger than the cap on its own still
/// rotates the old file away (the new trace is always written whole).
///
/// # Errors
///
/// Propagates I/O errors other than the live file not existing.
pub fn rotate_if_needed(path: &Path, incoming_bytes: u64, cap_bytes: u64) -> std::io::Result<bool> {
    let existing = match std::fs::metadata(path) {
        Ok(meta) => meta.len(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(e),
    };
    if existing == 0 || existing.saturating_add(incoming_bytes) <= cap_bytes {
        return Ok(false);
    }
    std::fs::rename(path, rotated_path(path))?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("parbor-obs-trace-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn under_cap_keeps_the_live_file() {
        let dir = temp_dir("undercap");
        let path = dir.join("trace.jsonl");
        std::fs::write(&path, "a\n").unwrap();
        assert!(!rotate_if_needed(&path, 10, 1000).unwrap());
        assert!(path.exists());
        assert!(!rotated_path(&path).exists());
    }

    #[test]
    fn over_cap_rotates_to_dot_one() {
        let dir = temp_dir("overcap");
        let path = dir.join("trace.jsonl");
        std::fs::write(&path, vec![b'x'; 100]).unwrap();
        assert!(rotate_if_needed(&path, 50, 120).unwrap());
        assert!(!path.exists());
        assert_eq!(std::fs::read(rotated_path(&path)).unwrap().len(), 100);

        // A second rotation replaces the previous `.1`.
        std::fs::write(&path, vec![b'y'; 100]).unwrap();
        assert!(rotate_if_needed(&path, 50, 120).unwrap());
        assert_eq!(std::fs::read(rotated_path(&path)).unwrap(), vec![b'y'; 100]);
    }

    #[test]
    fn missing_file_never_rotates() {
        let dir = temp_dir("missing");
        let path = dir.join("trace.jsonl");
        assert!(!rotate_if_needed(&path, u64::MAX, 0).unwrap());
    }
}
