//! Observability layer for the PARBOR reproduction: named counters, log2
//! histograms, gauges, and timed spans, recorded through a [`Recorder`]
//! trait object carried by the pipeline, device, and simulator runners.
//!
//! Two implementations ship with the crate:
//!
//! - [`NullRecorder`] — the default everywhere; every method is a no-op and
//!   [`Recorder::enabled`] returns `false` so instrumentation sites can skip
//!   work (formatting names, computing values) entirely.
//! - [`InMemoryRecorder`] — accumulates everything in memory; snapshot it as
//!   a [`RunSummary`], dump the span stream as JSONL with
//!   [`InMemoryRecorder::trace_jsonl`], or render a per-phase wall-clock
//!   table with [`InMemoryRecorder::phase_table`].
//!
//! Instrumented code takes no direct dependency on any implementation: it
//! holds an `Arc<dyn Recorder>` (see [`RecorderHandle`]) defaulting to the
//! null recorder, so uninstrumented call sites keep compiling — and keep
//! their exact behavior, because the null recorder never observes anything.
//!
//! Spans nest through a parent stack maintained by the recorder:
//!
//! ```
//! use parbor_obs::{span, InMemoryRecorder, Recorder};
//!
//! let rec = InMemoryRecorder::new();
//! {
//!     let _run = span!(rec, "pipeline.run");
//!     {
//!         let _level = span!(rec, "recursion.level", 4096);
//!         rec.incr("recursion.tests", 2);
//!     }
//! }
//! let spans = rec.finished_spans();
//! assert_eq!(spans.len(), 2);
//! assert_eq!(rec.counter("recursion.tests"), 2);
//! // The inner span closed first and points at its parent.
//! assert_eq!(spans[0].name, "recursion.level");
//! assert_eq!(spans[0].parent, Some(spans[1].id));
//! ```

pub mod metrics;
mod recorder;
mod summary;

pub use recorder::{
    null_recorder, AsRecorder, HistogramSnapshot, InMemoryRecorder, NullRecorder, Recorder,
    RecorderHandle, SpanGuard, SpanId, SpanRecord,
};
pub use summary::{PhaseTiming, RunSummary};

/// Opens a timed span on a recorder; the span closes when the returned
/// guard drops.
///
/// `span!(rec, "name")` opens a plain span; `span!(rec, "name", value)`
/// attaches a numeric payload (e.g. the region size of a recursion level).
/// `rec` may be a concrete recorder, a `&dyn Recorder`, or a
/// [`RecorderHandle`] (`Arc<dyn Recorder>`).
#[macro_export]
macro_rules! span {
    ($rec:expr, $name:expr) => {
        $crate::SpanGuard::enter($crate::AsRecorder::as_dyn(&$rec), $name, None)
    };
    ($rec:expr, $name:expr, $value:expr) => {
        $crate::SpanGuard::enter(
            $crate::AsRecorder::as_dyn(&$rec),
            $name,
            Some($value as u64),
        )
    };
}
