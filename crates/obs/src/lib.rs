//! Observability layer for the PARBOR reproduction: named counters,
//! exact-percentile histograms, gauges, and timed spans, recorded through a
//! [`Recorder`] trait object carried by the pipeline, device, and simulator
//! runners.
//!
//! Three implementations ship with the crate:
//!
//! - [`NullRecorder`] — the default everywhere; every method is a no-op and
//!   [`Recorder::enabled`] returns `false` so instrumentation sites can skip
//!   work (formatting names, computing values) entirely.
//! - [`InMemoryRecorder`] — accumulates everything behind one mutex; the
//!   simple choice for single-threaded runs and tests.
//! - [`ShardedRecorder`] — per-thread shards with no shared lock on the
//!   record path; the choice whenever scoped-thread parallelism records.
//!
//! Both recording implementations drain into the same [`ObsSnapshot`]:
//! digest it as a [`RunSummary`], dump the span stream as JSONL with
//! [`ObsSnapshot::trace_jsonl`] (size-bounded via
//! [`ObsSnapshot::write_trace_rotating`]), read a trace back with
//! [`Trace::load`] — torn tails are salvaged, not fatal — and turn it into
//! a per-stage self/total [`Profile`] or [`folded_stacks`] flamegraph
//! input. Long-running orchestrators publish progress through the
//! [`FleetStatus`] surface. Histograms are log-linear with a bounded
//! per-bucket relative error (see [`hist`]), so `p50`/`p99`/`p999` come out
//! of every snapshot. Metric names live in the [`metrics`] registry.
//!
//! Instrumented code takes no direct dependency on any implementation: it
//! holds an `Arc<dyn Recorder>` (see [`RecorderHandle`]) defaulting to the
//! null recorder, so uninstrumented call sites keep compiling — and keep
//! their exact behavior, because the null recorder never observes anything.
//!
//! Spans nest through a parent stack maintained by the recorder:
//!
//! ```
//! use parbor_obs::{span, InMemoryRecorder, Recorder};
//!
//! let rec = InMemoryRecorder::new();
//! {
//!     let _run = span!(rec, "pipeline.run");
//!     {
//!         let _level = span!(rec, "recursion.level", 4096);
//!         rec.incr("recursion.tests", 2);
//!     }
//! }
//! let spans = rec.finished_spans();
//! assert_eq!(spans.len(), 2);
//! assert_eq!(rec.counter("recursion.tests"), 2);
//! // The inner span closed first and points at its parent.
//! assert_eq!(spans[0].name, "recursion.level");
//! assert_eq!(spans[0].parent, Some(spans[1].id));
//! ```

pub mod hist;
pub mod metrics;
mod profile;
mod recorder;
mod shard;
mod status;
mod summary;
pub mod trace;

pub use hist::HistogramSnapshot;
pub use profile::{folded_stacks, Profile, StageStat, Trace, TraceSpan};
pub use recorder::{
    null_recorder, AsRecorder, InMemoryRecorder, NullRecorder, Recorder, RecorderHandle, SpanGuard,
    SpanId, SpanRecord,
};
pub use shard::{ObsSnapshot, ShardedRecorder};
pub use status::FleetStatus;
pub use summary::{HistogramStat, PhaseTiming, RunSummary};

/// Opens a timed span on a recorder; the span closes when the returned
/// guard drops.
///
/// `span!(rec, "name")` opens a plain span; `span!(rec, "name", value)`
/// attaches a numeric payload (e.g. the region size of a recursion level).
/// `rec` may be a concrete recorder, a `&dyn Recorder`, or a
/// [`RecorderHandle`] (`Arc<dyn Recorder>`).
#[macro_export]
macro_rules! span {
    ($rec:expr, $name:expr) => {
        $crate::SpanGuard::enter($crate::AsRecorder::as_dyn(&$rec), $name, None)
    };
    ($rec:expr, $name:expr, $value:expr) => {
        $crate::SpanGuard::enter(
            $crate::AsRecorder::as_dyn(&$rec),
            $name,
            Some($value as u64),
        )
    };
}
