//! [`RunSummary`]: a serializable digest of one recorded run — per-phase
//! wall-clock totals plus final counter/gauge/histogram values — printed by
//! the CLI binaries and written to `BENCH_pipeline.json` by `bench_report`.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::recorder::InMemoryRecorder;

/// Aggregated wall-clock time of one span name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTiming {
    /// Span name, e.g. `"pipeline.discover"`.
    pub name: String,
    /// Number of finished spans with this name.
    pub count: u64,
    /// Total wall-clock microseconds across those spans.
    pub total_us: u64,
}

/// Digest of one histogram, percentiles included (see [`crate::hist`] for
/// the one-bucket error bound on `p50`/`p99`/`p999`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramStat {
    /// Histogram name.
    pub name: String,
    /// Observation count.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value.
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// Mean observed value.
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

/// Serializable digest of everything an [`InMemoryRecorder`] captured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Per-phase wall-clock totals, longest first.
    pub phases: Vec<PhaseTiming>,
    /// Final counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Final gauge values, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram digests, sorted by name.
    pub histograms: Vec<HistogramStat>,
}

impl RunSummary {
    /// Digests a recorder's current state.
    pub fn from_recorder(rec: &InMemoryRecorder) -> Self {
        Self::from_snapshot(&rec.snapshot())
    }

    /// Digests a merged snapshot (any recorder drains into one).
    pub fn from_snapshot(snap: &crate::ObsSnapshot) -> Self {
        let mut totals: std::collections::BTreeMap<String, (u64, u64)> =
            std::collections::BTreeMap::new();
        for s in &snap.spans {
            let entry = totals.entry(s.name.clone()).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += s.duration_us();
        }
        let mut phases: Vec<PhaseTiming> = totals
            .into_iter()
            .map(|(name, (count, total_us))| PhaseTiming {
                name,
                count,
                total_us,
            })
            .collect();
        phases.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));
        let histograms = snap
            .histograms
            .iter()
            .map(|(name, h)| HistogramStat {
                name: name.clone(),
                count: h.count,
                sum: h.sum,
                min: h.min,
                max: h.max,
                mean: h.mean(),
                p50: h.p50(),
                p99: h.p99(),
                p999: h.p999(),
            })
            .collect();
        RunSummary {
            phases,
            counters: snap.counters.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            gauges: snap.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            histograms,
        }
    }

    /// The summary as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }

    /// The summary as a human-readable block for CLI output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "-- run summary --");
        if !self.phases.is_empty() {
            let width = self
                .phases
                .iter()
                .map(|p| p.name.len())
                .max()
                .unwrap_or(5)
                .max(5);
            let _ = writeln!(out, "{:<width$}  {:>6}  {:>12}", "phase", "count", "total");
            for p in &self.phases {
                let _ = writeln!(
                    out,
                    "{:<width$}  {:>6}  {:>9}.{:03} ms",
                    p.name,
                    p.count,
                    p.total_us / 1000,
                    p.total_us % 1000,
                );
            }
        }
        if !self.counters.is_empty() {
            let width = self
                .counters
                .iter()
                .map(|(n, _)| n.len())
                .max()
                .unwrap_or(7)
                .max(7);
            let _ = writeln!(out, "{:<width$}  {:>12}", "counter", "value");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "{name:<width$}  {value:>12}");
            }
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "gauge {name} = {value}");
        }
        for h in &self.histograms {
            let _ = writeln!(
                out,
                "hist  {} : n={} mean={:.1} p50={} p99={} p999={} max={}",
                h.name, h.count, h.mean, h.p50, h.p99, h.p999, h.max
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn recorded() -> InMemoryRecorder {
        let rec = InMemoryRecorder::new();
        {
            let _run = crate::span!(rec, "run");
            let _inner = crate::span!(rec, "run.step", 8);
        }
        rec.incr("ops", 12);
        rec.gauge("level", 3);
        rec.observe("lat", 100);
        rec.observe("lat", 300);
        rec
    }

    #[test]
    fn summary_digests_recorder_state() {
        let s = RunSummary::from_recorder(&recorded());
        assert_eq!(s.phases.len(), 2);
        assert_eq!(s.counters, vec![("ops".to_string(), 12)]);
        assert_eq!(s.gauges, vec![("level".to_string(), 3)]);
        assert_eq!(s.histograms.len(), 1);
        assert_eq!(s.histograms[0].count, 2);
        assert_eq!(s.histograms[0].sum, 400);
        assert_eq!(s.histograms[0].max, 300);
        // The outer span encloses the inner one.
        let run = s.phases.iter().find(|p| p.name == "run").unwrap();
        let step = s.phases.iter().find(|p| p.name == "run.step").unwrap();
        assert!(run.total_us >= step.total_us);
    }

    #[test]
    fn summary_round_trips_through_json() {
        let s = RunSummary::from_recorder(&recorded());
        let json = s.to_json();
        let back: RunSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn render_mentions_every_metric() {
        let text = RunSummary::from_recorder(&recorded()).render();
        assert!(text.contains("run summary"));
        assert!(text.contains("run.step"));
        assert!(text.contains("ops"));
        assert!(text.contains("gauge level = 3"));
        assert!(text.contains("hist  lat"));
    }
}
