//! Property tests for the columnar segment codec and the legacy-JSONL
//! migration path: any profile the scanner can produce must survive an
//! encode/decode roundtrip bit for bit, and a store written in the v1
//! JSONL layout must read and compact to exactly the same profiles.

use proptest::prelude::*;

use parbor_core::{FailingCell, FailureProfile};
use parbor_store::segment::{decode_payload, encode_payload};
use parbor_store::{legacy, ProfileStore};

/// A seed-derived profile with the full range of shapes the codec must
/// carry: empty columns, negative and wide distances, dense and sparse
/// sorted cell lists, and large scalar counters.
fn synth_profile(seed: u64, n_cells: usize, n_dist: usize, n_levels: usize) -> FailureProfile {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let mut failures: Vec<FailingCell> = (0..n_cells)
        .map(|_| FailingCell {
            unit: (next() % 8) as u32,
            bank: (next() % 16) as u32,
            row: next() as u32,
            col: (next() % 65536) as u32,
            value: next() % 2 == 0,
        })
        .collect();
    // The scanner emits a sorted, deduplicated cell list; the codec's
    // row-delta column relies on that order.
    failures.sort();
    failures.dedup();
    let tests_per_level: Vec<usize> = (0..n_levels).map(|_| (next() % 1000) as usize).collect();
    FailureProfile {
        victim_count: (next() % 10_000) as usize,
        discovery_rounds: (next() % 64) as usize,
        recursion_tests: tests_per_level.iter().sum(),
        tests_per_level,
        distances: (0..n_dist)
            .map(|_| (next() % 140_000) as i64 - 70_000)
            .collect(),
        chipwide_rounds: (next() % 64) as usize,
        failures,
    }
}

proptest! {
    /// Columnar encode → decode is the identity for any profile shape.
    #[test]
    fn columnar_roundtrip_is_identity(
        seed in any::<u64>(),
        n_cells in 0usize..40,
        n_dist in 0usize..8,
        n_levels in 0usize..6,
    ) {
        let profile = synth_profile(seed, n_cells, n_dist, n_levels);
        let name = format!("mod-{}", seed % 10_000);
        let payload = encode_payload(&name, &profile);
        let decoded = decode_payload(&payload, true).expect("strict decode");
        prop_assert_eq!(decoded.name, name);
        prop_assert!(decoded.complete);
        prop_assert_eq!(decoded.profile, profile);
    }

    /// A legacy v1 store (single `index.json`, JSONL segments) must serve
    /// the same profiles through the v2 engine, before and after the
    /// compaction that migrates it to the columnar layout.
    #[test]
    fn legacy_migration_preserves_profiles(
        seed in any::<u64>(),
        n_profiles in 1usize..6,
        n_cells in 0usize..24,
    ) {
        let root = std::env::temp_dir().join(format!(
            "parbor-store-prop-{}-{}",
            std::process::id(),
            seed % 1_000_000,
        ));
        std::fs::remove_dir_all(&root).ok();
        let mut expected: Vec<(String, FailureProfile)> = (0..n_profiles)
            .map(|i| {
                (
                    format!("legacy-{i}"),
                    synth_profile(seed.wrapping_add(i as u64), n_cells, 4, 3),
                )
            })
            .collect();
        legacy::write_legacy_store(&root, &expected).expect("write fixture");
        expected.sort_by(|a, b| a.0.cmp(&b.0));

        let as_profiles = |store: &ProfileStore| -> Vec<(String, FailureProfile)> {
            store
                .load_all()
                .expect("load_all")
                .into_iter()
                .map(|(name, stored)| {
                    assert!(stored.complete && !stored.recovered, "degraded {name}");
                    (name, stored.profile)
                })
                .collect()
        };
        let mut store = ProfileStore::open(&root).expect("open legacy");
        prop_assert_eq!(as_profiles(&store), expected.clone());
        store.compact().expect("migrating compaction");
        prop_assert_eq!(as_profiles(&store), expected);
        std::fs::remove_dir_all(&root).ok();
    }
}
