//! Fault-injection tests: every way a segment, index, or manifest can be
//! damaged on disk must be detected (never served silently), salvaged
//! where the bytes allow it, surfaced through `store.recovery`, and must
//! never panic or abort the process.

use std::path::PathBuf;

use parbor_core::{FailingCell, FailureProfile};
use parbor_obs::{metrics, InMemoryRecorder, RecorderHandle};
use parbor_store::{ProfileStore, StoreError};

fn temp_store(tag: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("parbor-store-corrupt-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    root
}

fn profile(seed: u32, cells: usize) -> FailureProfile {
    FailureProfile {
        victim_count: cells,
        discovery_rounds: 10,
        tests_per_level: vec![2, 4, 6],
        recursion_tests: 12,
        distances: vec![-8, -1, 1, 8],
        chipwide_rounds: 3,
        failures: (0..cells as u32)
            .map(|i| FailingCell {
                unit: 0,
                bank: seed % 4,
                row: seed + i,
                col: 7 * i,
                value: i % 2 == 0,
            })
            .collect(),
    }
}

#[test]
fn put_get_survives_reopen() {
    let root = temp_store("reopen");
    let mut store = ProfileStore::open(&root).unwrap();
    for i in 0..20u32 {
        store.put(&format!("M{i:02}"), &profile(i, 4)).unwrap();
    }
    // Latest write wins.
    store.put("M03", &profile(99, 7)).unwrap();
    drop(store);

    let store = ProfileStore::open(&root).unwrap();
    assert_eq!(store.modules().unwrap().len(), 20);
    let got = store.get("M03").unwrap();
    assert_eq!(got.profile, profile(99, 7));
    assert!(got.complete && !got.recovered);
    assert!(store.verify().unwrap().iter().all(|(_, intact)| *intact));
    let stats = store.stats().unwrap();
    assert!(stats.ledger_balanced);
    assert_eq!(stats.modules, 20);
    // An L0 overwrite replaces the module's own file, so no dead record
    // yet; superseding a *compacted* record leaves one behind.
    assert_eq!(stats.dead_records, 0);
    let mut store = ProfileStore::open(&root).unwrap();
    store.compact().unwrap();
    store.put("M05", &profile(55, 2)).unwrap();
    let stats = store.stats().unwrap();
    assert_eq!(stats.dead_records, 1, "the compacted M05 record");
    assert!(stats.ledger_balanced);
    assert_eq!(store.get("M05").unwrap().profile, profile(55, 2));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn invalid_names_are_rejected() {
    let root = temp_store("names");
    let mut store = ProfileStore::open(&root).unwrap();
    for bad in ["", "..", ".hidden", "a/b", "x y", "nul\0"] {
        assert!(
            matches!(
                store.put(bad, &profile(1, 1)),
                Err(StoreError::InvalidConfig(_))
            ),
            "name {bad:?} must be rejected"
        );
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn identical_writes_are_byte_identical() {
    let snapshot = |root: &PathBuf| -> Vec<(String, Vec<u8>)> {
        let mut out = Vec::new();
        let mut dirs = vec![root.clone()];
        while let Some(dir) = dirs.pop() {
            for entry in std::fs::read_dir(&dir).unwrap() {
                let path = entry.unwrap().path();
                if path.is_dir() {
                    dirs.push(path);
                } else {
                    let rel = path
                        .strip_prefix(root)
                        .unwrap()
                        .to_string_lossy()
                        .into_owned();
                    out.push((rel, std::fs::read(&path).unwrap()));
                }
            }
        }
        out.sort();
        out
    };
    let (a, b) = (temp_store("det-a"), temp_store("det-b"));
    // Same records, staged in opposite orders, flushed differently.
    let mut sa = ProfileStore::open(&a).unwrap();
    for i in 0..10u32 {
        sa.put(&format!("M{i}"), &profile(i, 3)).unwrap();
    }
    let mut sb = ProfileStore::open(&b).unwrap();
    for i in (0..10u32).rev() {
        sb.stage(&format!("M{i}"), &profile(i, 3)).unwrap();
    }
    sb.flush().unwrap();
    assert_eq!(
        snapshot(&a),
        snapshot(&b),
        "stores diverge before compaction"
    );
    sa.compact().unwrap();
    sb.compact().unwrap();
    assert_eq!(
        snapshot(&a),
        snapshot(&b),
        "stores diverge after compaction"
    );
    std::fs::remove_dir_all(&a).ok();
    std::fs::remove_dir_all(&b).ok();
}

#[test]
fn truncated_segment_tail_salvages_prefix() {
    let root = temp_store("truncate");
    let mut store = ProfileStore::open(&root).unwrap();
    store.put("victim", &profile(5, 8)).unwrap();
    drop(store);

    // Tear the tail off the L0 segment, as a crash mid-write would.
    let seg = root.join("segments").join("L0-victim.pbs");
    let bytes = std::fs::read(&seg).unwrap();
    std::fs::write(&seg, &bytes[..bytes.len() - 9]).unwrap();

    let recorder = InMemoryRecorder::handle();
    let store =
        ProfileStore::open_with_recorder(&root, RecorderHandle::from(recorder.clone())).unwrap();
    let got = store.get("victim").unwrap();
    assert!(got.recovered, "torn frame must be flagged");
    assert!(!got.complete, "a cut-off cell column cannot be complete");
    assert!(
        got.profile.failures.len() < 8,
        "salvage keeps a strict prefix of the cells"
    );
    assert_eq!(got.profile.distances, vec![-8, -1, 1, 8]);
    assert!(recorder.counter(metrics::store::RECOVERY) > 0);
    assert_eq!(store.verify().unwrap(), vec![("victim".to_string(), false)]);
    let stats = store.stats().unwrap();
    assert_eq!(stats.corrupt_records, 1);
    assert!(!stats.ledger_balanced);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn bit_flipped_checksum_detected_and_compacted_out() {
    let root = temp_store("bitflip");
    let mut store = ProfileStore::open(&root).unwrap();
    store.put("good", &profile(1, 3)).unwrap();
    store.put("flip", &profile(2, 6)).unwrap();
    drop(store);

    // Flip one bit near the end of the payload: the checksum no longer
    // holds, but the name and the leading columns still decode.
    let seg = root.join("segments").join("L0-flip.pbs");
    let mut bytes = std::fs::read(&seg).unwrap();
    let last = bytes.len() - 2;
    bytes[last] ^= 0x10;
    std::fs::write(&seg, &bytes).unwrap();

    let recorder = InMemoryRecorder::handle();
    let mut store =
        ProfileStore::open_with_recorder(&root, RecorderHandle::from(recorder.clone())).unwrap();
    let got = store.get("flip").unwrap();
    assert!(got.recovered);
    assert!(recorder.counter(metrics::store::RECOVERY) > 0);
    // The untouched neighbor is served clean.
    let good = store.get("good").unwrap();
    assert!(!good.recovered && good.complete);

    // Compaction re-encodes the salvageable part and repairs the ledger.
    let report = store.compact().unwrap();
    assert_eq!(report.salvaged, 1);
    assert_eq!(report.dropped, 0);
    assert_eq!(report.output_records, 2);
    let stats = store.stats().unwrap();
    assert!(stats.ledger_balanced, "compaction rewrites a clean store");
    assert!(store.verify().unwrap().iter().all(|(_, intact)| *intact));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn torn_manifest_rebuilds_from_segments() {
    let root = temp_store("manifest");
    let mut store = ProfileStore::open(&root).unwrap();
    for i in 0..12u32 {
        store.put(&format!("M{i:02}"), &profile(i, 2)).unwrap();
    }
    store.compact().unwrap();
    store.put("M99", &profile(99, 2)).unwrap();
    let expected = store.load_all().unwrap();
    drop(store);

    // Tear the manifest mid-write (torn rename target / partial JSON).
    let manifest = root.join("manifest.json");
    let text = std::fs::read(&manifest).unwrap();
    std::fs::write(&manifest, &text[..text.len() / 2]).unwrap();

    let recorder = InMemoryRecorder::handle();
    let store =
        ProfileStore::open_with_recorder(&root, RecorderHandle::from(recorder.clone())).unwrap();
    assert!(recorder.counter(metrics::store::RECOVERY) > 0);
    assert_eq!(store.load_all().unwrap(), expected);
    let stats = store.stats().unwrap();
    assert!(stats.ledger_balanced);
    assert_eq!(stats.modules, 13);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn missing_manifest_rebuilds_from_segments() {
    let root = temp_store("no-manifest");
    let mut store = ProfileStore::open(&root).unwrap();
    for i in 0..6u32 {
        store.put(&format!("M{i}"), &profile(i, 2)).unwrap();
    }
    let expected = store.load_all().unwrap();
    drop(store);
    std::fs::remove_file(root.join("manifest.json")).unwrap();

    let store = ProfileStore::open(&root).unwrap();
    assert_eq!(store.load_all().unwrap(), expected);
    std::fs::remove_dir_all(&root).ok();
}
