//! Streaming cross-module aggregation.
//!
//! [`ProfileStore::aggregate`](crate::ProfileStore::aggregate) folds every
//! live record through an [`AggregateBuilder`] one at a time — the store
//! streams segment files individually, so fleet-wide rollups over hundreds
//! of thousands of modules never hold more than one segment in memory.
//! The rollups mirror what the PARBOR paper reports across DIMMs:
//! how often each coupling distance appears fleet-wide (the paper's
//! neighborhood-size evidence), failure-count spread per module, and
//! per-vendor failure rates (the paper's Table 1 split by vendor A/B/C).

use std::collections::BTreeMap;

use serde::Serialize;

use parbor_core::FailureProfile;
use parbor_obs::hist::HdrHistogram;

/// Percentile summary of a streamed histogram.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HistSummary {
    /// Observations folded in.
    pub count: u64,
    /// Mean value.
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

/// Per-vendor rollup (vendors are the leading alphabetic prefix of the
/// module name — `A7` and `Avendor3` both land under `A`, matching the
/// paper's anonymised vendor labels).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct VendorRollup {
    /// Modules attributed to the vendor.
    pub modules: usize,
    /// Failing cells across those modules.
    pub failures: u64,
    /// Mean failing cells per module.
    pub mean_failures: f64,
}

/// Fleet-wide rollups streamed out of the store.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetAggregate {
    /// Modules aggregated.
    pub modules: usize,
    /// Failing cells fleet-wide.
    pub total_failures: u64,
    /// How many modules exhibit each coupling distance.
    pub distance_counts: BTreeMap<i64, u64>,
    /// Distinct coupling distances seen fleet-wide.
    pub distinct_distances: usize,
    /// Failing-cell count distribution across modules.
    pub failures_per_module: HistSummary,
    /// Per-vendor failure-rate rollups, keyed by vendor prefix.
    pub vendors: BTreeMap<String, VendorRollup>,
}

/// Accumulates profiles one at a time into a [`FleetAggregate`].
#[derive(Debug)]
pub struct AggregateBuilder {
    modules: usize,
    total_failures: u64,
    distance_counts: BTreeMap<i64, u64>,
    failures_hist: HdrHistogram,
    vendors: BTreeMap<String, (usize, u64)>,
}

impl AggregateBuilder {
    /// An empty accumulator.
    pub fn new() -> Self {
        AggregateBuilder {
            modules: 0,
            total_failures: 0,
            distance_counts: BTreeMap::new(),
            failures_hist: HdrHistogram::new(),
            vendors: BTreeMap::new(),
        }
    }

    /// Folds one module's profile in.
    pub fn add(&mut self, name: &str, profile: &FailureProfile) {
        self.modules += 1;
        let failures = profile.failures.len() as u64;
        self.total_failures += failures;
        self.failures_hist.record(failures);
        for &d in &profile.distances {
            *self.distance_counts.entry(d).or_insert(0) += 1;
        }
        let vendor: String = name.chars().take_while(char::is_ascii_alphabetic).collect();
        let vendor = if vendor.is_empty() {
            "?".to_string()
        } else {
            vendor
        };
        let slot = self.vendors.entry(vendor).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += failures;
    }

    /// Finishes the rollup.
    pub fn finish(self) -> FleetAggregate {
        let snap = self.failures_hist.snapshot();
        FleetAggregate {
            modules: self.modules,
            total_failures: self.total_failures,
            distinct_distances: self.distance_counts.len(),
            distance_counts: self.distance_counts,
            failures_per_module: HistSummary {
                count: snap.count,
                mean: snap.mean(),
                p50: snap.p50(),
                p99: snap.p99(),
                p999: snap.p999(),
            },
            vendors: self
                .vendors
                .into_iter()
                .map(|(vendor, (modules, failures))| {
                    (
                        vendor,
                        VendorRollup {
                            modules,
                            failures,
                            mean_failures: if modules == 0 {
                                0.0
                            } else {
                                failures as f64 / modules as f64
                            },
                        },
                    )
                })
                .collect(),
        }
    }
}

impl Default for AggregateBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbor_core::FailingCell;

    fn profile(distances: Vec<i64>, cells: usize) -> FailureProfile {
        FailureProfile {
            victim_count: cells,
            discovery_rounds: 1,
            tests_per_level: vec![1],
            recursion_tests: 1,
            distances,
            chipwide_rounds: 1,
            failures: (0..cells)
                .map(|i| FailingCell {
                    unit: 0,
                    bank: 0,
                    row: i as u32,
                    col: 0,
                    value: i % 2 == 0,
                })
                .collect(),
        }
    }

    #[test]
    fn rollups_accumulate() {
        let mut b = AggregateBuilder::new();
        b.add("A1", &profile(vec![-8, 1], 3));
        b.add("A2", &profile(vec![1, 8], 5));
        b.add("B1", &profile(vec![1], 0));
        let agg = b.finish();
        assert_eq!(agg.modules, 3);
        assert_eq!(agg.total_failures, 8);
        assert_eq!(agg.distance_counts[&1], 3);
        assert_eq!(agg.distance_counts[&-8], 1);
        assert_eq!(agg.distinct_distances, 3);
        assert_eq!(agg.vendors["A"].modules, 2);
        assert_eq!(agg.vendors["A"].failures, 8);
        assert_eq!(agg.vendors["B"].modules, 1);
        assert!((agg.vendors["A"].mean_failures - 4.0).abs() < 1e-9);
        assert_eq!(agg.failures_per_module.count, 3);
    }

    #[test]
    fn vendor_prefix_is_the_alphabetic_run() {
        let mut b = AggregateBuilder::new();
        b.add("Avendor3", &profile(vec![], 1));
        b.add("7odd", &profile(vec![], 1));
        let agg = b.finish();
        assert_eq!(agg.vendors["Avendor"].modules, 1);
        assert_eq!(agg.vendors["?"].modules, 1);
    }
}
