//! The `PBSTSEG1` binary columnar segment format.
//!
//! A segment file is the 8-byte magic followed by back-to-back framed
//! records, one record per module profile:
//!
//! ```text
//! "PBSTSEG1"
//! [u32 LE payload len][u64 LE fnv1a64(payload)][payload]
//! [u32 LE payload len][u64 LE fnv1a64(payload)][payload]
//! …
//! ```
//!
//! The payload is the module name followed by the profile *body*, and the
//! body is columnar: every scalar first, then each failing-cell column in
//! full (units, banks, rows, cols, values) rather than cell-by-cell
//! structs. Everything is LEB128 varint packed; coupling distances and row
//! deltas are zigzag coded; cell polarities are bit-packed. The body bytes
//! are also the canonical form the content hash covers, so a profile's
//! identity is independent of which segment (or generation) holds it.
//!
//! Decoding is strict when the frame checksum verifies and *tolerant*
//! otherwise: columns are decoded front to back and a torn tail costs only
//! the cells whose columns it destroyed, mirroring the fleet journal's
//! valid-prefix salvage.

use parbor_core::{FailingCell, FailureProfile};

use crate::hash::fnv1a64;
use crate::varint::{get_varint, put_varint, unzigzag, zigzag};

/// Magic bytes opening every columnar segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"PBSTSEG1";

/// Upper bound on a single record payload, guarding length fields read
/// from corrupt frames against giant allocations.
pub const MAX_RECORD_BYTES: u64 = 1 << 30;

/// Bytes of framing around every payload (`u32` length + `u64` checksum).
pub const FRAME_HEADER_BYTES: u64 = 12;

/// Encodes the profile *body* (everything except the module name): the
/// canonical byte form the content hash covers.
pub fn encode_body(profile: &FailureProfile) -> Vec<u8> {
    let n = profile.failures.len();
    let mut body = Vec::with_capacity(32 + n * 6);
    put_varint(&mut body, profile.victim_count as u64);
    put_varint(&mut body, profile.discovery_rounds as u64);
    put_varint(&mut body, profile.recursion_tests as u64);
    put_varint(&mut body, profile.chipwide_rounds as u64);
    put_varint(&mut body, profile.tests_per_level.len() as u64);
    for &t in &profile.tests_per_level {
        put_varint(&mut body, t as u64);
    }
    put_varint(&mut body, profile.distances.len() as u64);
    for &d in &profile.distances {
        put_varint(&mut body, zigzag(d));
    }
    put_varint(&mut body, n as u64);
    for cell in &profile.failures {
        put_varint(&mut body, u64::from(cell.unit));
    }
    for cell in &profile.failures {
        put_varint(&mut body, u64::from(cell.bank));
    }
    // Rows are sorted within (unit, bank) runs, so deltas are mostly tiny.
    let mut prev = 0i64;
    for cell in &profile.failures {
        let row = i64::from(cell.row);
        put_varint(&mut body, zigzag(row - prev));
        prev = row;
    }
    for cell in &profile.failures {
        put_varint(&mut body, u64::from(cell.col));
    }
    let mut bits = vec![0u8; n.div_ceil(8)];
    for (i, cell) in profile.failures.iter().enumerate() {
        if cell.value {
            bits[i / 8] |= 1 << (i % 8);
        }
    }
    body.extend_from_slice(&bits);
    body
}

/// The content hash of a profile: FNV-1a over its canonical body bytes.
pub fn content_hash(profile: &FailureProfile) -> u64 {
    fnv1a64(&encode_body(profile))
}

/// Encodes a full record payload: varint name length, name bytes, body.
pub fn encode_payload(name: &str, profile: &FailureProfile) -> Vec<u8> {
    let body = encode_body(profile);
    let mut payload = Vec::with_capacity(name.len() + body.len() + 2);
    put_varint(&mut payload, name.len() as u64);
    payload.extend_from_slice(name.as_bytes());
    payload.extend_from_slice(&body);
    payload
}

/// Wraps a payload in the `[u32 len][u64 checksum]` frame.
pub fn frame_payload(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FRAME_HEADER_BYTES as usize);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// A record decoded from a segment frame.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedRecord {
    /// The module name the record stores.
    pub name: String,
    /// The decoded profile (possibly a salvaged prefix).
    pub profile: FailureProfile,
    /// Whether every promised field and cell was readable.
    pub complete: bool,
}

/// Decodes a record payload.
///
/// With `strict` (frame checksum verified) any truncation or trailing
/// garbage is an error. Without it, the decoder keeps whatever columns
/// survive: scalars default to zero past the tear, and the failing-cell
/// list is cut to the cells whose every column (including the polarity
/// bits) was readable.
///
/// # Errors
///
/// `Err(detail)` when the name field itself is unreadable (nothing to
/// salvage), or on any defect in strict mode.
pub fn decode_payload(payload: &[u8], strict: bool) -> Result<DecodedRecord, String> {
    let mut pos = 0;
    let name_len = get_varint(payload, &mut pos).ok_or("record name length unreadable")?;
    if name_len > MAX_RECORD_BYTES || pos as u64 + name_len > payload.len() as u64 {
        return Err(format!("record name length {name_len} exceeds payload"));
    }
    let name = std::str::from_utf8(&payload[pos..pos + name_len as usize])
        .map_err(|_| "record name is not utf-8".to_string())?
        .to_string();
    pos += name_len as usize;

    let mut complete = true;
    let scalar = |pos: &mut usize, complete: &mut bool| -> Result<u64, String> {
        match get_varint(payload, pos) {
            Some(v) => Ok(v),
            None if strict => Err("record body truncated".into()),
            None => {
                *complete = false;
                Ok(0)
            }
        }
    };

    let mut profile = FailureProfile {
        victim_count: 0,
        discovery_rounds: 0,
        tests_per_level: Vec::new(),
        recursion_tests: 0,
        distances: Vec::new(),
        chipwide_rounds: 0,
        failures: Vec::new(),
    };
    profile.victim_count = scalar(&mut pos, &mut complete)? as usize;
    profile.discovery_rounds = scalar(&mut pos, &mut complete)? as usize;
    profile.recursion_tests = scalar(&mut pos, &mut complete)? as usize;
    profile.chipwide_rounds = scalar(&mut pos, &mut complete)? as usize;

    let levels = scalar(&mut pos, &mut complete)?;
    for _ in 0..levels.min(MAX_RECORD_BYTES) {
        match get_varint(payload, &mut pos) {
            Some(v) => profile.tests_per_level.push(v as usize),
            None if strict => return Err("tests_per_level truncated".into()),
            None => {
                complete = false;
                break;
            }
        }
    }
    let dists = scalar(&mut pos, &mut complete)?;
    for _ in 0..dists.min(MAX_RECORD_BYTES) {
        match get_varint(payload, &mut pos) {
            Some(v) => profile.distances.push(unzigzag(v)),
            None if strict => return Err("distances truncated".into()),
            None => {
                complete = false;
                break;
            }
        }
    }

    let promised = scalar(&mut pos, &mut complete)? as usize;
    if promised as u64 > MAX_RECORD_BYTES {
        return Err(format!("record promises {promised} cells"));
    }
    let column = |pos: &mut usize, complete: &mut bool| -> Result<Vec<u64>, String> {
        let mut col = Vec::with_capacity(promised);
        for _ in 0..promised {
            match get_varint(payload, pos) {
                Some(v) => col.push(v),
                None if strict => return Err("cell column truncated".into()),
                None => {
                    *complete = false;
                    break;
                }
            }
        }
        Ok(col)
    };
    let units = column(&mut pos, &mut complete)?;
    let banks = column(&mut pos, &mut complete)?;
    let row_deltas = column(&mut pos, &mut complete)?;
    let cols = column(&mut pos, &mut complete)?;
    let bit_bytes = promised.div_ceil(8);
    let bits = &payload[pos.min(payload.len())..(pos + bit_bytes).min(payload.len())];
    if strict && bits.len() != bit_bytes {
        return Err("polarity bits truncated".into());
    }
    pos += bit_bytes;
    if strict && pos != payload.len() {
        return Err(format!(
            "{} trailing bytes after record body",
            payload.len() - pos
        ));
    }

    // A cell survives only if every one of its five columns survived.
    let cells = [
        units.len(),
        banks.len(),
        row_deltas.len(),
        cols.len(),
        bits.len() * 8,
    ]
    .into_iter()
    .min()
    .unwrap_or(0)
    .min(promised);
    if cells < promised {
        complete = false;
    }
    let mut prev = 0i64;
    for i in 0..cells {
        let row = prev + unzigzag(row_deltas[i]);
        prev = row;
        profile.failures.push(FailingCell {
            unit: units[i] as u32,
            bank: banks[i] as u32,
            row: row as u32,
            col: cols[i] as u32,
            value: bits[i / 8] & (1 << (i % 8)) != 0,
        });
    }
    Ok(DecodedRecord {
        name,
        profile,
        complete,
    })
}

/// One frame read out of a segment byte stream.
#[derive(Debug, Clone)]
pub struct Frame<'a> {
    /// Byte offset of the frame header within the file.
    pub offset: u64,
    /// The payload slice.
    pub payload: &'a [u8],
    /// Whether the payload matched its frame checksum (a failed checksum
    /// with a full-length payload is a bit flip; a short payload is a torn
    /// tail).
    pub intact: bool,
    /// Whether the payload was cut short by the end of the file.
    pub truncated: bool,
}

/// Walks every frame in a segment byte buffer (after the magic), stopping
/// at the end or at the first frame whose header itself is unreadable.
/// The final element may be a torn frame (`intact: false`).
///
/// # Errors
///
/// `Err(detail)` when the file is shorter than the magic or opens with the
/// wrong magic.
pub fn walk_frames(bytes: &[u8]) -> Result<Vec<Frame<'_>>, String> {
    if bytes.len() < SEGMENT_MAGIC.len() || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return Err("bad segment magic".into());
    }
    let mut frames = Vec::new();
    let mut pos = SEGMENT_MAGIC.len();
    while pos < bytes.len() {
        if bytes.len() - pos < FRAME_HEADER_BYTES as usize {
            // A torn frame header: nothing recoverable past this point.
            frames.push(Frame {
                offset: pos as u64,
                payload: &[],
                intact: false,
                truncated: true,
            });
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as u64;
        let sum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
        if len > MAX_RECORD_BYTES {
            frames.push(Frame {
                offset: pos as u64,
                payload: &[],
                intact: false,
                truncated: true,
            });
            break;
        }
        let start = pos + FRAME_HEADER_BYTES as usize;
        let end = start + len as usize;
        let truncated = end > bytes.len();
        let payload = &bytes[start..end.min(bytes.len())];
        frames.push(Frame {
            offset: pos as u64,
            payload,
            intact: !truncated && fnv1a64(payload) == sum,
            truncated,
        });
        if truncated {
            break;
        }
        pos = end;
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FailureProfile {
        FailureProfile {
            victim_count: 2,
            discovery_rounds: 10,
            tests_per_level: vec![18, 24],
            recursion_tests: 42,
            distances: vec![-8, 1, 8],
            chipwide_rounds: 6,
            failures: vec![
                FailingCell {
                    unit: 0,
                    bank: 1,
                    row: 7,
                    col: 100,
                    value: true,
                },
                FailingCell {
                    unit: 3,
                    bank: 0,
                    row: 2,
                    col: 5,
                    value: false,
                },
            ],
        }
    }

    #[test]
    fn payload_roundtrip() {
        let profile = sample();
        let payload = encode_payload("A1", &profile);
        let rec = decode_payload(&payload, true).expect("decode");
        assert_eq!(rec.name, "A1");
        assert_eq!(rec.profile, profile);
        assert!(rec.complete);
    }

    #[test]
    fn content_hash_ignores_name() {
        let profile = sample();
        let a = encode_payload("A1", &profile);
        let b = encode_payload("Zed", &profile);
        assert_ne!(a, b);
        assert_eq!(content_hash(&profile), content_hash(&profile.clone()));
    }

    #[test]
    fn tolerant_decode_keeps_column_prefix() {
        let profile = sample();
        let payload = encode_payload("A1", &profile);
        // Cut into the polarity bits: coordinates survive, values do not.
        let cut = &payload[..payload.len() - 1];
        assert!(decode_payload(cut, true).is_err());
        let rec = decode_payload(cut, false).expect("salvage");
        assert!(!rec.complete);
        assert!(rec.profile.failures.len() < profile.failures.len());
        assert_eq!(rec.profile.distances, profile.distances);
    }

    #[test]
    fn strict_rejects_trailing_garbage() {
        let profile = sample();
        let mut payload = encode_payload("A1", &profile);
        payload.push(0xff);
        assert!(decode_payload(&payload, true).is_err());
    }

    #[test]
    fn frame_walk_flags_torn_tail() {
        let profile = sample();
        let mut bytes = SEGMENT_MAGIC.to_vec();
        bytes.extend_from_slice(&frame_payload(&encode_payload("A1", &profile)));
        bytes.extend_from_slice(&frame_payload(&encode_payload("B2", &profile)));
        let full = walk_frames(&bytes).expect("walk");
        assert_eq!(full.len(), 2);
        assert!(full.iter().all(|f| f.intact));

        let torn = &bytes[..bytes.len() - 5];
        let frames = walk_frames(torn).expect("walk torn");
        assert_eq!(frames.len(), 2);
        assert!(frames[0].intact);
        assert!(!frames[1].intact && frames[1].truncated);
    }
}
