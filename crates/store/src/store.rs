//! The profile store engine: L0 appends, generational compaction, sharded
//! index, crash recovery.
//!
//! ## On-disk layout (v2)
//!
//! ```text
//! manifest.json            version, epoch, compacted generations
//! index-<shard>.json       sharded module index (shard = fnv1a64(name) % 16)
//! segments/L0-<name>.pbs   one freshly-appended profile per module
//! segments/g<G>-<k>.pbs    compacted generation G, chunk k (sorted, deduped)
//! COMPACTING               marker: a compaction is (or died) in flight
//! ```
//!
//! Appends land as single-record L0 segments; [`ProfileStore::compact`]
//! merges every live record — L0, older generations, and any legacy v1
//! JSONL segments — into a fresh generation of sorted, deduplicated chunk
//! files. Precedence is latest-write-wins: L0 over everything, then higher
//! generation numbers. Every file is written with the temp + rename idiom
//! and the manifest swap is the commit point, so a compaction killed at
//! any instant recovers to a store byte-identical to either the pre- or
//! the post-compaction state (verified by `scripts/store_smoke.sh`).
//!
//! The store is deliberately free of timestamps and absolute paths: two
//! independent runs over the same modules produce byte-identical stores,
//! which is what the fleet kill-and-resume determinism checks compare.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fs;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use parbor_core::FailureProfile;
use parbor_obs::{metrics, span, RecorderHandle};

use crate::aggregate::{AggregateBuilder, FleetAggregate};
use crate::hash::{fnv1a64, format_hash};
use crate::legacy::{self, LegacyMeta};
use crate::segment::{
    decode_payload, encode_payload, frame_payload, walk_frames, Frame, FRAME_HEADER_BYTES,
    MAX_RECORD_BYTES, SEGMENT_MAGIC,
};
use crate::StoreError;

/// Current store format version, recorded in the manifest and every index
/// shard. Bump on any incompatible layout change.
pub const STORE_VERSION: u32 = 2;

/// Number of index shards (`index-00.json` … `index-0f.json`).
pub const SHARD_COUNT: usize = 16;

/// Records per compacted chunk file before the writer rotates.
pub const CHUNK_RECORDS: usize = 8192;

/// Marker file present while a compaction is in flight; finding it at open
/// triggers orphan collection and (if the manifest swap landed) index
/// roll-forward.
pub const COMPACTING_MARKER: &str = "COMPACTING";

/// Index entry for one stored profile record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentMeta {
    /// Segment file name, relative to `segments/`.
    pub file: String,
    /// Byte offset of the record's frame within the file (0 for legacy
    /// JSONL segments, which hold exactly one profile).
    pub offset: u64,
    /// Content hash of the profile's canonical body bytes (`fnv64:…`) —
    /// stable across segments, generations, and formats.
    pub hash: String,
    /// Number of failing cells the record stores.
    pub failures: usize,
    /// Framed record size in bytes (file size for legacy segments).
    pub bytes: u64,
}

/// One compacted chunk file, as the manifest records it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenSegmentMeta {
    /// Chunk file name, relative to `segments/`.
    pub file: String,
    /// Records the chunk holds.
    pub records: usize,
    /// Failing cells across those records.
    pub failures: usize,
    /// File size in bytes (magic + frames).
    pub bytes: u64,
    /// Content hash of the whole file (`fnv64:…`).
    pub hash: String,
}

/// One compacted generation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenerationMeta {
    /// Generation number (higher = newer).
    pub gen: u32,
    /// The generation's chunk files, in record order.
    pub segments: Vec<GenSegmentMeta>,
}

/// `manifest.json`: the store's commit record. The epoch counts completed
/// compactions; index shards stamp the epoch they were written under, so a
/// shard lagging the manifest identifies a compaction that died between
/// its manifest swap and its index rewrite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ManifestDoc {
    version: u32,
    epoch: u64,
    generations: Vec<GenerationMeta>,
}

/// `index-<shard>.json` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ShardDoc {
    version: u32,
    epoch: u64,
    entries: BTreeMap<String, SegmentMeta>,
}

/// A profile read back from the store.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredProfile {
    /// The stored failure profile (possibly a salvaged prefix, see
    /// [`complete`](StoredProfile::complete)).
    pub profile: FailureProfile,
    /// Whether every failing cell the record promised was readable.
    pub complete: bool,
    /// Whether reading required salvage (checksum mismatch on the record).
    pub recovered: bool,
}

/// Where [`ProfileStore::compact_with_abort`] stops when simulating a
/// mid-compaction crash (each phase aborts *after* its step completes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactPhase {
    /// After the new generation's chunk files are written, before the
    /// manifest swap. Recovery rolls *back*: the orphan chunks are
    /// collected and the store is byte-identical to the pre-compaction
    /// state.
    Segments,
    /// After the manifest swap, before stale-input cleanup. The swap is
    /// the commit point: recovery rolls *forward* to the post-compaction
    /// state.
    Manifest,
    /// After stale inputs are deleted, before the index shards are
    /// rewritten. Recovery rolls forward.
    Cleanup,
}

/// What a compaction did.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CompactReport {
    /// Input segment files merged (L0 + older generations + legacy).
    pub input_segments: usize,
    /// Live records merged in.
    pub input_records: usize,
    /// Chunk files the new generation holds.
    pub output_segments: usize,
    /// Records written (deduplicated, latest-write-wins).
    pub output_records: usize,
    /// Bytes written into the new generation.
    pub output_bytes: u64,
    /// Records that needed salvage (checksum mismatch) on the way through.
    pub salvaged: usize,
    /// Records too corrupt to carry over (dropped from the new
    /// generation).
    pub dropped: usize,
    /// The new generation's number.
    pub gen: u32,
    /// Whether a [`CompactPhase`] abort stopped the compaction mid-flight
    /// (test hook; the store object must be reopened afterwards).
    pub aborted: bool,
}

/// A ledger of what the store holds, from [`ProfileStore::stats`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StoreStats {
    /// Modules the index serves.
    pub modules: usize,
    /// Modules still served from legacy v1 JSONL segments.
    pub legacy_modules: usize,
    /// Modules served from single-record L0 segments.
    pub l0_segments: usize,
    /// `(generation, chunk files)` per compacted generation.
    pub generation_segments: Vec<(u32, usize)>,
    /// Index shard files present on disk.
    pub index_shards: usize,
    /// Records on disk that the index points at (and that verify).
    pub live_records: usize,
    /// Intact records in compacted generations that the index has
    /// superseded (space a future compaction reclaims).
    pub dead_records: usize,
    /// Records that failed their frame checksum or did not decode.
    pub corrupt_records: usize,
    /// Failing cells across all live records (from the index).
    pub total_failures: usize,
    /// Bytes across every referenced segment file.
    pub segment_bytes: u64,
    /// Whether the ledger balances: every indexed module resolved to a
    /// live, intact record and nothing was corrupt.
    pub ledger_balanced: bool,
}

enum Source {
    V2(SegmentMeta),
    Legacy(LegacyMeta),
}

/// The profile store.
#[derive(Debug)]
pub struct ProfileStore {
    root: PathBuf,
    manifest: ManifestDoc,
    shards: RefCell<Vec<Option<BTreeMap<String, SegmentMeta>>>>,
    dirty: Vec<bool>,
    legacy: Option<BTreeMap<String, LegacyMeta>>,
    rec: RecorderHandle,
}

impl ProfileStore {
    /// Opens (or initialises) the store rooted at `root`, running crash
    /// recovery if a previous process died mid-compaction (orphan chunk
    /// collection, index roll-forward) and rebuilding the manifest from
    /// the segment files when it is torn. A v1 (`index.json` + JSONL)
    /// store opens in place and keeps serving until the first compaction
    /// migrates it.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on an unsupported version or damage beyond
    /// salvage; I/O errors.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        Self::open_with_recorder(root, RecorderHandle::null())
    }

    /// [`open`](ProfileStore::open) with a recorder attached up front, so
    /// recovery work done *during* open (`store.recovery`,
    /// `store.gc_files`) is observable.
    ///
    /// # Errors
    ///
    /// As [`open`](ProfileStore::open).
    pub fn open_with_recorder(
        root: impl Into<PathBuf>,
        rec: RecorderHandle,
    ) -> Result<Self, StoreError> {
        let root = root.into();
        fs::create_dir_all(root.join("segments"))?;
        let legacy_path = root.join("index.json");
        let legacy = if legacy_path.exists() {
            Some(legacy::load_index(&legacy_path)?)
        } else {
            None
        };

        let manifest_path = root.join("manifest.json");
        let manifest = if manifest_path.exists() {
            match fs::read_to_string(&manifest_path)
                .map_err(StoreError::Io)
                .and_then(|text| {
                    serde_json::from_str::<ManifestDoc>(&text).map_err(|e| StoreError::Corrupt {
                        path: manifest_path.clone(),
                        detail: format!("manifest does not parse: {}", e.0),
                    })
                }) {
                Ok(doc) if doc.version == STORE_VERSION => doc,
                Ok(doc) => {
                    return Err(StoreError::Corrupt {
                        path: manifest_path,
                        detail: format!(
                            "store version {} unsupported (expected {STORE_VERSION})",
                            doc.version
                        ),
                    })
                }
                Err(StoreError::Corrupt { .. }) => full_rebuild(&root, &rec)?,
                Err(e) => return Err(e),
            }
        } else if has_v2_state(&root) {
            // Segments or shards without a manifest: the manifest was lost.
            full_rebuild(&root, &rec)?
        } else {
            let doc = ManifestDoc {
                version: STORE_VERSION,
                epoch: 0,
                generations: Vec::new(),
            };
            if legacy.is_none() {
                write_atomic(
                    &manifest_path,
                    serde_json::to_string_pretty(&doc)?.as_bytes(),
                )?;
            }
            doc
        };

        let mut store = ProfileStore {
            root,
            manifest,
            shards: RefCell::new(vec![None; SHARD_COUNT]),
            dirty: vec![false; SHARD_COUNT],
            legacy,
            rec,
        };
        if store.root.join(COMPACTING_MARKER).exists() {
            store.recover_in_flight_compaction()?;
        }
        Ok(store)
    }

    /// Attaches a recorder (for `store.*` events after open; prefer
    /// [`open_with_recorder`](ProfileStore::open_with_recorder) to observe
    /// open-time recovery too).
    #[must_use]
    pub fn with_recorder(mut self, rec: RecorderHandle) -> Self {
        self.rec = rec;
        self
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Stored module names, sorted.
    ///
    /// # Errors
    ///
    /// Index shard read errors.
    pub fn modules(&self) -> Result<Vec<String>, StoreError> {
        let mut names: Vec<String> = Vec::new();
        for id in 0..SHARD_COUNT {
            self.ensure_shard(id)?;
            let shards = self.shards.borrow();
            names.extend(shards[id].as_ref().unwrap().keys().cloned());
        }
        if let Some(legacy) = &self.legacy {
            names.extend(legacy.keys().cloned());
        }
        names.sort();
        names.dedup();
        Ok(names)
    }

    /// Index entry for `name`, if stored (legacy entries are converted:
    /// offset 0, file-level hash).
    ///
    /// # Errors
    ///
    /// Index shard read errors.
    pub fn meta(&self, name: &str) -> Result<Option<SegmentMeta>, StoreError> {
        if let Some(meta) = self.v2_meta(name)? {
            return Ok(Some(meta));
        }
        Ok(self
            .legacy
            .as_ref()
            .and_then(|l| l.get(name))
            .map(|m| SegmentMeta {
                file: m.file.clone(),
                offset: 0,
                hash: m.hash.clone(),
                failures: m.failures,
                bytes: m.bytes,
            }))
    }

    /// Whether a profile for `name` is stored. An unreadable index shard
    /// counts as absent (the caller re-scans and overwrites).
    pub fn contains(&self, name: &str) -> bool {
        matches!(self.v2_meta(name), Ok(Some(_)))
            || self.legacy.as_ref().is_some_and(|l| l.contains_key(name))
    }

    /// Writes `profile` as a new L0 record for `name` (replacing any
    /// previous record via latest-write-wins) and durably updates the
    /// module's index shard. Equivalent to [`stage`](ProfileStore::stage)
    /// + [`flush`](ProfileStore::flush).
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidConfig`] for names that are not valid file
    /// stems; I/O and serialization errors.
    pub fn put(&mut self, name: &str, profile: &FailureProfile) -> Result<SegmentMeta, StoreError> {
        let meta = self.stage(name, profile)?;
        self.flush()?;
        Ok(meta)
    }

    /// [`put`](ProfileStore::put) without the per-call index flush: the L0
    /// segment is written durably, the index update stays in memory until
    /// [`flush`](ProfileStore::flush). The bulk-ingest path — writing 100 k
    /// profiles through `put` would rewrite each index shard thousands of
    /// times; `stage` + one `flush` writes each shard once. An unflushed
    /// record is invisible to a later open (its L0 file is simply
    /// re-written when the job re-runs).
    ///
    /// # Errors
    ///
    /// As [`put`](ProfileStore::put).
    pub fn stage(
        &mut self,
        name: &str,
        profile: &FailureProfile,
    ) -> Result<SegmentMeta, StoreError> {
        if !valid_name(name) {
            return Err(StoreError::InvalidConfig(format!(
                "'{name}' is not a valid segment name"
            )));
        }
        let payload = encode_payload(name, profile);
        let body_hash = fnv1a64(payload_body(&payload));
        let framed = frame_payload(&payload);
        let file = format!("L0-{name}.pbs");
        let mut bytes = Vec::with_capacity(SEGMENT_MAGIC.len() + framed.len());
        bytes.extend_from_slice(SEGMENT_MAGIC);
        bytes.extend_from_slice(&framed);
        write_atomic(&self.root.join("segments").join(&file), &bytes)?;
        let meta = SegmentMeta {
            file,
            offset: SEGMENT_MAGIC.len() as u64,
            hash: format_hash(body_hash),
            failures: profile.failures.len(),
            bytes: framed.len() as u64,
        };
        let id = shard_of(name);
        self.ensure_shard(id)?;
        self.shards.borrow_mut()[id]
            .as_mut()
            .unwrap()
            .insert(name.to_string(), meta.clone());
        self.dirty[id] = true;
        if !self.root.join("manifest.json").exists() {
            // A legacy-only store gains its v2 manifest on first write.
            write_atomic(
                &self.root.join("manifest.json"),
                serde_json::to_string_pretty(&self.manifest)?.as_bytes(),
            )?;
        }
        self.rec.incr(metrics::store::PUTS, 1);
        self.rec.incr(metrics::store::PUT_BYTES, bytes.len() as u64);
        Ok(meta)
    }

    /// Writes every index shard a [`stage`](ProfileStore::stage) touched.
    ///
    /// # Errors
    ///
    /// I/O and serialization errors.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        for id in 0..SHARD_COUNT {
            if !self.dirty[id] {
                continue;
            }
            let shards = self.shards.borrow();
            let entries = shards[id].as_ref().unwrap();
            let doc = ShardDoc {
                version: STORE_VERSION,
                epoch: self.manifest.epoch,
                entries: entries.clone(),
            };
            let text = serde_json::to_string_pretty(&doc)?;
            drop(shards);
            write_atomic(&self.root.join(shard_file(id)), text.as_bytes())?;
            self.dirty[id] = false;
        }
        Ok(())
    }

    /// Reads the profile for `name` back, verifying the record's frame
    /// checksum. On mismatch the decodable column prefix is salvaged: the
    /// result is marked [`recovered`](StoredProfile::recovered) (and
    /// [`complete`](StoredProfile::complete) only if every promised cell
    /// survived), and a `store.recovery` counter increment is emitted.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidConfig`] for unknown modules;
    /// [`StoreError::Corrupt`] when not even the record's name survives;
    /// I/O errors.
    pub fn get(&self, name: &str) -> Result<StoredProfile, StoreError> {
        if let Some(meta) = self.v2_meta(name)? {
            self.rec.incr(metrics::store::READS, 1);
            let (payload, intact) = self.read_frame(&meta)?;
            if !intact {
                self.rec.incr(metrics::store::RECOVERY, 1);
            }
            let decoded =
                decode_payload(&payload, intact).map_err(|detail| StoreError::Corrupt {
                    path: self.root.join("segments").join(&meta.file),
                    detail,
                })?;
            if decoded.name != name {
                return Err(StoreError::Corrupt {
                    path: self.root.join("segments").join(&meta.file),
                    detail: format!(
                        "record claims module '{}' but is indexed as '{name}'",
                        decoded.name
                    ),
                });
            }
            return Ok(StoredProfile {
                profile: decoded.profile,
                complete: decoded.complete,
                recovered: !intact,
            });
        }
        if let Some(meta) = self.legacy.as_ref().and_then(|l| l.get(name)) {
            self.rec.incr(metrics::store::READS, 1);
            self.rec.incr(metrics::store::LEGACY_READS, 1);
            let seg_path = self.root.join("segments").join(&meta.file);
            let (profile, complete, intact) = legacy::read_segment(&seg_path, name, meta)?;
            if !intact {
                self.rec.incr(metrics::store::RECOVERY, 1);
            }
            return Ok(StoredProfile {
                profile,
                complete,
                recovered: !intact,
            });
        }
        Err(StoreError::InvalidConfig(format!(
            "module '{name}' not in store index"
        )))
    }

    /// Reads every stored profile, sorted by module name. The snapshot
    /// read path for `parbor-serve`: a daemon loads the whole store once
    /// at startup and compiles it into an immutable in-memory snapshot.
    /// Salvage semantics per module match [`get`](ProfileStore::get).
    ///
    /// # Errors
    ///
    /// Any error [`get`](ProfileStore::get) can return, on the first
    /// failing module.
    pub fn load_all(&self) -> Result<Vec<(String, StoredProfile)>, StoreError> {
        let names = self.modules()?;
        let mut out = Vec::with_capacity(names.len());
        for name in names {
            let profile = self.get(&name)?;
            out.push((name, profile));
        }
        Ok(out)
    }

    /// Re-verifies every indexed record: `(module, intact)` pairs, sorted
    /// by module name. A record is intact when its frame checksum holds
    /// and its body bytes still match the indexed content hash. Missing
    /// files count as not intact.
    ///
    /// # Errors
    ///
    /// I/O errors other than a missing segment file.
    pub fn verify(&self) -> Result<Vec<(String, bool)>, StoreError> {
        let mut out = Vec::new();
        for name in self.modules()? {
            let intact = if let Some(meta) = self.v2_meta(&name)? {
                match self.read_frame(&meta) {
                    Ok((payload, true)) => {
                        format_hash(fnv1a64(payload_body(&payload))) == meta.hash
                    }
                    Ok((_, false)) => false,
                    Err(StoreError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => false,
                    Err(StoreError::Corrupt { .. }) => false,
                    Err(e) => return Err(e),
                }
            } else if let Some(meta) = self.legacy.as_ref().and_then(|l| l.get(&name)) {
                match fs::read(self.root.join("segments").join(&meta.file)) {
                    Ok(bytes) => format_hash(fnv1a64(&bytes)) == meta.hash,
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => false,
                    Err(e) => return Err(e.into()),
                }
            } else {
                false
            };
            out.push((name, intact));
        }
        Ok(out)
    }

    /// Streams every referenced segment file once and balances the ledger:
    /// every indexed module must resolve to an intact record, dead records
    /// (superseded by a later write) are counted but harmless, corrupt
    /// frames tip the balance.
    ///
    /// # Errors
    ///
    /// Index shard read and I/O errors (missing segment files count as
    /// corrupt records instead of erroring).
    pub fn stats(&self) -> Result<StoreStats, StoreError> {
        let entries = self.all_v2_entries()?;
        let legacy_only: Vec<&String> = self
            .legacy
            .iter()
            .flat_map(|l| l.keys())
            .filter(|name| !entries.contains_key(*name))
            .collect();

        let mut live = 0usize;
        let mut dead = 0usize;
        let mut corrupt = 0usize;
        let mut seg_bytes = 0u64;
        let mut scan = |file: &str| -> Result<(), StoreError> {
            let path = self.root.join("segments").join(file);
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    corrupt += 1;
                    return Ok(());
                }
                Err(e) => return Err(e.into()),
            };
            seg_bytes += bytes.len() as u64;
            let frames = match walk_frames(&bytes) {
                Ok(f) => f,
                Err(_) => {
                    corrupt += 1;
                    return Ok(());
                }
            };
            for frame in frames {
                if !frame.intact {
                    corrupt += 1;
                    continue;
                }
                match decode_payload(frame.payload, true) {
                    Ok(rec) => {
                        let current = entries.get(&rec.name);
                        if current.is_some_and(|m| m.file == file && m.offset == frame.offset) {
                            live += 1;
                        } else {
                            dead += 1;
                        }
                    }
                    Err(_) => corrupt += 1,
                }
            }
            Ok(())
        };

        for gen in &self.manifest.generations {
            for seg in &gen.segments {
                scan(&seg.file)?;
            }
        }
        let mut l0_segments = 0usize;
        for meta in entries.values() {
            if meta.file.starts_with("L0-") {
                l0_segments += 1;
                scan(&meta.file)?;
            }
        }
        for name in &legacy_only {
            let meta = &self.legacy.as_ref().unwrap()[*name];
            match fs::read(self.root.join("segments").join(&meta.file)) {
                Ok(bytes) => {
                    seg_bytes += bytes.len() as u64;
                    if format_hash(fnv1a64(&bytes)) == meta.hash {
                        live += 1;
                    } else {
                        corrupt += 1;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => corrupt += 1,
                Err(e) => return Err(e.into()),
            }
        }

        let modules = entries.len() + legacy_only.len();
        let total_failures = entries.values().map(|m| m.failures).sum::<usize>()
            + legacy_only
                .iter()
                .map(|n| self.legacy.as_ref().unwrap()[*n].failures)
                .sum::<usize>();
        let index_shards = (0..SHARD_COUNT)
            .filter(|&id| self.root.join(shard_file(id)).exists())
            .count();
        Ok(StoreStats {
            modules,
            legacy_modules: legacy_only.len(),
            l0_segments,
            generation_segments: self
                .manifest
                .generations
                .iter()
                .map(|g| (g.gen, g.segments.len()))
                .collect(),
            index_shards,
            live_records: live,
            dead_records: dead,
            corrupt_records: corrupt,
            total_failures,
            segment_bytes: seg_bytes,
            ledger_balanced: live == modules && corrupt == 0,
        })
    }

    /// Streams every live record once — one segment file in memory at a
    /// time — into cross-module rollups: distance-set counts, a
    /// failures-per-module histogram, and per-vendor failure rates.
    ///
    /// # Errors
    ///
    /// Index shard read and I/O errors.
    pub fn aggregate(&self) -> Result<FleetAggregate, StoreError> {
        let entries = self.all_v2_entries()?;
        let mut builder = AggregateBuilder::new();

        let mut stream = |file: &str| -> Result<(), StoreError> {
            let path = self.root.join("segments").join(file);
            let bytes = fs::read(&path)?;
            self.rec.incr(metrics::store::AGG_SEGMENTS, 1);
            for frame in walk_frames(&bytes).map_err(|detail| StoreError::Corrupt {
                path: path.clone(),
                detail,
            })? {
                if !frame.intact {
                    continue;
                }
                if let Ok(rec) = decode_payload(frame.payload, true) {
                    let current = entries.get(&rec.name);
                    if current.is_some_and(|m| m.file == file && m.offset == frame.offset) {
                        builder.add(&rec.name, &rec.profile);
                        self.rec.incr(metrics::store::AGG_RECORDS, 1);
                    }
                }
            }
            Ok(())
        };

        for gen in &self.manifest.generations {
            for seg in &gen.segments {
                stream(&seg.file)?;
            }
        }
        for meta in entries.values() {
            if meta.file.starts_with("L0-") {
                stream(&meta.file)?;
            }
        }
        if let Some(legacy) = &self.legacy {
            for (name, meta) in legacy {
                if entries.contains_key(name) {
                    continue;
                }
                let seg_path = self.root.join("segments").join(&meta.file);
                let (profile, _, _) = legacy::read_segment(&seg_path, name, meta)?;
                builder.add(name, &profile);
                self.rec.incr(metrics::store::AGG_RECORDS, 1);
            }
        }
        Ok(builder.finish())
    }

    /// Merges every live record — L0 appends, older generations, legacy
    /// JSONL — into one fresh generation of sorted, deduplicated
    /// (latest-write-wins) chunk files, then retires the inputs. The
    /// manifest swap is atomic; a crash at any point recovers to exactly
    /// the pre- or post-compaction store.
    ///
    /// # Errors
    ///
    /// I/O and serialization errors.
    pub fn compact(&mut self) -> Result<CompactReport, StoreError> {
        self.compact_with_abort(None)
    }

    /// [`compact`](ProfileStore::compact) with a crash-injection hook:
    /// when `abort_after` is set, the compaction stops right after that
    /// phase, leaving the torn on-disk state a real crash would. The
    /// store object is stale afterwards and must be dropped; reopening
    /// runs recovery. Test/smoke hook only.
    ///
    /// # Errors
    ///
    /// As [`compact`](ProfileStore::compact).
    pub fn compact_with_abort(
        &mut self,
        abort_after: Option<CompactPhase>,
    ) -> Result<CompactReport, StoreError> {
        self.flush()?;
        let _span = span!(self.rec, metrics::store::COMPACT_SPAN);

        // Gather the live record set: v2 index first, legacy fills gaps.
        let v2 = self.all_v2_entries()?;
        let mut sources: BTreeMap<String, Source> = BTreeMap::new();
        if let Some(legacy) = &self.legacy {
            for (name, meta) in legacy {
                sources.insert(name.clone(), Source::Legacy(meta.clone()));
            }
        }
        let mut input_files: std::collections::BTreeSet<String> = sources
            .values()
            .map(|s| match s {
                Source::Legacy(m) => m.file.clone(),
                Source::V2(m) => m.file.clone(),
            })
            .collect();
        for (name, meta) in &v2 {
            input_files.insert(meta.file.clone());
            sources.insert(name.clone(), Source::V2(meta.clone()));
        }
        let input_records = sources.len();
        let new_gen = self
            .manifest
            .generations
            .iter()
            .map(|g| g.gen)
            .max()
            .unwrap_or(0)
            + 1;
        let mut report = CompactReport {
            input_segments: input_files.len(),
            input_records,
            output_segments: 0,
            output_records: 0,
            output_bytes: 0,
            salvaged: 0,
            dropped: 0,
            gen: new_gen,
            aborted: false,
        };
        if input_records == 0 {
            return Ok(report);
        }

        write_atomic(
            &self.root.join(COMPACTING_MARKER),
            b"compaction in flight\n",
        )?;

        // Phase 1: write the new generation's chunk files (temp + rename
        // each). Records stream through one at a time, sorted by module.
        let mut new_entries: BTreeMap<String, SegmentMeta> = BTreeMap::new();
        let mut gen_segments: Vec<GenSegmentMeta> = Vec::new();
        let mut chunk: Vec<u8> = Vec::new();
        let mut chunk_records: Vec<(String, SegmentMeta)> = Vec::new();
        let mut last_file: Option<(String, Vec<u8>)> = None;

        let finalize_chunk = |chunk: &mut Vec<u8>,
                              chunk_records: &mut Vec<(String, SegmentMeta)>,
                              gen_segments: &mut Vec<GenSegmentMeta>,
                              new_entries: &mut BTreeMap<String, SegmentMeta>|
         -> Result<(), StoreError> {
            if chunk_records.is_empty() {
                return Ok(());
            }
            let file = format!("g{new_gen}-{:04}.pbs", gen_segments.len());
            let path = self.root.join("segments").join(&file);
            write_atomic(&path, chunk)?;
            let records = chunk_records.len();
            let mut failures = 0usize;
            for (name, mut meta) in chunk_records.drain(..) {
                meta.file = file.clone();
                failures += meta.failures;
                new_entries.insert(name, meta);
            }
            gen_segments.push(GenSegmentMeta {
                file,
                records,
                failures,
                bytes: chunk.len() as u64,
                hash: format_hash(fnv1a64(chunk)),
            });
            chunk.clear();
            Ok(())
        };

        for (name, source) in &sources {
            let payload: Option<Vec<u8>> = match source {
                Source::V2(meta) => {
                    let (payload, intact) = match self.read_frame_cached(meta, &mut last_file) {
                        Ok(v) => v,
                        Err(StoreError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                            (Vec::new(), false)
                        }
                        Err(e) => return Err(e),
                    };
                    if intact {
                        Some(payload)
                    } else {
                        self.rec.incr(metrics::store::RECOVERY, 1);
                        match decode_payload(&payload, false) {
                            Ok(rec) => {
                                report.salvaged += 1;
                                Some(encode_payload(name, &rec.profile))
                            }
                            Err(_) => {
                                report.dropped += 1;
                                None
                            }
                        }
                    }
                }
                Source::Legacy(meta) => {
                    let seg_path = self.root.join("segments").join(&meta.file);
                    match legacy::read_segment(&seg_path, name, meta) {
                        Ok((profile, _, intact)) => {
                            if !intact {
                                self.rec.incr(metrics::store::RECOVERY, 1);
                                report.salvaged += 1;
                            }
                            Some(encode_payload(name, &profile))
                        }
                        Err(_) => {
                            self.rec.incr(metrics::store::RECOVERY, 1);
                            report.dropped += 1;
                            None
                        }
                    }
                }
            };
            let Some(payload) = payload else { continue };
            if chunk.is_empty() {
                chunk.extend_from_slice(SEGMENT_MAGIC);
            }
            let offset = chunk.len() as u64;
            let framed = frame_payload(&payload);
            chunk.extend_from_slice(&framed);
            let decoded = decode_payload(&payload, true).map_err(|detail| StoreError::Corrupt {
                path: self.root.join("segments"),
                detail,
            })?;
            chunk_records.push((
                name.clone(),
                SegmentMeta {
                    file: String::new(),
                    offset,
                    hash: format_hash(fnv1a64(payload_body(&payload))),
                    failures: decoded.profile.failures.len(),
                    bytes: framed.len() as u64,
                },
            ));
            report.output_records += 1;
            report.output_bytes += framed.len() as u64;
            if chunk_records.len() >= CHUNK_RECORDS {
                finalize_chunk(
                    &mut chunk,
                    &mut chunk_records,
                    &mut gen_segments,
                    &mut new_entries,
                )?;
            }
        }
        finalize_chunk(
            &mut chunk,
            &mut chunk_records,
            &mut gen_segments,
            &mut new_entries,
        )?;
        report.output_segments = gen_segments.len();
        self.rec.incr(
            metrics::store::COMPACT_RECORDS,
            report.output_records as u64,
        );
        self.rec
            .incr(metrics::store::COMPACT_BYTES, report.output_bytes);
        if abort_after == Some(CompactPhase::Segments) {
            report.aborted = true;
            return Ok(report);
        }

        // Phase 2: the commit point — swap the manifest.
        let new_manifest = ManifestDoc {
            version: STORE_VERSION,
            epoch: self.manifest.epoch + 1,
            generations: vec![GenerationMeta {
                gen: new_gen,
                segments: gen_segments,
            }],
        };
        write_atomic(
            &self.root.join("manifest.json"),
            serde_json::to_string_pretty(&new_manifest)?.as_bytes(),
        )?;
        if abort_after == Some(CompactPhase::Manifest) {
            report.aborted = true;
            return Ok(report);
        }

        // Phase 3: retire the inputs. Deleting everything the new manifest
        // does not reference (rather than just the gathered input files)
        // keeps this step byte-for-byte equivalent to what roll-forward
        // recovery reconstructs after a crash here.
        let referenced: std::collections::BTreeSet<&str> = new_manifest.generations[0]
            .segments
            .iter()
            .map(|s| s.file.as_str())
            .collect();
        for entry in fs::read_dir(self.root.join("segments"))? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if !referenced.contains(name.as_str()) {
                fs::remove_file(entry.path()).ok();
                self.rec.incr(metrics::store::GC_FILES, 1);
            }
        }
        if fs::remove_file(self.root.join("index.json")).is_ok() {
            self.rec.incr(metrics::store::GC_FILES, 1);
        }
        if abort_after == Some(CompactPhase::Cleanup) {
            report.aborted = true;
            return Ok(report);
        }

        // Phase 4: rewrite the index shards under the new epoch, then drop
        // the marker.
        write_shards(&self.root, &new_entries, new_manifest.epoch)?;
        fs::remove_file(self.root.join(COMPACTING_MARKER)).ok();

        self.manifest = new_manifest;
        self.legacy = None;
        let mut shards: Vec<Option<BTreeMap<String, SegmentMeta>>> =
            vec![Some(BTreeMap::new()); SHARD_COUNT];
        for (name, meta) in new_entries {
            shards[shard_of(&name)].as_mut().unwrap().insert(name, meta);
        }
        self.shards = RefCell::new(shards);
        self.dirty = vec![false; SHARD_COUNT];
        self.rec.incr(metrics::store::COMPACTIONS, 1);
        Ok(report)
    }

    // ------------------------------------------------------------ internals

    fn v2_meta(&self, name: &str) -> Result<Option<SegmentMeta>, StoreError> {
        let id = shard_of(name);
        self.ensure_shard(id)?;
        Ok(self.shards.borrow()[id]
            .as_ref()
            .unwrap()
            .get(name)
            .cloned())
    }

    fn ensure_shard(&self, id: usize) -> Result<(), StoreError> {
        if self.shards.borrow()[id].is_some() {
            return Ok(());
        }
        let path = self.root.join(shard_file(id));
        let entries = if path.exists() {
            let text = fs::read_to_string(&path)?;
            let doc: ShardDoc = serde_json::from_str(&text).map_err(|e| StoreError::Corrupt {
                path: path.clone(),
                detail: format!("index shard does not parse: {}", e.0),
            })?;
            if doc.version != STORE_VERSION {
                return Err(StoreError::Corrupt {
                    path,
                    detail: format!(
                        "index shard version {} unsupported (expected {STORE_VERSION})",
                        doc.version
                    ),
                });
            }
            doc.entries
        } else {
            BTreeMap::new()
        };
        self.shards.borrow_mut()[id] = Some(entries);
        Ok(())
    }

    fn all_v2_entries(&self) -> Result<BTreeMap<String, SegmentMeta>, StoreError> {
        let mut all = BTreeMap::new();
        for id in 0..SHARD_COUNT {
            self.ensure_shard(id)?;
            let shards = self.shards.borrow();
            for (name, meta) in shards[id].as_ref().unwrap() {
                all.insert(name.clone(), meta.clone());
            }
        }
        Ok(all)
    }

    /// Reads a record frame at `meta`'s location. Returns the payload (as
    /// much of it as exists) and whether it matched its checksum.
    fn read_frame(&self, meta: &SegmentMeta) -> Result<(Vec<u8>, bool), StoreError> {
        let path = self.root.join("segments").join(&meta.file);
        let mut f = fs::File::open(&path)?;
        read_frame_from(&mut f, meta.offset, &path)
    }

    /// [`read_frame`](Self::read_frame) keeping the last file handle open —
    /// compaction visits records in name order, which within a generation
    /// is also file/offset order, so consecutive reads mostly hit the same
    /// file.
    fn read_frame_cached(
        &self,
        meta: &SegmentMeta,
        last: &mut Option<(String, Vec<u8>)>,
    ) -> Result<(Vec<u8>, bool), StoreError> {
        let path = self.root.join("segments").join(&meta.file);
        if last.as_ref().map(|(f, _)| f.as_str()) != Some(meta.file.as_str()) {
            *last = Some((meta.file.clone(), fs::read(&path)?));
        }
        let bytes = &last.as_ref().unwrap().1;
        let start = meta.offset as usize;
        if start + FRAME_HEADER_BYTES as usize > bytes.len() {
            return Ok((Vec::new(), false));
        }
        let len = u32::from_le_bytes(bytes[start..start + 4].try_into().unwrap()) as u64;
        let sum = u64::from_le_bytes(bytes[start + 4..start + 12].try_into().unwrap());
        if len > MAX_RECORD_BYTES {
            return Ok((Vec::new(), false));
        }
        let pstart = start + FRAME_HEADER_BYTES as usize;
        let pend = (pstart + len as usize).min(bytes.len());
        let payload = bytes[pstart..pend].to_vec();
        let intact = payload.len() as u64 == len && fnv1a64(&payload) == sum;
        Ok((payload, intact))
    }

    /// A previous compaction died in flight (the `COMPACTING` marker is
    /// present). Collect orphan chunk files; if the manifest swap had
    /// landed (any index shard's epoch lags the manifest), roll forward:
    /// delete every stale input and rebuild the shards from the committed
    /// generation.
    fn recover_in_flight_compaction(&mut self) -> Result<(), StoreError> {
        let referenced: std::collections::BTreeSet<String> = self
            .manifest
            .generations
            .iter()
            .flat_map(|g| g.segments.iter().map(|s| s.file.clone()))
            .collect();
        for entry in fs::read_dir(self.root.join("segments"))? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let orphan_gen = is_gen_file(&name) && !referenced.contains(&name);
            if name.starts_with(".tmp-") || orphan_gen {
                fs::remove_file(entry.path()).ok();
                self.rec.incr(metrics::store::GC_FILES, 1);
            }
        }
        let stale = (0..SHARD_COUNT).any(|id| {
            peek_epoch(&self.root.join(shard_file(id)))
                .is_some_and(|epoch| epoch != self.manifest.epoch)
        });
        if stale {
            // The manifest committed: its generation holds every live
            // record. Everything else — L0s, legacy JSONL, the legacy
            // index — was merged in and is stale.
            for entry in fs::read_dir(self.root.join("segments"))? {
                let entry = entry?;
                let name = entry.file_name().to_string_lossy().into_owned();
                if name.starts_with("L0-") || name.ends_with(".jsonl") {
                    fs::remove_file(entry.path()).ok();
                    self.rec.incr(metrics::store::GC_FILES, 1);
                }
            }
            if fs::remove_file(self.root.join("index.json")).is_ok() {
                self.rec.incr(metrics::store::GC_FILES, 1);
            }
            self.legacy = None;
            let entries = scan_generations(&self.root, &self.manifest)?;
            write_shards(&self.root, &entries, self.manifest.epoch)?;
            self.shards = RefCell::new(vec![None; SHARD_COUNT]);
            self.rec.incr(metrics::store::RECOVERY, 1);
        }
        fs::remove_file(self.root.join(COMPACTING_MARKER)).ok();
        Ok(())
    }
}

/// Whether any v2 on-disk state (index shards or `.pbs` segments) exists —
/// used to tell a fresh store from one whose manifest was lost.
fn has_v2_state(root: &Path) -> bool {
    if (0..SHARD_COUNT).any(|id| root.join(shard_file(id)).exists()) {
        return true;
    }
    fs::read_dir(root.join("segments"))
        .map(|dir| {
            dir.flatten()
                .any(|e| e.file_name().to_string_lossy().ends_with(".pbs"))
        })
        .unwrap_or(false)
}

/// Rebuilds the manifest and every index shard by scanning the segment
/// files themselves — the last-resort path when the manifest is torn or
/// missing. Precedence during the scan matches normal reads: generations
/// in ascending order, then L0 records overwrite.
fn full_rebuild(root: &Path, rec: &RecorderHandle) -> Result<ManifestDoc, StoreError> {
    let mut gen_files: BTreeMap<u32, Vec<String>> = BTreeMap::new();
    let mut l0_files: Vec<String> = Vec::new();
    for entry in fs::read_dir(root.join("segments"))? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with(".tmp-") {
            fs::remove_file(entry.path()).ok();
            rec.incr(metrics::store::GC_FILES, 1);
        } else if let Some(gen) = parse_gen_file(&name) {
            gen_files.entry(gen).or_default().push(name);
        } else if name.starts_with("L0-") && name.ends_with(".pbs") {
            l0_files.push(name);
        }
    }
    for files in gen_files.values_mut() {
        files.sort();
    }
    l0_files.sort();

    let mut entries: BTreeMap<String, SegmentMeta> = BTreeMap::new();
    let mut generations: Vec<GenerationMeta> = Vec::new();
    for (&gen, files) in &gen_files {
        let mut segments = Vec::new();
        for file in files {
            let bytes = fs::read(root.join("segments").join(file))?;
            let mut records = 0usize;
            let mut failures = 0usize;
            if let Ok(frames) = walk_frames(&bytes) {
                for frame in frames {
                    index_frame(&frame, file, &mut entries, &mut records, &mut failures);
                }
            }
            segments.push(GenSegmentMeta {
                file: file.clone(),
                records,
                failures,
                bytes: bytes.len() as u64,
                hash: format_hash(fnv1a64(&bytes)),
            });
        }
        generations.push(GenerationMeta { gen, segments });
    }
    for file in &l0_files {
        let bytes = fs::read(root.join("segments").join(file))?;
        let mut records = 0usize;
        let mut failures = 0usize;
        if let Ok(frames) = walk_frames(&bytes) {
            for frame in frames {
                index_frame(&frame, file, &mut entries, &mut records, &mut failures);
            }
        }
    }

    // A fresh epoch past anything a surviving shard might carry, so the
    // rebuilt manifest and shards agree.
    let epoch = (0..SHARD_COUNT)
        .filter_map(|id| peek_epoch(&root.join(shard_file(id))))
        .max()
        .unwrap_or(0)
        + 1;
    let manifest = ManifestDoc {
        version: STORE_VERSION,
        epoch,
        generations,
    };
    write_atomic(
        &root.join("manifest.json"),
        serde_json::to_string_pretty(&manifest)?.as_bytes(),
    )?;
    write_shards(root, &entries, epoch)?;
    rec.incr(metrics::store::RECOVERY, 1);
    Ok(manifest)
}

/// Indexes one scanned frame (skipping torn or undecodable ones).
fn index_frame(
    frame: &Frame<'_>,
    file: &str,
    entries: &mut BTreeMap<String, SegmentMeta>,
    records: &mut usize,
    failures: &mut usize,
) {
    if !frame.intact {
        return;
    }
    if let Ok(rec) = decode_payload(frame.payload, true) {
        *records += 1;
        *failures += rec.profile.failures.len();
        entries.insert(
            rec.name,
            SegmentMeta {
                file: file.to_string(),
                offset: frame.offset,
                hash: format_hash(fnv1a64(payload_body(frame.payload))),
                failures: rec.profile.failures.len(),
                bytes: FRAME_HEADER_BYTES + frame.payload.len() as u64,
            },
        );
    }
}

/// Streams every generation the manifest references into an entry map —
/// the shared index-(re)build path, so a roll-forward recovery writes
/// byte-identical shards to the compaction it is completing.
fn scan_generations(
    root: &Path,
    manifest: &ManifestDoc,
) -> Result<BTreeMap<String, SegmentMeta>, StoreError> {
    let mut entries = BTreeMap::new();
    for gen in &manifest.generations {
        for seg in &gen.segments {
            let path = root.join("segments").join(&seg.file);
            let bytes = fs::read(&path)?;
            let frames = walk_frames(&bytes).map_err(|detail| StoreError::Corrupt {
                path: path.clone(),
                detail,
            })?;
            for frame in frames {
                let (mut records, mut failures) = (0, 0);
                index_frame(&frame, &seg.file, &mut entries, &mut records, &mut failures);
            }
        }
    }
    Ok(entries)
}

/// Writes every index shard from a full entry map (deleting shard files
/// for buckets that end up empty).
fn write_shards(
    root: &Path,
    entries: &BTreeMap<String, SegmentMeta>,
    epoch: u64,
) -> Result<(), StoreError> {
    let mut buckets: Vec<BTreeMap<String, SegmentMeta>> = vec![BTreeMap::new(); SHARD_COUNT];
    for (name, meta) in entries {
        buckets[shard_of(name)].insert(name.clone(), meta.clone());
    }
    for (id, bucket) in buckets.into_iter().enumerate() {
        let path = root.join(shard_file(id));
        if bucket.is_empty() {
            fs::remove_file(&path).ok();
            continue;
        }
        let doc = ShardDoc {
            version: STORE_VERSION,
            epoch,
            entries: bucket,
        };
        write_atomic(&path, serde_json::to_string_pretty(&doc)?.as_bytes())?;
    }
    Ok(())
}

/// Reads one frame from an open file at `offset`: the payload (as much as
/// exists) and whether it verified.
fn read_frame_from(
    f: &mut fs::File,
    offset: u64,
    path: &Path,
) -> Result<(Vec<u8>, bool), StoreError> {
    f.seek(SeekFrom::Start(offset))?;
    let mut hdr = [0u8; FRAME_HEADER_BYTES as usize];
    if read_up_to(f, &mut hdr)? < hdr.len() {
        return Ok((Vec::new(), false));
    }
    let len = u32::from_le_bytes(hdr[0..4].try_into().unwrap()) as u64;
    let sum = u64::from_le_bytes(hdr[4..12].try_into().unwrap());
    if len > MAX_RECORD_BYTES {
        return Err(StoreError::Corrupt {
            path: path.to_path_buf(),
            detail: format!("frame length {len} exceeds the {MAX_RECORD_BYTES}-byte cap"),
        });
    }
    let mut payload = vec![0u8; len as usize];
    let got = read_up_to(f, &mut payload)?;
    payload.truncate(got);
    let intact = got as u64 == len && fnv1a64(&payload) == sum;
    Ok((payload, intact))
}

fn read_up_to(f: &mut fs::File, buf: &mut [u8]) -> Result<usize, StoreError> {
    let mut n = 0;
    while n < buf.len() {
        match f.read(&mut buf[n..]) {
            Ok(0) => break,
            Ok(k) => n += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(n)
}

/// The record payload minus its module-name prefix: the canonical body
/// bytes the content hash covers. Falls back to the whole payload on a
/// malformed name field (only reachable on corrupt input).
pub(crate) fn payload_body(payload: &[u8]) -> &[u8] {
    let mut pos = 0;
    match crate::varint::get_varint(payload, &mut pos) {
        Some(name_len) if pos as u64 + name_len <= payload.len() as u64 => {
            &payload[pos + name_len as usize..]
        }
        _ => payload,
    }
}

/// The index shard a module belongs to.
pub fn shard_of(name: &str) -> usize {
    (fnv1a64(name.as_bytes()) % SHARD_COUNT as u64) as usize
}

/// The shard's file name (`index-00.json` … `index-0f.json`).
pub fn shard_file(id: usize) -> String {
    format!("index-{id:02x}.json")
}

/// Whether `name` is a compacted chunk file (`g<gen>-<k>.pbs`).
fn is_gen_file(name: &str) -> bool {
    parse_gen_file(name).is_some()
}

/// Parses the generation number out of a chunk file name.
fn parse_gen_file(name: &str) -> Option<u32> {
    let rest = name.strip_prefix('g')?.strip_suffix(".pbs")?;
    let (gen, chunk) = rest.split_once('-')?;
    if chunk.is_empty() || !chunk.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    gen.parse().ok()
}

/// Reads just the `epoch` field out of a shard file's head, without
/// parsing the whole (potentially large) document. `None` when the file
/// is missing or the field is not in the first 512 bytes (the
/// serializer puts it second, well inside).
fn peek_epoch(path: &Path) -> Option<u64> {
    let mut f = fs::File::open(path).ok()?;
    let mut buf = [0u8; 512];
    let mut n = 0;
    while n < buf.len() {
        match f.read(&mut buf[n..]) {
            Ok(0) => break,
            Ok(k) => n += k,
            Err(_) => return None,
        }
    }
    let text = std::str::from_utf8(&buf[..n]).ok()?;
    let idx = text.find("\"epoch\"")?;
    let rest = text[idx + "\"epoch\"".len()..].trim_start_matches([':', ' ', '\t']);
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// then rename over the destination.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let dir = path.parent().ok_or_else(|| {
        StoreError::InvalidConfig(format!("path {} has no parent", path.display()))
    })?;
    let stem = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("segment");
    let tmp = dir.join(format!(".tmp-{stem}"));
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.')
}
