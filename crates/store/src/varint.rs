//! LEB128 varints and zigzag coding for the columnar segment payloads.
//!
//! Same wire convention as the `PBHALTB1` binary transcripts: 7 bits per
//! byte, low group first, high bit set on continuation bytes. Signed
//! quantities (coupling distances, row deltas) go through zigzag first so
//! small magnitudes of either sign stay one byte.

/// Appends `v` as an LEB128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint at `*pos`, advancing it. `None` on truncation or
/// a shift past 64 bits (corrupt continuation run).
pub fn get_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = bytes.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Maps a signed value onto the unsigned varint space (0, -1, 1, -2, …).
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverts [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncated_varint_is_none() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        let mut pos = 0;
        assert_eq!(get_varint(&buf[..buf.len() - 1], &mut pos), None);
    }

    #[test]
    fn runaway_continuation_is_none() {
        let buf = vec![0x80u8; 16];
        let mut pos = 0;
        assert_eq!(get_varint(&buf, &mut pos), None);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 8, -8, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }
}
