//! The v1 JSONL store format, kept readable for transparent migration.
//!
//! Version 1 stored one JSONL segment per module (`segments/<name>.jsonl`:
//! header line, profile summary line, one failing cell per line) under a
//! single `index.json`. [`ProfileStore`](crate::ProfileStore) opens such a
//! store in place: reads fall through to these parsers until the first
//! [`compact`](crate::ProfileStore::compact) rewrites everything columnar
//! and retires the v1 files.
//!
//! The writer half only exists for migration tests and the bench harness —
//! production code has no reason to create new v1 stores.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use serde::{Deserialize, Serialize};

use parbor_core::{FailingCell, FailureProfile};

use crate::hash::{fnv1a64, format_hash};
use crate::store::write_atomic;
use crate::StoreError;

/// The store format version the v1 layout recorded in `index.json`.
pub const LEGACY_VERSION: u32 = 1;

/// v1 index entry for one JSONL segment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LegacyMeta {
    /// Segment file name, relative to `segments/`.
    pub file: String,
    /// Content hash of the whole segment file (`fnv64:…`).
    pub hash: String,
    /// Number of failing cells the segment records.
    pub failures: usize,
    /// Segment file size in bytes.
    pub bytes: u64,
}

/// First line of every v1 segment file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SegmentHeader {
    segment_version: u32,
    module: String,
    failures: usize,
}

/// The v1 `index.json` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct IndexDoc {
    version: u32,
    segments: BTreeMap<String, LegacyMeta>,
}

/// Loads a v1 `index.json`, checking its version.
///
/// # Errors
///
/// [`StoreError::Corrupt`] on an unparseable or wrong-version index; I/O
/// errors.
pub fn load_index(path: &Path) -> Result<BTreeMap<String, LegacyMeta>, StoreError> {
    let text = fs::read_to_string(path)?;
    let doc: IndexDoc = serde_json::from_str(&text).map_err(|e| StoreError::Corrupt {
        path: path.to_path_buf(),
        detail: format!("legacy index does not parse: {}", e.0),
    })?;
    if doc.version != LEGACY_VERSION {
        return Err(StoreError::Corrupt {
            path: path.to_path_buf(),
            detail: format!(
                "legacy store version {} unsupported (expected {LEGACY_VERSION})",
                doc.version
            ),
        });
    }
    Ok(doc.segments)
}

/// Reads a v1 segment back, verifying its content hash against `meta`.
/// Returns `(profile, complete, intact)`: on hash mismatch the valid line
/// prefix is salvaged rather than failing the lookup.
///
/// # Errors
///
/// [`StoreError::Corrupt`] when even the header/summary lines are
/// unreadable; I/O errors.
pub fn read_segment(
    seg_path: &Path,
    name: &str,
    meta: &LegacyMeta,
) -> Result<(FailureProfile, bool, bool), StoreError> {
    let bytes = fs::read(seg_path)?;
    let intact = format_hash(fnv1a64(&bytes)) == meta.hash;
    let text = String::from_utf8_lossy(&bytes);
    let (profile, complete) = parse_segment(seg_path, name, &text, intact)?;
    Ok((profile, complete, intact))
}

/// Renders the v1 segment body: header line, summary line, one cell per
/// line.
///
/// # Errors
///
/// Serialization errors.
pub fn render_segment(name: &str, profile: &FailureProfile) -> Result<String, StoreError> {
    let header = SegmentHeader {
        segment_version: LEGACY_VERSION,
        module: name.to_string(),
        failures: profile.failures.len(),
    };
    let summary = FailureProfile {
        failures: Vec::new(),
        ..profile.clone()
    };
    let mut body = String::new();
    body.push_str(&serde_json::to_string(&header)?);
    body.push('\n');
    body.push_str(&serde_json::to_string(&summary)?);
    body.push('\n');
    for cell in &profile.failures {
        body.push_str(&serde_json::to_string(cell)?);
        body.push('\n');
    }
    Ok(body)
}

/// Parses a v1 segment body. With `strict` (hash verified) any malformed
/// line is corruption; without it, cell parsing stops at the first bad
/// line and the prefix is salvaged. Returns the profile and whether it is
/// complete.
fn parse_segment(
    path: &Path,
    name: &str,
    text: &str,
    strict: bool,
) -> Result<(FailureProfile, bool), StoreError> {
    let corrupt = |detail: String| StoreError::Corrupt {
        path: path.to_path_buf(),
        detail,
    };
    let mut lines = text.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| corrupt("empty segment".into()))?;
    let header: SegmentHeader = serde_json::from_str(header_line)
        .map_err(|e| corrupt(format!("segment header does not parse: {}", e.0)))?;
    if header.segment_version != LEGACY_VERSION {
        return Err(corrupt(format!(
            "segment version {} unsupported (expected {LEGACY_VERSION})",
            header.segment_version
        )));
    }
    if header.module != name {
        return Err(corrupt(format!(
            "segment claims module '{}' but is indexed as '{name}'",
            header.module
        )));
    }
    let summary_line = lines
        .next()
        .ok_or_else(|| corrupt("segment has no summary line".into()))?;
    let mut profile: FailureProfile = serde_json::from_str(summary_line)
        .map_err(|e| corrupt(format!("segment summary does not parse: {}", e.0)))?;
    let mut cells: Vec<FailingCell> = Vec::new();
    for line in lines {
        match serde_json::from_str(line) {
            Ok(cell) => cells.push(cell),
            Err(e) if strict => {
                return Err(corrupt(format!(
                    "failing-cell line does not parse: {}",
                    e.0
                )))
            }
            Err(_) => break, // salvage: keep the valid prefix
        }
    }
    if strict && cells.len() != header.failures {
        return Err(corrupt(format!(
            "segment promises {} failures but records {}",
            header.failures,
            cells.len()
        )));
    }
    let complete = cells.len() == header.failures;
    profile.failures = cells;
    Ok((profile, complete))
}

/// Creates a complete v1 store at `root` — the fixture generator for
/// migration tests and the bench harness's `migration_identical` gate.
///
/// # Errors
///
/// I/O and serialization errors.
pub fn write_legacy_store(
    root: &Path,
    entries: &[(String, FailureProfile)],
) -> Result<(), StoreError> {
    fs::create_dir_all(root.join("segments"))?;
    let mut segments = BTreeMap::new();
    for (name, profile) in entries {
        let body = render_segment(name, profile)?;
        let file = format!("{name}.jsonl");
        write_atomic(&root.join("segments").join(&file), body.as_bytes())?;
        segments.insert(
            name.clone(),
            LegacyMeta {
                file,
                hash: format_hash(fnv1a64(body.as_bytes())),
                failures: profile.failures.len(),
                bytes: body.len() as u64,
            },
        );
    }
    let doc = IndexDoc {
        version: LEGACY_VERSION,
        segments,
    };
    let text = serde_json::to_string_pretty(&doc)?;
    write_atomic(&root.join("index.json"), text.as_bytes())
}
