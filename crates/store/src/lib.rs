//! `parbor-store`: the columnar profile storage engine behind the fleet
//! orchestrator and the `parbor-serve` query service.
//!
//! A store maps module names to [`FailureProfile`](parbor_core::FailureProfile)s
//! on disk, built for the fleet's access pattern: many independent
//! appends while a campaign runs, then bulk reads (snapshot compilation,
//! fleet-wide aggregation) once it settles.
//!
//! - **Columnar segments** ([`segment`]): profiles are packed column-wise
//!   (`PBSTSEG1` magic, varint + zigzag + bit-packed columns) inside
//!   checksummed frames, so a torn or bit-flipped record costs only the
//!   cells its damage covers.
//! - **Generational compaction** ([`ProfileStore::compact`]): appends land
//!   as single-record L0 segments; compaction merges everything into
//!   sorted, deduplicated (latest-write-wins) chunk files behind an atomic
//!   manifest swap. A crash mid-compaction recovers to exactly the pre- or
//!   post-compaction store.
//! - **Sharded index**: module lookups go through 16 hash-sharded index
//!   files loaded lazily, so a cold query touches one shard, not the
//!   whole fleet's index.
//! - **Streaming aggregation** ([`ProfileStore::aggregate`]): fleet-wide
//!   rollups (distance histograms, per-vendor failure rates) stream one
//!   segment at a time.
//! - **Transparent migration** ([`legacy`]): v1 JSONL stores open in
//!   place; the first compaction rewrites them columnar.
//!
//! The crate depends only on `parbor-core` (profile types) and
//! `parbor-obs` (metrics) — no I/O framework, no database.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
pub mod hash;
pub mod legacy;
pub mod segment;
mod store;
mod varint;

pub use aggregate::{AggregateBuilder, FleetAggregate, HistSummary, VendorRollup};
pub use hash::{fnv1a64, format_hash};
pub use store::{
    shard_file, shard_of, CompactPhase, CompactReport, GenSegmentMeta, GenerationMeta,
    ProfileStore, SegmentMeta, StoreStats, StoredProfile, CHUNK_RECORDS, COMPACTING_MARKER,
    SHARD_COUNT, STORE_VERSION,
};

use std::path::PathBuf;

/// Errors the store surfaces.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// On-disk state that does not parse or verify.
    Corrupt {
        /// The file the damage was found in.
        path: PathBuf,
        /// What exactly failed.
        detail: String,
    },
    /// A JSON document failed to serialize or deserialize.
    Serde(String),
    /// A caller-supplied name or parameter the store cannot accept.
    InvalidConfig(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Corrupt { path, detail } => {
                write!(f, "corrupt store state in {}: {detail}", path.display())
            }
            StoreError::Serde(msg) => write!(f, "store serialization error: {msg}"),
            StoreError::InvalidConfig(msg) => write!(f, "invalid store request: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<serde_json::Error> for StoreError {
    fn from(e: serde_json::Error) -> Self {
        StoreError::Serde(e.0.to_string())
    }
}
