//! Content hashing for segments, frames, and index shards.
//!
//! FNV-1a (64-bit) — not cryptographic, but exactly what torn-write and
//! bit-rot *detection* needs: fast, dependency-free, and stable across
//! platforms and processes (the store's byte-identity checks compare these
//! hashes between independent runs). The same function doubles as the
//! shard router: `fnv1a64(module) % SHARD_COUNT` places every module in a
//! stable index shard.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The 64-bit FNV-1a hash of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Renders a hash the way the store index records it (`fnv64:<16 hex>`).
pub fn format_hash(hash: u64) -> String {
    format!("fnv64:{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn format_is_stable() {
        assert_eq!(format_hash(0xdead_beef), "fnv64:00000000deadbeef");
    }
}
