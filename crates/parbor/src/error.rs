//! Error type for the PARBOR algorithm crate.

use std::error::Error;
use std::fmt;

use parbor_dram::DramError;

/// Errors reported by the PARBOR pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParborError {
    /// The underlying device rejected an operation.
    Device(DramError),
    /// The victim set is empty, so neighbor locations cannot be determined.
    NoVictims,
    /// The recursion converged on no distances (all filtered as noise).
    NoDistances,
    /// A configuration value was invalid.
    InvalidConfig(String),
}

impl fmt::Display for ParborError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParborError::Device(e) => write!(f, "device error: {e}"),
            ParborError::NoVictims => write!(f, "no data-dependent victims discovered"),
            ParborError::NoDistances => {
                write!(
                    f,
                    "recursion found no neighbor distances above the noise floor"
                )
            }
            ParborError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for ParborError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParborError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DramError> for ParborError {
    fn from(e: DramError) -> Self {
        ParborError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_errors_convert() {
        let e: ParborError = DramError::InvalidConfig("x".into()).into();
        assert!(matches!(e, ParborError::Device(_)));
        assert!(e.source().is_some());
    }

    #[test]
    fn display_is_informative() {
        assert!(ParborError::NoVictims.to_string().contains("victims"));
    }
}
