//! Step 5: neighbor-aware chip-wide testing (paper §5.2.5).
//!
//! Once the neighbor distances are known, every cell must be put into its
//! worst case: the cell charged while every cell at a neighbor distance is
//! discharged. Testing one bit at a time would waste the bus; instead,
//! positions that cannot interfere are tested in the same round. The pattern
//! repeats with a fixed *chunk* period (128 bits for all of the paper's
//! vendors, since every distance is within ±64), so scheduling reduces to
//! coloring the circulant conflict graph on chunk positions: positions `i`
//! and `j` conflict when `(i − j) mod chunk` hits a neighbor distance.
//!
//! Each color class becomes one round: victims are written `1` and the rest
//! of the row `0` (maximizing interference, including second-order window
//! coupling); the inverse round covers anti-cells. Our greedy coloring needs
//! no more rounds than the paper's hand scheduling (16–32 including
//! inverses) and often fewer; coverage is equivalent — every cell is a
//! victim exactly once per polarity.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use parbor_dram::{BitAddr, RowBits, RowId};
use parbor_hal::{RoundArena, RoundExecutor, RoundPlan, TestPort};
use parbor_obs::metrics;
use parbor_obs::RecorderHandle;

use crate::error::ParborError;

/// A schedule of parallel-victim rounds with a repeating chunk period.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundSchedule {
    chunk: usize,
    rounds: Vec<Vec<u32>>,
}

impl RoundSchedule {
    /// Builds a schedule protecting first- and higher-order neighborhoods
    /// (order 3 by default — see [`RoundSchedule::with_order`]).
    ///
    /// # Errors
    ///
    /// Returns [`ParborError::InvalidConfig`] if `distances` is empty or a
    /// distance is zero or at least half the row width.
    pub fn build(distances: &[i64], row_bits: usize) -> Result<Self, ParborError> {
        Self::with_order(distances, row_bits, 3)
    }

    /// Builds a schedule for the given neighbor distance magnitudes.
    ///
    /// The chunk is the smallest power of two at least twice the maximum
    /// distance (128 for every vendor in the paper). Conflicts are evaluated
    /// modulo the chunk so the pattern can repeat across the row without
    /// cross-chunk interference.
    ///
    /// `order` controls how far the worst-case guarantee reaches: two
    /// victims may not sit within any signed combination of up to `order`
    /// neighbor distances of each other. Order 1 guarantees only the
    /// immediate neighbors are opposite; higher orders additionally keep
    /// concurrent victims out of each other's second-order coupling windows
    /// (which real worst-case NPSF patterns require). For vendor A's
    /// distances this produces exactly the paper's 16 rounds per polarity.
    ///
    /// # Errors
    ///
    /// Returns [`ParborError::InvalidConfig`] if `distances` is empty, a
    /// distance is zero or at least half the row width, or `order` is zero.
    pub fn with_order(distances: &[i64], row_bits: usize, order: u32) -> Result<Self, ParborError> {
        if order == 0 {
            return Err(ParborError::InvalidConfig("order must be nonzero".into()));
        }
        if distances.is_empty() {
            return Err(ParborError::InvalidConfig(
                "cannot schedule with no neighbor distances".into(),
            ));
        }
        let mags: Vec<u64> = {
            let mut m: Vec<u64> = distances.iter().map(|d| d.unsigned_abs()).collect();
            m.sort_unstable();
            m.dedup();
            m
        };
        if mags[0] == 0 {
            return Err(ParborError::InvalidConfig(
                "neighbor distance 0 is meaningless".into(),
            ));
        }
        let dmax = *mags.last().expect("nonempty") as usize;
        if 2 * dmax >= row_bits {
            return Err(ParborError::InvalidConfig(format!(
                "distance {dmax} too large for row width {row_bits}"
            )));
        }
        // Separation set: every nonzero offset reachable as a signed sum of
        // up to `order` neighbor distances. These are the positions of a
        // victim's physical neighbors out to `order` hops, so concurrent
        // victims never contaminate each other's worst-case neighborhood.
        let mut reachable: HashSet<i64> = HashSet::new();
        reachable.insert(0);
        for _ in 0..order {
            let mut next = reachable.clone();
            for &r in &reachable {
                for &d in distances {
                    next.insert(r + d);
                }
            }
            reachable = next;
        }
        let sums: Vec<i64> = reachable.into_iter().filter(|&r| r != 0).collect();
        // The pattern repeats with the chunk period, so a reachable offset
        // that is a multiple of the chunk would alias a victim onto its own
        // neighborhood; grow the chunk until none does.
        let mut chunk = (2 * dmax).next_power_of_two();
        while chunk < row_bits && sums.iter().any(|&s| s % chunk as i64 == 0) {
            chunk *= 2;
        }
        let chunk = chunk.min(row_bits);
        let separation: HashSet<u64> = sums
            .iter()
            .map(|&s| s.rem_euclid(chunk as i64) as u64)
            .filter(|&s| s != 0)
            .collect();
        // Greedy sequential coloring of the circulant conflict graph.
        let conflict = |i: usize, j: usize| -> bool {
            let d = (i as i64 - j as i64).rem_euclid(chunk as i64) as u64;
            separation.contains(&d) || separation.contains(&(chunk as u64 - d))
        };
        let mut color = vec![usize::MAX; chunk];
        let mut n_colors = 0usize;
        for p in 0..chunk {
            let mut used = vec![false; n_colors + 1];
            for q in 0..chunk {
                if color[q] != usize::MAX && conflict(p, q) {
                    used[color[q]] = true;
                }
            }
            let c = (0..=n_colors)
                .find(|&c| !used[c])
                .expect("a free color always exists");
            color[p] = c;
            n_colors = n_colors.max(c + 1);
        }
        let mut rounds = vec![Vec::new(); n_colors];
        for (p, &c) in color.iter().enumerate() {
            rounds[c].push(p as u32);
        }
        Ok(RoundSchedule { chunk, rounds })
    }

    /// The repeating pattern period.
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// Number of rounds per polarity (colors of the conflict graph).
    pub fn rounds_per_polarity(&self) -> usize {
        self.rounds.len()
    }

    /// Victim chunk-positions of one round.
    pub fn victims(&self, round: usize) -> &[u32] {
        &self.rounds[round]
    }

    /// The row image of one round: victims `1`, everything else `0`
    /// (`invert` flips it for the anti-cell polarity pass).
    pub fn round_pattern(&self, round: usize, width: usize, invert: bool) -> RowBits {
        self.round_pattern_in(round, width, invert, &RoundArena::new())
    }

    /// [`round_pattern`](RoundSchedule::round_pattern) drawing the backing
    /// buffer from the arena pool.
    pub fn round_pattern_in(
        &self,
        round: usize,
        width: usize,
        invert: bool,
        arena: &RoundArena,
    ) -> RowBits {
        let mut data = arena.zeros(width);
        for &v in &self.rounds[round] {
            let mut p = v as usize;
            while p < width {
                data.set(p, true);
                p += self.chunk;
            }
        }
        if invert {
            data.invert();
        }
        data
    }

    /// Checks the two schedule invariants: every chunk position is a victim
    /// in exactly one round, and no round contains two conflicting victims.
    pub fn verify(&self, distances: &[i64]) -> bool {
        let mags: HashSet<u64> = distances.iter().map(|d| d.unsigned_abs()).collect();
        let mut seen = vec![0usize; self.chunk];
        for round in &self.rounds {
            for (a_i, &a) in round.iter().enumerate() {
                seen[a as usize] += 1;
                for &b in &round[a_i + 1..] {
                    let d = (i64::from(a) - i64::from(b)).rem_euclid(self.chunk as i64) as u64;
                    if mags.contains(&d) || mags.contains(&(self.chunk as u64 - d)) {
                        return false;
                    }
                }
            }
        }
        seen.iter().all(|&c| c == 1)
    }
}

/// The neighbor-aware chip-wide test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChipwideTest {
    schedule: RoundSchedule,
    rec: RecorderHandle,
}

impl ChipwideTest {
    /// Builds the test from the recursion's final distances.
    ///
    /// # Errors
    ///
    /// See [`RoundSchedule::build`].
    pub fn new(distances: &[i64], row_bits: usize) -> Result<Self, ParborError> {
        Ok(ChipwideTest {
            schedule: RoundSchedule::build(distances, row_bits)?,
            rec: RecorderHandle::null(),
        })
    }

    /// Builds the test from an explicit schedule (e.g. one built with a
    /// custom separation order via [`RoundSchedule::with_order`]).
    pub fn with_schedule(schedule: RoundSchedule) -> Self {
        ChipwideTest {
            schedule,
            rec: RecorderHandle::null(),
        }
    }

    /// Attaches a metrics recorder (`chipwide.*` counters).
    pub fn with_recorder(mut self, rec: RecorderHandle) -> Self {
        self.rec = rec;
        self
    }

    /// The underlying schedule.
    pub fn schedule(&self) -> &RoundSchedule {
        &self.schedule
    }

    /// Total rounds including the inverse-polarity pass.
    pub fn rounds(&self) -> usize {
        self.schedule.rounds_per_polarity() * 2
    }

    /// The full round batch — the true-cell polarity pass followed by the
    /// inverse pass, fixed up front and mutually independent.
    /// [`run`](ChipwideTest::run) submits the whole batch; a checkpointed
    /// scan ([`ScanMachine`](crate::ScanMachine)) re-derives it on resume
    /// and runs the remaining suffix.
    pub fn round_plans(&self, units: u32, rows: &[RowId], width: usize) -> Vec<RoundPlan> {
        let arena = RoundArena::new();
        (0..self.rounds())
            .map(|i| self.round_plan_in(i, units, rows, width, &arena))
            .collect()
    }

    /// Builds round `index` of [`round_plans`](ChipwideTest::round_plans)
    /// alone, drawing row images from the arena pool — a checkpointed scan
    /// resumes mid-batch without materializing the prefix it already ran.
    pub fn round_plan_in(
        &self,
        index: usize,
        units: u32,
        rows: &[RowId],
        width: usize,
        arena: &RoundArena,
    ) -> RoundPlan {
        let per = self.schedule.rounds_per_polarity();
        let image = self
            .schedule
            .round_pattern_in(index % per, width, index >= per, arena);
        let plan = RoundPlan::broadcast_in(units, rows, arena, |_| {
            image.clone_into_words(arena.take_words())
        });
        arena.recycle_row(image);
        plan
    }

    /// Runs the full test over the given rows of every unit, returning every
    /// distinct failing bit.
    ///
    /// # Errors
    ///
    /// Propagates device errors from the port.
    pub fn run<P: TestPort + ?Sized>(
        &self,
        port: &mut P,
        rows: &[RowId],
    ) -> Result<ChipwideOutcome, ParborError> {
        let width = port.geometry().cols_per_row as usize;
        let units = port.units();
        // The whole schedule is fixed up front — both polarities — so it is
        // submitted to the engine as one independent batch, built from (and
        // recycled back into) one shared arena.
        let arena = RoundArena::new();
        let plans: Vec<RoundPlan> = (0..self.rounds())
            .map(|i| self.round_plan_in(i, units, rows, width, &arena))
            .collect();
        let mut exec = RoundExecutor::new(port)
            .with_recorder(self.rec.clone())
            .with_arena(arena)
            .count_rounds_as(metrics::chipwide::ROUNDS)
            .observe_flips_as(metrics::chipwide::ROUND_FLIPS);
        let mut failing: HashMap<(u32, BitAddr), bool> = HashMap::new();
        for flips in exec.run_batch(plans)? {
            for flip in flips {
                failing
                    .entry((flip.unit, flip.flip.addr))
                    .or_insert(flip.flip.expected);
            }
        }
        let rounds_run = exec.rounds_executed();
        self.rec
            .incr(metrics::chipwide::FAILURES, failing.len() as u64);
        Ok(ChipwideOutcome {
            rounds: rounds_run,
            failing,
        })
    }
}

/// Result of a chip-wide test: the distinct failing bits and the rounds
/// spent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChipwideOutcome {
    /// Test rounds executed (including inverse passes).
    pub rounds: usize,
    /// Distinct failing bits, keyed by (unit, address); the value is the
    /// data the cell held when it failed (its charged polarity) — the input
    /// DC-REF's content check needs.
    pub failing: HashMap<(u32, BitAddr), bool>,
}

impl ChipwideOutcome {
    /// Number of distinct failing bits.
    pub fn failure_count(&self) -> usize {
        self.failing.len()
    }

    /// The failing bits as a set of (unit, address) keys.
    pub fn failing_bits(&self) -> HashSet<(u32, BitAddr)> {
        self.failing.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_covers_and_separates_vendor_a() {
        let d = [-48, -16, -8, 8, 16, 48];
        let s = RoundSchedule::build(&d, 8192).unwrap();
        assert_eq!(s.chunk(), 128);
        assert!(s.verify(&d));
        // Paper's hand schedule uses 16 rounds/polarity; greedy must not be
        // worse.
        assert!(
            s.rounds_per_polarity() <= 16,
            "rounds = {}",
            s.rounds_per_polarity()
        );
    }

    #[test]
    fn schedule_covers_and_separates_vendor_b() {
        let d = [-64, -1, 1, 64];
        let s = RoundSchedule::build(&d, 8192).unwrap();
        // 64 + 64 = 128 would alias a victim onto its own second-order
        // neighborhood at chunk 128, so the chunk grows to 256.
        assert_eq!(s.chunk(), 256);
        assert!(s.verify(&d));
        assert!(s.rounds_per_polarity() <= 16);
    }

    #[test]
    fn schedule_covers_and_separates_vendor_c() {
        let d = [-49, -33, -16, 16, 33, 49];
        let s = RoundSchedule::build(&d, 8192).unwrap();
        assert_eq!(s.chunk(), 128);
        assert!(s.verify(&d));
        // Vendor C's dense third-order sums need more colors than the
        // paper's first-order-only schedule (8/polarity).
        assert!(
            s.rounds_per_polarity() <= 24,
            "rounds = {}",
            s.rounds_per_polarity()
        );
        // At the paper's first-order separation, the count matches Fig's 8.
        let first = RoundSchedule::with_order(&d, 8192, 1).unwrap();
        assert!(first.rounds_per_polarity() <= 8);
    }

    #[test]
    fn round_pattern_places_victims_periodically() {
        let s = RoundSchedule::build(&[8, -8], 1024).unwrap();
        let image = s.round_pattern(0, 1024, false);
        let victims = s.victims(0);
        for &v in victims {
            let mut p = v as usize;
            while p < 1024 {
                assert!(image.get(p), "victim at {p} not set");
                p += s.chunk();
            }
        }
        let inv = s.round_pattern(0, 1024, true);
        assert_eq!(image.count_ones() + inv.count_ones(), 1024);
    }

    #[test]
    fn every_position_is_victim_once() {
        let s = RoundSchedule::build(&[-3, 3, 7, -7], 256).unwrap();
        let mut count = vec![0; s.chunk()];
        for r in 0..s.rounds_per_polarity() {
            for &v in s.victims(r) {
                count[v as usize] += 1;
            }
        }
        assert!(count.iter().all(|&c| c == 1));
    }

    #[test]
    fn invalid_distance_sets_rejected() {
        assert!(RoundSchedule::build(&[], 8192).is_err());
        assert!(RoundSchedule::build(&[0], 8192).is_err());
        assert!(RoundSchedule::build(&[5000], 8192).is_err());
    }

    #[test]
    fn victims_in_round_zero_all_get_worst_case() {
        // In any round, every victim's ±d positions must be zero in the
        // round pattern (worst-case guarantee).
        let d = [-64i64, -1, 1, 64];
        let s = RoundSchedule::build(&d, 8192).unwrap();
        for r in 0..s.rounds_per_polarity() {
            let image = s.round_pattern(r, 8192, false);
            for &v in s.victims(r) {
                let mut p = v as usize;
                while p < 8192 {
                    for &dist in &d {
                        let n = p as i64 + dist;
                        if n >= 0 && (n as usize) < 8192 {
                            assert!(
                                !image.get(n as usize),
                                "round {r}: neighbor of victim {p} at {n} not opposite"
                            );
                        }
                    }
                    p += s.chunk();
                }
            }
        }
    }
}
