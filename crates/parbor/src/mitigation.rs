//! From detection to deployment: turning PARBOR's findings into the
//! system-level mitigations the paper's introduction enumerates — refresh
//! management (DC-REF/RAIDR row groups), reliability guardbands (ECC hazard
//! words), and avoidance (retiring the worst pages).
//!
//! The [`FailureDirectory`] is the persistent artifact a deployment keeps
//! after a test campaign: every failing bit with its polarity, queryable by
//! row, plus the discovered neighbor distances. A [`MitigationPlan`] is a
//! policy-ready digest of it.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use parbor_dram::ecc::EccAnalysis;
use parbor_dram::RowId;

use crate::chipwide::ChipwideOutcome;
use crate::content::{DcRefMonitor, VulnerableCell};
use crate::error::ParborError;
use crate::victim::VictimKey;

/// Persistent registry of a test campaign's findings.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FailureDirectory {
    distances: Vec<i64>,
    /// Failing cells per (unit, row), sorted for deterministic output.
    /// Serialized as a sequence of entries (JSON maps need string keys).
    #[serde(with = "rows_as_seq")]
    rows: BTreeMap<(u32, u32, u32), Vec<VulnerableCell>>,
}

mod rows_as_seq {
    use super::VulnerableCell;
    use serde::{Deserialize, Serialize, Value};
    use std::collections::BTreeMap;

    type Rows = BTreeMap<(u32, u32, u32), Vec<VulnerableCell>>;

    pub fn to_value(rows: &Rows) -> Value {
        let seq: Vec<((u32, u32, u32), Vec<VulnerableCell>)> = rows
            .iter()
            .map(|(key, cells)| (*key, cells.clone()))
            .collect();
        seq.to_value()
    }

    pub fn from_value(value: &Value) -> Result<Rows, serde::Error> {
        let seq = <Vec<((u32, u32, u32), Vec<VulnerableCell>)>>::from_value(value)?;
        Ok(seq.into_iter().collect())
    }
}

impl FailureDirectory {
    /// Builds the directory from a chip-wide test outcome.
    pub fn from_chipwide(outcome: &ChipwideOutcome, distances: &[i64]) -> Self {
        let mut rows: BTreeMap<(u32, u32, u32), Vec<VulnerableCell>> = BTreeMap::new();
        for (&(unit, addr), &fail_value) in &outcome.failing {
            rows.entry((unit, addr.bank, addr.row))
                .or_default()
                .push(VulnerableCell {
                    col: addr.col,
                    fail_value,
                });
        }
        for cells in rows.values_mut() {
            cells.sort_by_key(|c| c.col);
        }
        FailureDirectory {
            distances: distances.to_vec(),
            rows,
        }
    }

    /// The discovered neighbor distances.
    pub fn distances(&self) -> &[i64] {
        &self.distances
    }

    /// Number of rows with at least one failing cell.
    pub fn affected_rows(&self) -> usize {
        self.rows.len()
    }

    /// Total failing cells.
    pub fn failing_cells(&self) -> usize {
        self.rows.values().map(Vec::len).sum()
    }

    /// The failing cells of one row, sorted by column (empty if clean).
    pub fn cells_of(&self, unit: u32, row: RowId) -> &[VulnerableCell] {
        self.rows
            .get(&(unit, row.bank, row.row))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterator over affected rows as `(unit, row, cells)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, RowId, &[VulnerableCell])> + '_ {
        self.rows
            .iter()
            .map(|(&(unit, bank, row), cells)| (unit, RowId::new(bank, row), cells.as_slice()))
    }

    /// Builds a DC-REF content monitor over this directory.
    ///
    /// # Errors
    ///
    /// See [`DcRefMonitor::new`].
    pub fn dcref_monitor(&self) -> Result<DcRefMonitor, ParborError> {
        let mut monitor = DcRefMonitor::new(&self.distances)?;
        for (unit, row, cells) in self.iter() {
            for &cell in cells {
                monitor.add_cell(unit, row, cell);
            }
        }
        Ok(monitor)
    }

    /// Digests the directory into a deployment plan.
    ///
    /// `retire_threshold` is the failing-cell count at which a row is
    /// recommended for page retirement rather than refresh management
    /// (heavily faulty rows waste fast-refresh slots and ECC margin).
    pub fn plan(&self, retire_threshold: usize) -> MitigationPlan {
        let mut plan = MitigationPlan::default();
        for (unit, row, cells) in self.iter() {
            let key = VictimKey { unit, row };
            if cells.len() >= retire_threshold {
                plan.retire_pages.insert(key);
                continue; // retired rows need no refresh management
            }
            plan.fast_refresh_rows.insert(key);
            let cols: Vec<u32> = cells.iter().map(|c| c.col).collect();
            let ecc = EccAnalysis::of_row_failures(&cols);
            plan.ecc.merge(&ecc);
            if ecc.uncorrectable_words > 0 {
                plan.ecc_hazard_rows.insert(key);
            }
        }
        plan
    }
}

/// Policy-ready digest of a [`FailureDirectory`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MitigationPlan {
    /// Rows to keep in the fast (64 ms) refresh group — DC-REF then demotes
    /// them dynamically while their content is benign.
    pub fast_refresh_rows: BTreeSet<VictimKey>,
    /// Rows whose failing cells cluster ≥ 2 per 64-bit word: SECDED cannot
    /// protect them; they need scrubbing priority or stronger codes.
    pub ecc_hazard_rows: BTreeSet<VictimKey>,
    /// Rows recommended for OS page retirement.
    pub retire_pages: BTreeSet<VictimKey>,
    /// Aggregate ECC word analysis over managed (non-retired) rows.
    pub ecc: EccAnalysis,
}

impl MitigationPlan {
    /// Total rows under some form of management.
    pub fn managed_rows(&self) -> usize {
        self.fast_refresh_rows.len() + self.retire_pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Parbor, ParborConfig};
    use parbor_dram::{ChipGeometry, DramChip, Vendor};

    fn directory() -> FailureDirectory {
        let mut chip =
            DramChip::new(ChipGeometry::new(1, 64, 8192).unwrap(), Vendor::A, 21).unwrap();
        let report = Parbor::new(ParborConfig::default()).run(&mut chip).unwrap();
        FailureDirectory::from_chipwide(&report.chipwide, report.distances())
    }

    #[test]
    fn directory_round_trips_findings() {
        let dir = directory();
        assert!(dir.affected_rows() > 0);
        assert!(dir.failing_cells() >= dir.affected_rows());
        assert_eq!(dir.distances(), Vendor::A.paper_distances());
        // cells_of agrees with iter().
        let (unit, row, cells) = dir.iter().next().unwrap();
        assert_eq!(dir.cells_of(unit, row), cells);
        // Unknown rows are clean.
        assert!(dir.cells_of(7, RowId::new(3, 999)).is_empty());
    }

    #[test]
    fn cells_are_sorted_by_column() {
        let dir = directory();
        for (_, _, cells) in dir.iter() {
            assert!(cells.windows(2).all(|w| w[0].col <= w[1].col));
        }
    }

    #[test]
    fn plan_partitions_rows() {
        let dir = directory();
        let plan = dir.plan(1_000_000); // nothing retired
        assert_eq!(plan.fast_refresh_rows.len(), dir.affected_rows());
        assert!(plan.retire_pages.is_empty());

        let aggressive = dir.plan(1); // everything retired
        assert_eq!(aggressive.retire_pages.len(), dir.affected_rows());
        assert!(aggressive.fast_refresh_rows.is_empty());
        // Retired rows contribute no ECC words.
        assert_eq!(
            aggressive.ecc.correctable_words + aggressive.ecc.uncorrectable_words,
            0
        );
    }

    #[test]
    fn hazard_rows_have_uncorrectable_words() {
        let dir = directory();
        let plan = dir.plan(usize::MAX);
        for key in &plan.ecc_hazard_rows {
            let cols: Vec<u32> = dir
                .cells_of(key.unit, key.row)
                .iter()
                .map(|c| c.col)
                .collect();
            let ecc = EccAnalysis::of_row_failures(&cols);
            assert!(ecc.uncorrectable_words > 0);
        }
        assert!(plan.ecc_hazard_rows.len() <= plan.fast_refresh_rows.len());
    }

    #[test]
    fn dcref_monitor_matches_directory() {
        let dir = directory();
        let monitor = dir.dcref_monitor().unwrap();
        assert_eq!(monitor.vulnerable_row_count(), dir.affected_rows());
        assert_eq!(monitor.cell_count(), dir.failing_cells());
    }
}
