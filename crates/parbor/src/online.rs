//! Online (in-the-field) testing: the paper's deployment model (§1, §3).
//!
//! A production system cannot run 100+ back-to-back test rounds — memory is
//! live. [`OnlineTester`] packages the full PARBOR pipeline as a resumable
//! state machine: each [`step`](OnlineTester::step) runs exactly one
//! write→wait→read round (one maintenance slot, ~414 ms of wall-clock on
//! real hardware per the appendix) and returns control. Interleaved
//! execution produces byte-identical results to the one-shot pipeline —
//! the rounds themselves are the unit of isolation.
//!
//! ```text
//! Discovery(10 rounds) → Recursion(66-90) → Chipwide(28-40) → Done
//! ```

use parbor_dram::RowId;
use parbor_hal::TestPort;
use serde::{Deserialize, Serialize};

use crate::error::ParborError;
use crate::pipeline::{Parbor, ParborConfig, ParborReport};
use crate::recursion::{NeighborRecursion, RecursionOutcome};
use crate::victim::VictimSet;

/// Which phase the online tester is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OnlinePhase {
    /// Running the 10 victim-discovery rounds.
    Discovery,
    /// Running the recursive neighbor search.
    Recursion,
    /// Running the neighbor-aware chip-wide test.
    Chipwide,
    /// Finished; the report is available.
    Done,
}

/// Progress summary after a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OnlineProgress {
    /// Phase after the step.
    pub phase: OnlinePhase,
    /// Rounds executed so far, across phases.
    pub rounds_done: usize,
}

/// A resumable PARBOR pipeline: one test round per step.
///
/// The recursion's rounds depend on results of earlier rounds (kept regions
/// feed the next level), so phases internally buffer work; `step` always
/// costs at most one device round.
///
/// # Examples
///
/// ```
/// use parbor_core::{OnlinePhase, OnlineTester, ParborConfig};
/// use parbor_dram::{ChipGeometry, DramChip, Vendor};
///
/// # fn main() -> Result<(), parbor_core::ParborError> {
/// let mut chip = DramChip::new(ChipGeometry::new(1, 64, 8192)?, Vendor::B, 7)?;
/// let mut tester = OnlineTester::new(ParborConfig::default());
/// // One maintenance slot at a time, until done.
/// while tester.phase() != OnlinePhase::Done {
///     tester.step(&mut chip)?;
/// }
/// let report = tester.into_report().expect("finished");
/// assert_eq!(report.distances(), &[-64, -1, 1, 64]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct OnlineTester {
    config: ParborConfig,
    phase: OnlinePhase,
    rounds_done: usize,
    // Discovery runs round-by-round through the scout's pattern list.
    discovery_round: usize,
    discovery_flips: std::collections::HashMap<(u32, parbor_dram::BitAddr), (usize, bool)>,
    victims: Option<VictimSet>,
    recursion: Option<RecursionOutcome>,
    report: Option<ParborReport>,
}

impl OnlineTester {
    /// Creates an online tester.
    pub fn new(config: ParborConfig) -> Self {
        OnlineTester {
            config,
            phase: OnlinePhase::Discovery,
            rounds_done: 0,
            discovery_round: 0,
            discovery_flips: std::collections::HashMap::new(),
            victims: None,
            recursion: None,
            report: None,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> OnlinePhase {
        self.phase
    }

    /// Rounds executed so far.
    pub fn rounds_done(&self) -> usize {
        self.rounds_done
    }

    /// Victim set, once discovery completed.
    pub fn victims(&self) -> Option<&VictimSet> {
        self.victims.as_ref()
    }

    /// Recursion outcome, once the recursion completed.
    pub fn recursion(&self) -> Option<&RecursionOutcome> {
        self.recursion.as_ref()
    }

    /// Consumes the tester, returning the final report if finished.
    pub fn into_report(self) -> Option<ParborReport> {
        self.report
    }

    fn rows_for<P: TestPort + ?Sized>(&self, port: &P) -> Vec<RowId> {
        match &self.config.rows {
            Some(rows) => rows.clone(),
            None => port.geometry().rows().collect(),
        }
    }

    /// Advances the pipeline by one maintenance slot (at most one device
    /// round; phase transitions between buffered phases are free).
    ///
    /// # Errors
    ///
    /// Propagates device and pipeline errors; after an error the tester
    /// stays in its current phase and may be retried.
    pub fn step<P: TestPort + ?Sized>(
        &mut self,
        port: &mut P,
    ) -> Result<OnlineProgress, ParborError> {
        match self.phase {
            OnlinePhase::Discovery => self.step_discovery(port)?,
            OnlinePhase::Recursion => self.step_recursion(port)?,
            OnlinePhase::Chipwide => self.step_chipwide(port)?,
            OnlinePhase::Done => {}
        }
        Ok(OnlineProgress {
            phase: self.phase,
            rounds_done: self.rounds_done,
        })
    }

    /// Runs the remaining rounds to completion (equivalent to repeatedly
    /// calling [`step`](OnlineTester::step)).
    ///
    /// # Errors
    ///
    /// Propagates the first error from a step.
    pub fn run_to_completion<P: TestPort + ?Sized>(
        &mut self,
        port: &mut P,
    ) -> Result<(), ParborError> {
        while self.phase != OnlinePhase::Done {
            self.step(port)?;
        }
        Ok(())
    }

    fn step_discovery<P: TestPort + ?Sized>(&mut self, port: &mut P) -> Result<(), ParborError> {
        use parbor_dram::PatternSet;
        use parbor_hal::{RoundExecutor, RoundPlan};
        let patterns = PatternSet::discovery(self.config.discovery_seed);
        let total = patterns.round_count();
        let pattern = &patterns.patterns()[self.discovery_round / 2];
        let invert = self.discovery_round % 2 == 1;
        let rows = self.rows_for(port);
        let width = port.geometry().cols_per_row as usize;
        let units = port.units();
        let plan = RoundPlan::broadcast(units, &rows, |row| {
            if invert {
                pattern.inverse().row_bits(row.row, width)
            } else {
                pattern.row_bits(row.row, width)
            }
        });
        for flip in RoundExecutor::new(port).run(plan)? {
            self.discovery_flips
                .entry((flip.unit, flip.flip.addr))
                .or_insert((0, flip.flip.expected))
                .0 += 1;
        }
        self.discovery_round += 1;
        self.rounds_done += 1;
        if self.discovery_round == total {
            let victims: Vec<_> = self
                .discovery_flips
                .drain()
                .filter(|&(_, (fails, _))| fails >= 1 && fails < total)
                .map(|((unit, addr), (_, fail_value))| crate::victim::Victim {
                    unit,
                    row: addr.row(),
                    col: addr.col,
                    fail_value,
                })
                .collect();
            let set = VictimSet::from_victims(victims);
            if set.is_empty() {
                return Err(ParborError::NoVictims);
            }
            self.victims = Some(set);
            self.phase = OnlinePhase::Recursion;
        }
        Ok(())
    }

    fn step_recursion<P: TestPort + ?Sized>(&mut self, port: &mut P) -> Result<(), ParborError> {
        // The recursion's per-round bookkeeping lives in NeighborRecursion;
        // its rounds are level-synchronous, so the finest safe online unit
        // is one *level*... except levels are cheap to buffer: we run the
        // whole recursion here but bill its rounds one step at a time via
        // rounds_done, keeping step() cost amortized. In deployment the
        // driver would split at round granularity via a yielding TestPort.
        let victims = self
            .victims
            .as_ref()
            .expect("victims exist in Recursion phase")
            .select_for_recursion(self.config.sample_limit);
        let outcome = NeighborRecursion::new(self.config.recursion.clone()).run(port, &victims)?;
        self.rounds_done += outcome.total_tests;
        self.recursion = Some(outcome);
        self.phase = OnlinePhase::Chipwide;
        Ok(())
    }

    fn step_chipwide<P: TestPort + ?Sized>(&mut self, port: &mut P) -> Result<(), ParborError> {
        let recursion = self
            .recursion
            .clone()
            .expect("recursion exists in Chipwide phase");
        let parbor = Parbor::new(self.config.clone());
        let chipwide = parbor.chip_test(port, &recursion.distances)?;
        self.rounds_done += chipwide.rounds;
        let victims = self.victims.take().expect("victims exist");
        self.report = Some(ParborReport {
            victim_count: victims.len(),
            discovery_rounds: self.discovery_round,
            recursion,
            chipwide,
        });
        self.phase = OnlinePhase::Done;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbor_dram::{ChipGeometry, DramChip, Vendor};

    fn chip(seed: u64) -> DramChip {
        DramChip::new(ChipGeometry::new(1, 96, 8192).unwrap(), Vendor::A, seed).unwrap()
    }

    #[test]
    fn stepped_run_matches_oneshot() {
        let mut online_chip = chip(44);
        let mut tester = OnlineTester::new(ParborConfig::default());
        tester.run_to_completion(&mut online_chip).unwrap();
        let online = tester.into_report().unwrap();

        let mut oneshot_chip = chip(44);
        let oneshot = Parbor::new(ParborConfig::default())
            .run(&mut oneshot_chip)
            .unwrap();

        assert_eq!(online.distances(), oneshot.distances());
        assert_eq!(online.victim_count, oneshot.victim_count);
        assert_eq!(online.failure_count(), oneshot.failure_count());
    }

    #[test]
    fn discovery_advances_one_round_per_step() {
        let mut c = chip(45);
        let mut tester = OnlineTester::new(ParborConfig::default());
        for expected in 1..=9usize {
            let p = tester.step(&mut c).unwrap();
            assert_eq!(p.rounds_done, expected);
            assert_eq!(p.phase, OnlinePhase::Discovery);
            assert_eq!(c.rounds_run() as usize, expected);
        }
        let p = tester.step(&mut c).unwrap();
        assert_eq!(p.rounds_done, 10);
        assert_eq!(p.phase, OnlinePhase::Recursion);
        assert!(tester.victims().is_some());
    }

    #[test]
    fn phases_progress_in_order() {
        let mut c = chip(46);
        let mut tester = OnlineTester::new(ParborConfig::default());
        let mut seen = vec![tester.phase()];
        while tester.phase() != OnlinePhase::Done {
            tester.step(&mut c).unwrap();
            if *seen.last().unwrap() != tester.phase() {
                seen.push(tester.phase());
            }
        }
        assert_eq!(
            seen,
            vec![
                OnlinePhase::Discovery,
                OnlinePhase::Recursion,
                OnlinePhase::Chipwide,
                OnlinePhase::Done
            ]
        );
        assert!(tester.rounds_done() >= 100);
    }

    #[test]
    fn step_after_done_is_a_no_op() {
        let mut c = chip(47);
        let mut tester = OnlineTester::new(ParborConfig::default());
        tester.run_to_completion(&mut c).unwrap();
        let rounds = tester.rounds_done();
        let p = tester.step(&mut c).unwrap();
        assert_eq!(p.phase, OnlinePhase::Done);
        assert_eq!(p.rounds_done, rounds);
    }
}
