//! The PARBOR → DC-REF bridge (paper §8).
//!
//! DC-REF refreshes a row at the fast rate *only while its data content
//! matches the worst-case pattern* of some vulnerable cell in it. PARBOR
//! supplies exactly the two inputs that check needs: where the vulnerable
//! cells are (the chip-wide test's failing bits) and what their worst case
//! looks like (the failing polarity plus the neighbor distances). This
//! module packages them as a [`DcRefMonitor`] — the model of the content
//! check DC-REF hardware performs on every write.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use parbor_dram::{RowBits, RowId};

use crate::chipwide::ChipwideOutcome;
use crate::error::ParborError;
use crate::victim::VictimKey;

/// A vulnerable cell as DC-REF tracks it: its column and the data value
/// under which it fails (its charged polarity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VulnerableCell {
    /// System column of the cell.
    pub col: u32,
    /// The data value that charges (and can therefore lose) the cell.
    pub fail_value: bool,
}

/// Checks row contents against the worst-case coupling condition of the
/// rows' vulnerable cells.
///
/// # Examples
///
/// ```
/// use parbor_core::{DcRefMonitor, VulnerableCell};
/// use parbor_dram::{RowBits, RowId};
///
/// # fn main() -> Result<(), parbor_core::ParborError> {
/// let mut monitor = DcRefMonitor::new(&[-2, 2])?;
/// monitor.add_cell(0, RowId::new(0, 7), VulnerableCell { col: 10, fail_value: true });
///
/// // Worst case: the cell holds its failing value and both neighbors the
/// // opposite — this row must stay on the fast refresh rate.
/// let mut hot = RowBits::ones(32);
/// hot.set(8, false);
/// hot.set(12, false);
/// assert!(monitor.row_needs_fast_refresh(0, RowId::new(0, 7), &hot));
///
/// // Benign content: neighbors hold the same value, no interference.
/// let cold = RowBits::ones(32);
/// assert!(!monitor.row_needs_fast_refresh(0, RowId::new(0, 7), &cold));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DcRefMonitor {
    distances: Vec<i64>,
    cells: HashMap<VictimKey, Vec<VulnerableCell>>,
}

impl DcRefMonitor {
    /// Creates a monitor for the given neighbor distances.
    ///
    /// # Errors
    ///
    /// Returns [`ParborError::InvalidConfig`] if `distances` is empty or
    /// contains zero.
    pub fn new(distances: &[i64]) -> Result<Self, ParborError> {
        if distances.is_empty() || distances.contains(&0) {
            return Err(ParborError::InvalidConfig(
                "neighbor distances must be nonempty and nonzero".into(),
            ));
        }
        Ok(DcRefMonitor {
            distances: distances.to_vec(),
            cells: HashMap::new(),
        })
    }

    /// Builds the monitor straight from a chip-wide test outcome: every
    /// failing bit becomes a tracked vulnerable cell with its observed
    /// failing polarity.
    ///
    /// # Errors
    ///
    /// See [`DcRefMonitor::new`].
    pub fn from_chipwide(
        outcome: &ChipwideOutcome,
        distances: &[i64],
    ) -> Result<Self, ParborError> {
        let mut monitor = Self::new(distances)?;
        for (&(unit, addr), &fail_value) in &outcome.failing {
            monitor.add_cell(
                unit,
                addr.row(),
                VulnerableCell {
                    col: addr.col,
                    fail_value,
                },
            );
        }
        Ok(monitor)
    }

    /// Registers one vulnerable cell.
    pub fn add_cell(&mut self, unit: u32, row: RowId, cell: VulnerableCell) {
        self.cells
            .entry(VictimKey { unit, row })
            .or_default()
            .push(cell);
    }

    /// The tracked neighbor distances.
    pub fn distances(&self) -> &[i64] {
        &self.distances
    }

    /// Number of rows containing at least one vulnerable cell — RAIDR would
    /// refresh all of these fast, unconditionally.
    pub fn vulnerable_row_count(&self) -> usize {
        self.cells.len()
    }

    /// Total tracked vulnerable cells.
    pub fn cell_count(&self) -> usize {
        self.cells.values().map(Vec::len).sum()
    }

    /// The DC-REF write-path check: does this row content put any of the
    /// row's vulnerable cells into its worst case (cell charged, every
    /// existing neighbor-distance position opposite)?
    ///
    /// Rows with no vulnerable cells never need the fast rate.
    pub fn row_needs_fast_refresh(&self, unit: u32, row: RowId, data: &RowBits) -> bool {
        let Some(cells) = self.cells.get(&VictimKey { unit, row }) else {
            return false;
        };
        cells.iter().any(|cell| {
            if data.get(cell.col as usize) != cell.fail_value {
                return false; // cell not charged: cannot lose data
            }
            let mut any_neighbor = false;
            let all_opposite = self.distances.iter().all(|&d| {
                let n = i64::from(cell.col) + d;
                if n < 0 || n as usize >= data.len() {
                    return true; // off-row positions cannot interfere
                }
                any_neighbor = true;
                data.get(n as usize) != cell.fail_value
            });
            any_neighbor && all_opposite
        })
    }

    /// Fraction of vulnerable rows whose content (supplied by `content`)
    /// currently matches the worst case — the paper's "2.7 % on average"
    /// statistic for DC-REF versus RAIDR's fixed 16.4 %.
    pub fn hot_fraction(&self, mut content: impl FnMut(u32, RowId) -> RowBits) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        let hot = self
            .cells
            .keys()
            .filter(|key| {
                let data = content(key.unit, key.row);
                self.row_needs_fast_refresh(key.unit, key.row, &data)
            })
            .count();
        hot as f64 / self.cells.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbor_dram::PatternKind;

    fn monitor_with(cell: VulnerableCell) -> DcRefMonitor {
        let mut m = DcRefMonitor::new(&[-2, 2]).unwrap();
        m.add_cell(0, RowId::new(0, 0), cell);
        m
    }

    #[test]
    fn worst_case_content_is_hot() {
        let m = monitor_with(VulnerableCell {
            col: 10,
            fail_value: true,
        });
        let mut data = RowBits::ones(64);
        data.set(8, false);
        data.set(12, false);
        assert!(m.row_needs_fast_refresh(0, RowId::new(0, 0), &data));
    }

    #[test]
    fn partial_interference_is_cold() {
        let m = monitor_with(VulnerableCell {
            col: 10,
            fail_value: true,
        });
        // Only one neighbor opposite: the worst case needs both.
        let mut data = RowBits::ones(64);
        data.set(8, false);
        assert!(!m.row_needs_fast_refresh(0, RowId::new(0, 0), &data));
    }

    #[test]
    fn uncharged_cell_is_cold() {
        let m = monitor_with(VulnerableCell {
            col: 10,
            fail_value: true,
        });
        // Cell holds 0 (discharged for a true cell): nothing to lose.
        let mut data = RowBits::zeros(64);
        data.set(8, true);
        data.set(12, true);
        assert!(!m.row_needs_fast_refresh(0, RowId::new(0, 0), &data));
    }

    #[test]
    fn anti_cell_polarity_respected() {
        // fail_value = false: the cell is charged when holding 0.
        let m = monitor_with(VulnerableCell {
            col: 10,
            fail_value: false,
        });
        let mut data = RowBits::zeros(64);
        data.set(8, true);
        data.set(12, true);
        assert!(m.row_needs_fast_refresh(0, RowId::new(0, 0), &data));
    }

    #[test]
    fn untracked_rows_never_hot() {
        let m = monitor_with(VulnerableCell {
            col: 10,
            fail_value: true,
        });
        let data = RowBits::zeros(64);
        assert!(!m.row_needs_fast_refresh(0, RowId::new(0, 9), &data));
        assert!(!m.row_needs_fast_refresh(1, RowId::new(0, 0), &data));
    }

    #[test]
    fn edge_cells_use_existing_neighbors_only() {
        let m = monitor_with(VulnerableCell {
            col: 1,
            fail_value: true,
        });
        // col 1 with distances ±2: left neighbor (-1) is off-row; only +3
        // exists... (1 - 2 = -1 < 0, 1 + 2 = 3).
        let mut data = RowBits::ones(8);
        data.set(3, false);
        assert!(m.row_needs_fast_refresh(0, RowId::new(0, 0), &data));
    }

    #[test]
    fn hot_fraction_counts_matching_rows() {
        let mut m = DcRefMonitor::new(&[-1, 1]).unwrap();
        for r in 0..4 {
            m.add_cell(
                0,
                RowId::new(0, r),
                VulnerableCell {
                    col: 5,
                    fail_value: true,
                },
            );
        }
        // Rows 0 and 2 hold the worst case; 1 and 3 hold solid ones.
        let frac = m.hot_fraction(|_, row| {
            if row.row % 2 == 0 {
                let mut d = RowBits::ones(16);
                d.set(4, false);
                d.set(6, false);
                d
            } else {
                RowBits::ones(16)
            }
        });
        assert!((frac - 0.5).abs() < 1e-12);
        assert_eq!(m.vulnerable_row_count(), 4);
        assert_eq!(m.cell_count(), 4);
    }

    #[test]
    fn random_content_rarely_matches() {
        // With distances ±1 and ±64, a random row matches a given cell's
        // worst case with probability 2^-5; across many rows the hot
        // fraction should be well below RAIDR's "always hot".
        let mut m = DcRefMonitor::new(&[-64, -1, 1, 64]).unwrap();
        for r in 0..512 {
            m.add_cell(
                0,
                RowId::new(0, r),
                VulnerableCell {
                    col: 100 + r % 64,
                    fail_value: true,
                },
            );
        }
        let frac = m.hot_fraction(|_, row| PatternKind::Random { seed: 9 }.row_bits(row.row, 8192));
        assert!(frac < 0.15, "frac = {frac}");
        assert!(frac > 0.0, "some rows should match by chance");
    }

    #[test]
    fn invalid_distances_rejected() {
        assert!(DcRefMonitor::new(&[]).is_err());
        assert!(DcRefMonitor::new(&[0]).is_err());
    }
}
