//! # parbor-core — PARBOR: parallel recursive neighbor testing
//!
//! A reproduction of *PARBOR: An Efficient System-Level Technique to Detect
//! Data-Dependent Failures in DRAM* (Khan, Lee, Mutlu — DSN 2016).
//!
//! DRAM cells fail depending on the data stored in their *physically*
//! adjacent cells, but vendors scramble the system→physical address mapping,
//! so a system-level tester does not know where a cell's neighbors live.
//! PARBOR discovers the neighbor locations — as a small set of system-address
//! *distances* — and then uses them to build worst-case test patterns that
//! uncover data-dependent failures chip-wide. The five steps (paper §5.1):
//!
//! 1. [`VictimScout`] — find an initial set of cells whose failures depend on
//!    the row's data content (10 pattern/inverse rounds).
//! 2. [`NeighborRecursion`] — recursively split rows into regions
//!    (4096 → 512 → 64 → 8 → 1), testing many victim rows *in parallel* per
//!    round, to find which region holds each victim's coupled neighbor.
//! 3. Aggregate the per-victim distances ([`DistanceHistogram`]).
//! 4. Filter random failures: discard victims that fail in most regions,
//!    rank distances by frequency, and keep only frequent ones.
//! 5. [`ChipwideTest`] — neighbor-aware patterns that put every cell in its
//!    worst case while testing independent cells in parallel.
//!
//! The [`Parbor`] orchestrator runs all five against any
//! [`TestPort`](parbor_hal::TestPort) — the write / wait-one-refresh-interval
//! / read-back primitive of a system-level tester.
//!
//! ## Example
//!
//! ```
//! use parbor_core::{Parbor, ParborConfig};
//! use parbor_dram::{ChipGeometry, DramChip, Vendor};
//!
//! # fn main() -> Result<(), parbor_core::ParborError> {
//! let mut chip = DramChip::new(
//!     ChipGeometry::new(1, 64, 8192)?, Vendor::B, 7)?;
//! let report = Parbor::new(ParborConfig::default()).run(&mut chip)?;
//! // Vendor B's neighbors live at system distances {±1, ±64}.
//! assert!(report.distances().contains(&64));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
mod baseline;
mod chipwide;
mod content;
mod efficacy;
mod error;
mod mitigation;
mod online;
mod pipeline;
mod recursion;
mod region;
mod report;
mod scan;
mod snapshot;
mod victim;

pub use aggregate::{DistanceHistogram, RankedDistances};
pub use baseline::{
    exhaustive_neighbor_search, linear_neighbor_search, random_pattern_test, solid_pattern_test,
    walking_pattern_test, BaselineOutcome,
};
pub use chipwide::{ChipwideOutcome, ChipwideTest, RoundSchedule};
pub use content::{DcRefMonitor, VulnerableCell};
pub use efficacy::{run_efficacy, EfficacyConfig, EfficacyReport, MechanismScore};
pub use error::ParborError;
pub use mitigation::{FailureDirectory, MitigationPlan};
pub use online::{OnlinePhase, OnlineProgress, OnlineTester};
pub use pipeline::{Parbor, ParborConfig, ParborReport};
pub use recursion::{
    LevelOutcome, NeighborRecursion, RecursionConfig, RecursionOutcome, RecursionState,
};
pub use region::LevelPlan;
pub use report::{naive_test_time, parbor_module_time, ReductionReport, TestTime};
pub use scan::{
    CellKey, ChipwideState, DiscoverState, FailingCell, FailureProfile, ScanMachine, ScanState,
    SeenCell, StageState,
};
pub use snapshot::StencilSnapshot;
pub use victim::{Victim, VictimKey, VictimScout, VictimSet};
