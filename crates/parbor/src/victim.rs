//! Step 1: discovering the initial set of victim cells (paper §5.2.1).
//!
//! PARBOR needs known data-dependent victims to anchor the recursion: testing
//! a random cell would likely find nothing, because most cells are robust.
//! The scout writes a family of diverse data patterns — each with its inverse
//! so both true- and anti-cells get charged (paper footnote 3) — and keeps
//! every cell that failed under *some* pattern but passed under another.
//! Such cells are *likely* data-dependent; cells that are actually marginal
//! or VRT sneak in and are filtered later (§5.2.4).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use parbor_dram::{BitAddr, PatternSet, RowId};
use parbor_hal::{RoundArena, RoundExecutor, RoundPlan, TestPort};
use parbor_obs::metrics;
use parbor_obs::RecorderHandle;

use crate::error::ParborError;

/// Identifies the row-space a victim lives in: a unit (chip) and a row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VictimKey {
    /// Unit (chip) index within the test port.
    pub unit: u32,
    /// The row.
    pub row: RowId,
}

/// A cell that exhibited a data-dependent-looking failure during discovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Victim {
    /// Unit (chip) index.
    pub unit: u32,
    /// Row containing the victim.
    pub row: RowId,
    /// System column of the victim.
    pub col: u32,
    /// The written value under which the victim failed (i.e. the value that
    /// charges the cell). The recursion writes this value back into the
    /// victim so it stays vulnerable.
    pub fail_value: bool,
}

impl Victim {
    /// The victim's row-space key.
    pub fn key(&self) -> VictimKey {
        VictimKey {
            unit: self.unit,
            row: self.row,
        }
    }
}

// Lets `VictimKey` key serialized maps (JSON object keys must be strings).
impl serde::MapKey for VictimKey {
    fn to_key(&self) -> String {
        format!("{}:{}:{}", self.unit, self.row.bank, self.row.row)
    }

    fn from_key(s: &str) -> Result<Self, serde::Error> {
        let bad = || serde::Error::msg(format!("invalid VictimKey map key {s:?}"));
        let mut parts = s.splitn(3, ':');
        let mut next = || parts.next().and_then(|p| p.parse().ok()).ok_or_else(bad);
        Ok(VictimKey {
            unit: next()?,
            row: RowId::new(next()?, next()?),
        })
    }
}

/// The discovered victim population.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VictimSet {
    victims: Vec<Victim>,
}

impl VictimSet {
    /// Creates a victim set from raw victims (mainly for tests; normally
    /// produced by [`VictimScout::discover`]).
    pub fn from_victims(mut victims: Vec<Victim>) -> Self {
        victims.sort_by_key(|v| (v.unit, v.row.bank, v.row.row, v.col));
        VictimSet { victims }
    }

    /// All victims, sorted by (unit, bank, row, column).
    pub fn victims(&self) -> &[Victim] {
        &self.victims
    }

    /// Number of victims.
    pub fn len(&self) -> usize {
        self.victims.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.victims.is_empty()
    }

    /// Selects victims for the recursion: at most one per (unit, row) — the
    /// parallel rounds write one victim-specific pattern per row — truncated
    /// to `limit` if given (the paper's *sample size*, Fig 15).
    pub fn select_for_recursion(&self, limit: Option<usize>) -> Vec<Victim> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for v in &self.victims {
            if seen.insert(v.key()) {
                out.push(*v);
                if let Some(l) = limit {
                    if out.len() >= l {
                        break;
                    }
                }
            }
        }
        out
    }
}

/// Runs the discovery rounds and assembles the [`VictimSet`].
#[derive(Debug, Clone)]
pub struct VictimScout {
    patterns: PatternSet,
    rec: RecorderHandle,
}

impl VictimScout {
    /// The paper's 10-round discovery scout (5 patterns × pattern/inverse).
    pub fn new(seed: u64) -> Self {
        VictimScout {
            patterns: PatternSet::discovery(seed),
            rec: RecorderHandle::null(),
        }
    }

    /// A scout with a custom pattern family.
    pub fn with_patterns(patterns: PatternSet) -> Self {
        VictimScout {
            patterns,
            rec: RecorderHandle::null(),
        }
    }

    /// Attaches a metrics recorder (`discover.*` counters).
    pub fn with_recorder(mut self, rec: RecorderHandle) -> Self {
        self.rec = rec;
        self
    }

    /// Number of test rounds the scout will run.
    pub fn rounds(&self) -> usize {
        self.patterns.round_count()
    }

    /// The scout's full round batch: every pattern and its inverse, fixed up
    /// front and mutually independent. [`discover`](VictimScout::discover)
    /// runs the whole batch; a checkpointed scan
    /// ([`ScanMachine`](crate::ScanMachine)) re-derives it on resume and
    /// runs the remaining suffix.
    pub fn round_plans(&self, units: u32, rows: &[RowId], width: usize) -> Vec<RoundPlan> {
        let arena = RoundArena::new();
        (0..self.rounds())
            .map(|i| self.round_plan_in(i, units, rows, width, &arena))
            .collect()
    }

    /// Builds round `index` of [`round_plans`](VictimScout::round_plans)
    /// alone, drawing row images from the arena pool — a checkpointed scan
    /// resumes mid-batch without materializing the prefix it already ran.
    pub fn round_plan_in(
        &self,
        index: usize,
        units: u32,
        rows: &[RowId],
        width: usize,
        arena: &RoundArena,
    ) -> RoundPlan {
        let pattern = &self.patterns.patterns()[index / 2];
        let invert = index % 2 == 1;
        RoundPlan::broadcast_in(units, rows, arena, |row| {
            if invert {
                pattern.inverse().row_bits_in(row.row, width, arena)
            } else {
                pattern.row_bits_in(row.row, width, arena)
            }
        })
    }

    /// Turns the accumulated per-cell observations — (fail count, value
    /// written at first failure) per cell — into the victim set: a cell
    /// qualifies if it failed under *some* pattern but passed under another.
    pub fn finish(
        &self,
        seen: impl IntoIterator<Item = ((u32, BitAddr), (usize, bool))>,
    ) -> VictimSet {
        let total_rounds = self.rounds();
        let victims = seen
            .into_iter()
            .filter(|&(_, (fails, _))| fails >= 1 && fails < total_rounds)
            .map(|((unit, addr), (_, fail_value))| Victim {
                unit,
                row: addr.row(),
                col: addr.col,
                fail_value,
            })
            .collect();
        let set = VictimSet::from_victims(victims);
        self.rec.incr(metrics::discover::VICTIMS, set.len() as u64);
        set
    }

    /// Runs discovery over the given rows of every unit.
    ///
    /// A cell becomes a victim if it failed in at least one round *and*
    /// passed in at least one round — failures present under every pattern
    /// are content-independent and useless for locating neighbors.
    ///
    /// # Errors
    ///
    /// Propagates device errors from the port.
    pub fn discover<P: TestPort + ?Sized>(
        &self,
        port: &mut P,
        rows: &[RowId],
    ) -> Result<VictimSet, ParborError> {
        let width = port.geometry().cols_per_row as usize;
        let units = port.units();

        // The scout's rounds are all fixed up front and mutually
        // independent, so they go to the port as one batch — a multi-chip
        // module runs them chip-parallel across the whole batch. The arena
        // is shared with the port, so replaced row images come back as the
        // next rounds' backing buffers.
        let arena = RoundArena::new();
        let plans: Vec<RoundPlan> = (0..self.rounds())
            .map(|i| self.round_plan_in(i, units, rows, width, &arena))
            .collect();
        let mut exec = RoundExecutor::new(port)
            .with_recorder(self.rec.clone())
            .with_arena(arena)
            .count_rounds_as(metrics::discover::ROUNDS)
            .observe_flips_as(metrics::discover::ROUND_FLIPS);

        // (fail count, value written at first failure)
        let mut seen: HashMap<(u32, BitAddr), (usize, bool)> = HashMap::new();
        for flips in exec.run_batch(plans)? {
            for flip in flips {
                seen.entry((flip.unit, flip.flip.addr))
                    .or_insert((0, flip.flip.expected))
                    .0 += 1;
            }
        }
        Ok(self.finish(seen))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbor_dram::{ChipGeometry, DramChip, Vendor};

    #[test]
    fn select_for_recursion_one_per_row() {
        let v = |row: u32, col: u32| Victim {
            unit: 0,
            row: RowId::new(0, row),
            col,
            fail_value: true,
        };
        let set = VictimSet::from_victims(vec![v(0, 5), v(0, 9), v(1, 3), v(2, 7)]);
        let sel = set.select_for_recursion(None);
        assert_eq!(sel.len(), 3);
        assert_eq!(sel[0].col, 5, "first victim per row wins");
        let sel2 = set.select_for_recursion(Some(2));
        assert_eq!(sel2.len(), 2);
    }

    #[test]
    fn victims_are_sorted_deterministically() {
        let v = |unit: u32, col: u32| Victim {
            unit,
            row: RowId::new(0, 0),
            col,
            fail_value: false,
        };
        let set = VictimSet::from_victims(vec![v(1, 2), v(0, 9), v(0, 1)]);
        let cols: Vec<_> = set.victims().iter().map(|v| (v.unit, v.col)).collect();
        assert_eq!(cols, vec![(0, 1), (0, 9), (1, 2)]);
    }

    #[test]
    fn scout_runs_ten_rounds_and_finds_victims() {
        let mut chip =
            DramChip::new(ChipGeometry::new(1, 64, 8192).unwrap(), Vendor::A, 99).unwrap();
        let rows: Vec<RowId> = (0..64).map(|r| RowId::new(0, r)).collect();
        let scout = VictimScout::new(7);
        assert_eq!(scout.rounds(), 10);
        let set = scout.discover(&mut chip, &rows).unwrap();
        assert_eq!(chip.rounds_run(), 10);
        assert!(!set.is_empty(), "no victims found in 64 rows of vendor A");
    }

    #[test]
    fn victims_are_really_data_dependent_cells_mostly() {
        // Cross-check the scout against the device oracle: a healthy majority
        // of discovered victims should be oracle data-dependent cells.
        let mut chip =
            DramChip::new(ChipGeometry::new(1, 64, 8192).unwrap(), Vendor::B, 5).unwrap();
        let rows: Vec<RowId> = (0..64).map(|r| RowId::new(0, r)).collect();
        let set = VictimScout::new(1).discover(&mut chip, &rows).unwrap();
        let mut dd = 0usize;
        let mut total = 0usize;
        for v in set.victims() {
            let oracle = chip.oracle_data_dependent(v.row);
            total += 1;
            if oracle.iter().any(|&(sys, _)| sys == v.col) {
                dd += 1;
            }
        }
        assert!(total > 0);
        assert!(
            dd * 2 > total,
            "only {dd}/{total} victims are oracle data-dependent"
        );
    }
}
