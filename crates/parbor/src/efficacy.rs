//! Mechanism-efficacy harness: pipeline detection scored against ground truth.
//!
//! The simulator knows exactly which cells each [`FailureMechanism`] can
//! fail — the coupling model through its fault maps, the composable extras
//! (RowHammer, RowPress, retention drift) through their seeded
//! susceptibility hashes. This module runs the *full* PARBOR pipeline
//! against one mechanism at a time and scores the chip-wide detection set
//! per cell: true/false positives against the mechanism's truth set,
//! precision, recall.
//!
//! Two kinds of run make up the matrix:
//!
//! * **`coupling`** — the vendor's stock device model, no extras. Truth is
//!   the data-dependent oracle ([`oracle_data_dependent`]); the pipeline is
//!   *designed* for this population, so recall is pinned at 1.0 by tests.
//! * **one extra mechanism** — the coupling rates are zeroed and a single
//!   extra mechanism installed, so every observed flip is that mechanism's.
//!   The pipeline was never designed for these populations; the harness
//!   reports how much of each it still catches. A pipeline abort (no
//!   victims survive discovery, no distances survive filtering) is a
//!   legitimate outcome — the score records the error and zero detections.
//!
//! [`FailureMechanism`]: parbor_hal::FailureMechanism
//! [`oracle_data_dependent`]: parbor_dram::DramChip::oracle_data_dependent

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use parbor_dram::{ChipGeometry, FaultRates, ModuleConfig, ModuleId, RowId, Vendor};
use parbor_hal::{BitAddr, MechanismSpec, TestPort};
use parbor_obs::{metrics, RecorderHandle};

use crate::{Parbor, ParborConfig, ParborError};

/// Configuration of one efficacy sweep.
#[derive(Debug, Clone)]
pub struct EfficacyConfig {
    /// Vendor families to run the matrix over.
    pub vendors: Vec<Vendor>,
    /// Per-chip geometry (kept small: the matrix runs the full pipeline
    /// once per cell).
    pub geometry: ChipGeometry,
    /// Chips per module.
    pub chips: usize,
    /// Module fault seed.
    pub seed: u64,
    /// The extra mechanisms to score, one pipeline run each. The coupling
    /// model is always scored first and needs no spec.
    pub extras: Vec<MechanismSpec>,
    /// Pipeline configuration for every run.
    pub parbor: ParborConfig,
}

impl Default for EfficacyConfig {
    fn default() -> Self {
        EfficacyConfig {
            vendors: vec![Vendor::A, Vendor::B, Vendor::C],
            geometry: ChipGeometry::new(1, 128, 1024).expect("static geometry"),
            chips: 1,
            seed: 5,
            extras: MechanismSpec::parse_stack("hammer;press;drift")
                .expect("static mechanism stack"),
            parbor: ParborConfig::default(),
        }
    }
}

/// Per-cell detection score of one `(vendor, mechanism)` pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MechanismScore {
    /// Vendor family (`"A"`, `"B"`, `"C"`).
    pub vendor: String,
    /// Mechanism name (`"coupling"`, `"hammer"`, `"press"`, `"drift"`).
    pub mechanism: String,
    /// Cells the mechanism can fail (per-unit, summed over the module).
    pub truth_cells: usize,
    /// Cells the chip-wide test reported failing.
    pub detected_cells: usize,
    /// Detected cells inside the truth set.
    pub true_positives: usize,
    /// Detected cells outside the truth set.
    pub false_positives: usize,
    /// Truth cells the pipeline missed.
    pub false_negatives: usize,
    /// `TP / (TP + FP)`; 1.0 when nothing was detected.
    pub precision: f64,
    /// `TP / (TP + FN)`; 1.0 when the truth set is empty.
    pub recall: f64,
    /// The pipeline abort that ended this run, if any (zeros above).
    pub error: Option<String>,
}

/// The matrix of scores an efficacy sweep produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EfficacyReport {
    /// One score per `(vendor, mechanism)` run, vendors outer.
    pub scores: Vec<MechanismScore>,
}

impl EfficacyReport {
    /// The score of one `(vendor, mechanism)` cell, if it was run.
    pub fn score(&self, vendor: Vendor, mechanism: &str) -> Option<&MechanismScore> {
        self.scores
            .iter()
            .find(|s| s.vendor == vendor.to_string() && s.mechanism == mechanism)
    }
}

/// Runs the full matrix: for every vendor, the coupling model plus each
/// configured extra mechanism, one pipeline run per cell.
///
/// # Errors
///
/// Returns module-construction errors ([`ParborError::Device`]). Pipeline
/// aborts inside a run are *not* errors — they are recorded in that run's
/// [`MechanismScore::error`].
pub fn run_efficacy(
    config: &EfficacyConfig,
    rec: &RecorderHandle,
) -> Result<EfficacyReport, ParborError> {
    let mut scores = Vec::new();
    for &vendor in &config.vendors {
        scores.push(score_coupling(config, vendor, rec)?);
        for spec in &config.extras {
            scores.push(score_extra(config, vendor, spec, rec)?);
        }
    }
    Ok(EfficacyReport { scores })
}

/// Scores the vendor's stock coupling model against the data-dependent
/// oracle.
fn score_coupling(
    config: &EfficacyConfig,
    vendor: Vendor,
    rec: &RecorderHandle,
) -> Result<MechanismScore, ParborError> {
    let mut module = ModuleConfig::new(vendor)
        .geometry(config.geometry)
        .chips(config.chips)
        .seed(config.seed)
        .module_id(ModuleId(0))
        .build()?;
    let detected = run_pipeline(config, &mut module);
    let mut truth: HashSet<(u32, BitAddr)> = HashSet::new();
    let units = module.chips().len();
    for (unit, chip) in module.chips_mut().iter_mut().enumerate() {
        for row in chip_rows(&config.geometry) {
            for (col, _) in chip.oracle_data_dependent(row) {
                truth.insert((unit as u32, BitAddr::new(row.bank, row.row, col)));
            }
        }
    }
    debug_assert_eq!(units, config.chips);
    Ok(score(vendor, "coupling", truth, detected, rec))
}

/// Scores one extra mechanism in isolation: coupling rates zeroed, the
/// mechanism installed, truth from its susceptibility hash.
fn score_extra(
    config: &EfficacyConfig,
    vendor: Vendor,
    spec: &MechanismSpec,
    rec: &RecorderHandle,
) -> Result<MechanismScore, ParborError> {
    let silent = FaultRates {
        interesting: 0.0,
        marginal: 0.0,
        vrt: 0.0,
        soft_per_bit_per_round: 0.0,
        ..vendor.default_rates()
    };
    let mut module = ModuleConfig::new(vendor)
        .geometry(config.geometry)
        .chips(config.chips)
        .seed(config.seed)
        .module_id(ModuleId(0))
        .fault_rates(silent)
        .mechanisms(vec![spec.clone()])
        .build()?;
    let detected = run_pipeline(config, &mut module);
    // Mechanism susceptibility keys on (mechanism seed, bank, row, col) —
    // not the chip seed — so every unit shares one per-row truth set.
    let mech = spec.build();
    let mut truth: HashSet<(u32, BitAddr)> = HashSet::new();
    for row in chip_rows(&config.geometry) {
        for col in mech.truth(row.bank, row.row, config.geometry.cols_per_row) {
            for unit in 0..config.chips as u32 {
                truth.insert((unit, BitAddr::new(row.bank, row.row, col)));
            }
        }
    }
    Ok(score(vendor, mech.name(), truth, detected, rec))
}

/// Runs the pipeline over a module, mapping aborts to the score's error
/// channel (empty detection set).
fn run_pipeline<P: TestPort>(
    config: &EfficacyConfig,
    port: &mut P,
) -> Result<HashSet<(u32, BitAddr)>, String> {
    Parbor::new(config.parbor.clone())
        .run(port)
        .map(|report| report.chipwide.failing_bits())
        .map_err(|e| e.to_string())
}

fn chip_rows(geometry: &ChipGeometry) -> impl Iterator<Item = RowId> + '_ {
    (0..geometry.banks)
        .flat_map(move |bank| (0..geometry.rows_per_bank).map(move |row| RowId::new(bank, row)))
}

/// Folds a run's detection and truth sets into a [`MechanismScore`], and
/// publishes the `efficacy.*` counters.
fn score(
    vendor: Vendor,
    mechanism: &str,
    truth: HashSet<(u32, BitAddr)>,
    detected: Result<HashSet<(u32, BitAddr)>, String>,
    rec: &RecorderHandle,
) -> MechanismScore {
    let (detected, error) = match detected {
        Ok(set) => (set, None),
        Err(e) => (HashSet::new(), Some(e)),
    };
    let true_positives = detected.intersection(&truth).count();
    let false_positives = detected.len() - true_positives;
    let false_negatives = truth.len() - true_positives;
    let precision = if detected.is_empty() {
        1.0
    } else {
        true_positives as f64 / detected.len() as f64
    };
    let recall = if truth.is_empty() {
        1.0
    } else {
        true_positives as f64 / truth.len() as f64
    };
    rec.incr(metrics::efficacy::RUNS, 1);
    rec.incr(metrics::efficacy::TRUE_POSITIVES, true_positives as u64);
    rec.incr(metrics::efficacy::FALSE_POSITIVES, false_positives as u64);
    rec.incr(metrics::efficacy::FALSE_NEGATIVES, false_negatives as u64);
    MechanismScore {
        vendor: vendor.to_string(),
        mechanism: mechanism.to_string(),
        truth_cells: truth.len(),
        detected_cells: detected.len(),
        true_positives,
        false_positives,
        false_negatives,
        precision,
        recall,
        error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbor_obs::InMemoryRecorder;

    fn tiny_config() -> EfficacyConfig {
        EfficacyConfig {
            vendors: vec![Vendor::A],
            geometry: ChipGeometry::new(1, 128, 1024).unwrap(),
            chips: 1,
            seed: 5,
            extras: Vec::new(),
            parbor: ParborConfig::default(),
        }
    }

    #[test]
    fn coupling_recall_is_pinned_at_one() {
        // The chip-wide test drives every cell through its worst case, so
        // every data-dependent cell in the oracle must be caught.
        let report = run_efficacy(&tiny_config(), &RecorderHandle::null()).unwrap();
        let score = report.score(Vendor::A, "coupling").unwrap();
        assert!(score.truth_cells > 0, "oracle empty: {score:?}");
        assert_eq!(score.recall, 1.0, "coupling recall not pinned: {score:?}");
        assert_eq!(score.false_negatives, 0);
        assert!(score.error.is_none());
    }

    #[test]
    fn inert_extra_scores_zero_detections_without_panicking() {
        // A rate-0 hammer on a silenced device gives the pipeline nothing
        // to find; the run must record the abort, not crash the sweep.
        let mut config = tiny_config();
        config.extras = vec![MechanismSpec::parse("hammer=rate:0").unwrap()];
        let report = run_efficacy(&config, &RecorderHandle::null()).unwrap();
        let score = report.score(Vendor::A, "hammer").unwrap();
        assert_eq!(score.detected_cells, 0);
        assert_eq!(score.truth_cells, 0);
        assert_eq!((score.precision, score.recall), (1.0, 1.0));
        assert!(score.error.is_some(), "expected a pipeline abort");
    }

    #[test]
    fn efficacy_counters_are_published() {
        let recorder = InMemoryRecorder::handle();
        let report = run_efficacy(&tiny_config(), &RecorderHandle::from(recorder.clone())).unwrap();
        let score = report.score(Vendor::A, "coupling").unwrap();
        assert_eq!(recorder.counter("efficacy.runs"), 1);
        assert_eq!(
            recorder.counter("efficacy.true_positives"),
            score.true_positives as u64
        );
        // Every name the harness (and the devices under it) emitted must be
        // in the obs registry — an unregistered emission fails here instead
        // of silently vanishing from dashboards.
        let unregistered: Vec<String> = recorder
            .snapshot()
            .metric_names()
            .into_iter()
            .filter(|name| !parbor_obs::metrics::is_registered(name))
            .collect();
        assert!(
            unregistered.is_empty(),
            "efficacy run emitted unregistered metric names {unregistered:?}"
        );
    }

    #[test]
    fn report_serde_round_trips() {
        let report = EfficacyReport {
            scores: vec![MechanismScore {
                vendor: "A".into(),
                mechanism: "hammer".into(),
                truth_cells: 10,
                detected_cells: 8,
                true_positives: 7,
                false_positives: 1,
                false_negatives: 3,
                precision: 0.875,
                recall: 0.7,
                error: None,
            }],
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: EfficacyReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
