//! Region arithmetic for the recursive test.
//!
//! A *level plan* is the sequence of region sizes the recursion steps
//! through. The paper's plan for 8 K-cell rows is 4096 → 512 → 64 → 8 → 1:
//! the row splits in two at the first level, and every kept region splits
//! into eight subregions at each following level (§7.1). Divide-and-conquer
//! with constant kept-region count per level makes the whole search
//! `Θ(n)`-equivalent with a tiny constant (paper appendix).

use serde::{Deserialize, Serialize};

use crate::error::ParborError;

/// The sequence of region sizes used by the recursion, ending at size 1.
///
/// # Examples
///
/// ```
/// use parbor_core::LevelPlan;
///
/// # fn main() -> Result<(), parbor_core::ParborError> {
/// let plan = LevelPlan::paper(8192)?;
/// assert_eq!(plan.sizes(), &[4096, 512, 64, 8, 1]);
/// assert_eq!(plan.fanout(1), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LevelPlan {
    row_bits: usize,
    sizes: Vec<usize>,
}

impl LevelPlan {
    /// The paper's plan: first split the row in half, then split each kept
    /// region into 8 until the region size reaches 1.
    ///
    /// # Errors
    ///
    /// Returns [`ParborError::InvalidConfig`] unless `row_bits` is twice a
    /// power of 8 (e.g. 2·8³ = 1024, 2·8⁴ = 8192).
    pub fn paper(row_bits: usize) -> Result<Self, ParborError> {
        Self::with_fanout(row_bits, 2, 8)
    }

    /// A plan with a custom first divisor and per-level fanout.
    ///
    /// # Errors
    ///
    /// Returns [`ParborError::InvalidConfig`] when the divisors do not reach
    /// a region size of exactly 1.
    pub fn with_fanout(
        row_bits: usize,
        first_divisor: usize,
        fanout: usize,
    ) -> Result<Self, ParborError> {
        if row_bits == 0 || first_divisor < 2 || fanout < 2 {
            return Err(ParborError::InvalidConfig(
                "row_bits must be nonzero; divisors must be at least 2".into(),
            ));
        }
        if !row_bits.is_multiple_of(first_divisor) {
            return Err(ParborError::InvalidConfig(format!(
                "first divisor {first_divisor} does not divide row width {row_bits}"
            )));
        }
        let mut sizes = vec![row_bits / first_divisor];
        while *sizes.last().expect("nonempty") > 1 {
            let prev = *sizes.last().expect("nonempty");
            if prev % fanout != 0 {
                return Err(ParborError::InvalidConfig(format!(
                    "fanout {fanout} does not divide region size {prev}"
                )));
            }
            sizes.push(prev / fanout);
        }
        Ok(LevelPlan { row_bits, sizes })
    }

    /// Row width the plan was built for.
    pub fn row_bits(&self) -> usize {
        self.row_bits
    }

    /// Region sizes, one per level, ending at 1.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.sizes.len()
    }

    /// How many subregions a kept region of level `level - 1` splits into at
    /// `level` (for level 0, how many regions the whole row splits into).
    pub fn fanout(&self, level: usize) -> usize {
        if level == 0 {
            self.row_bits / self.sizes[0]
        } else {
            self.sizes[level - 1] / self.sizes[level]
        }
    }

    /// Region index containing bit `pos` at the given level.
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels()`.
    pub fn region_of(&self, pos: usize, level: usize) -> usize {
        pos / self.sizes[level]
    }

    /// Number of regions at a level.
    pub fn region_count(&self, level: usize) -> usize {
        self.row_bits / self.sizes[level]
    }

    /// Bit range `(lo, hi)` of region `index` at `level`, or `None` if the
    /// index is out of range.
    pub fn region_range(&self, index: usize, level: usize) -> Option<(usize, usize)> {
        let size = self.sizes[level];
        let lo = index.checked_mul(size)?;
        if lo >= self.row_bits {
            return None;
        }
        Some((lo, (lo + size).min(self.row_bits)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_plan_matches_section_7_1() {
        let plan = LevelPlan::paper(8192).unwrap();
        assert_eq!(plan.sizes(), &[4096, 512, 64, 8, 1]);
        assert_eq!(plan.levels(), 5);
        assert_eq!(plan.fanout(0), 2);
        for level in 1..5 {
            assert_eq!(plan.fanout(level), 8);
        }
    }

    #[test]
    fn paper_plan_scales_down() {
        let plan = LevelPlan::paper(1024).unwrap();
        assert_eq!(plan.sizes(), &[512, 64, 8, 1]);
    }

    #[test]
    fn invalid_widths_rejected() {
        // 1000/2 = 500, not a power of 8.
        assert!(LevelPlan::paper(1000).is_err());
        assert!(LevelPlan::paper(0).is_err());
        assert!(LevelPlan::with_fanout(64, 1, 8).is_err());
    }

    #[test]
    fn region_arithmetic() {
        let plan = LevelPlan::paper(8192).unwrap();
        assert_eq!(plan.region_of(5000, 0), 1);
        assert_eq!(plan.region_of(5000, 1), 9);
        assert_eq!(plan.region_count(0), 2);
        assert_eq!(plan.region_count(4), 8192);
        assert_eq!(plan.region_range(9, 1), Some((4608, 5120)));
        assert_eq!(plan.region_range(16, 1), None);
    }

    #[test]
    fn custom_fanout() {
        let plan = LevelPlan::with_fanout(64, 4, 4).unwrap();
        assert_eq!(plan.sizes(), &[16, 4, 1]);
        assert_eq!(plan.fanout(0), 4);
    }
}
