//! Distance aggregation, frequency ranking, and noise filtering
//! (paper §5.2.2 and §5.2.4).
//!
//! The recursion produces, per level, a multiset of *(victim, region
//! distance)* observations. Because DRAM tiles are regular, true neighbor
//! distances recur across many victims, while random failures (soft errors,
//! marginal cells, VRT) scatter over arbitrary distances. Ranking the
//! distance frequencies and keeping only those above a fraction of the most
//! frequent one removes the noise — this is the paper's Figure 14.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A frequency histogram over signed region distances.
///
/// # Examples
///
/// ```
/// use parbor_core::DistanceHistogram;
///
/// let mut h = DistanceHistogram::new();
/// h.record(1);
/// h.record(1);
/// h.record(-1);
/// h.record(7); // noise
/// let ranked = h.rank(0.5);
/// assert_eq!(ranked.kept(), &[-1, 1]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistanceHistogram {
    counts: BTreeMap<i64, usize>,
}

impl DistanceHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of a signed distance.
    pub fn record(&mut self, distance: i64) {
        *self.counts.entry(distance).or_insert(0) += 1;
    }

    /// Removes a previous observation (used when a victim is retroactively
    /// discarded as marginal).
    pub fn unrecord(&mut self, distance: i64) {
        if let Some(c) = self.counts.get_mut(&distance) {
            *c = c.saturating_sub(1);
            if *c == 0 {
                self.counts.remove(&distance);
            }
        }
    }

    /// Raw signed counts, ascending by distance.
    pub fn counts(&self) -> impl Iterator<Item = (i64, usize)> + '_ {
        self.counts.iter().map(|(&d, &c)| (d, c))
    }

    /// Counts merged by distance magnitude (`count(+d) + count(−d)`),
    /// ascending by magnitude. This is what the paper's Figure 14 plots.
    pub fn magnitude_counts(&self) -> Vec<(u64, usize)> {
        let mut merged: BTreeMap<u64, usize> = BTreeMap::new();
        for (&d, &c) in &self.counts {
            *merged.entry(d.unsigned_abs()).or_insert(0) += c;
        }
        merged.into_iter().collect()
    }

    /// Magnitude counts normalized to the most frequent magnitude, as
    /// plotted in the paper's Figures 14 and 15.
    pub fn normalized_magnitudes(&self) -> Vec<(u64, f64)> {
        let mags = self.magnitude_counts();
        let max = mags.iter().map(|&(_, c)| c).max().unwrap_or(0);
        if max == 0 {
            return Vec::new();
        }
        mags.into_iter()
            .map(|(d, c)| (d, c as f64 / max as f64))
            .collect()
    }

    /// Total number of observations.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Whether the histogram has no observations.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Ranks distances by magnitude frequency, keeping the signed distances
    /// whose magnitude count is at least `threshold` × the maximum magnitude
    /// count (paper §5.2.4). `threshold` is clamped to `(0, 1]`.
    pub fn rank(&self, threshold: f64) -> RankedDistances {
        let threshold = threshold.clamp(f64::MIN_POSITIVE, 1.0);
        let mags = self.magnitude_counts();
        let max = mags.iter().map(|&(_, c)| c).max().unwrap_or(0);
        let cut = (threshold * max as f64).ceil();
        let kept_mags: Vec<u64> = mags
            .iter()
            .filter(|&&(_, c)| c as f64 >= cut)
            .map(|&(d, _)| d)
            .collect();
        let mut kept: Vec<i64> = Vec::new();
        for &d in self.counts.keys() {
            if kept_mags.contains(&d.unsigned_abs()) {
                kept.push(d);
            }
        }
        let dropped = self
            .counts
            .keys()
            .filter(|d| !kept.contains(d))
            .copied()
            .collect();
        RankedDistances {
            kept,
            dropped,
            max_count: max,
        }
    }
}

/// The result of frequency-ranking a [`DistanceHistogram`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankedDistances {
    kept: Vec<i64>,
    dropped: Vec<i64>,
    max_count: usize,
}

impl RankedDistances {
    /// Signed distances that survived ranking, ascending.
    pub fn kept(&self) -> &[i64] {
        &self.kept
    }

    /// Signed distances filtered out as infrequent (noise), ascending.
    pub fn dropped(&self) -> &[i64] {
        &self.dropped
    }

    /// Count of the most frequent magnitude (the normalization base).
    pub fn max_count(&self) -> usize {
        self.max_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(pairs: &[(i64, usize)]) -> DistanceHistogram {
        let mut h = DistanceHistogram::new();
        for &(d, c) in pairs {
            for _ in 0..c {
                h.record(d);
            }
        }
        h
    }

    #[test]
    fn ranking_keeps_frequent_drops_rare() {
        let h = hist(&[(8, 100), (-8, 90), (16, 95), (-16, 88), (3, 2), (-11, 1)]);
        let r = h.rank(0.15);
        assert_eq!(r.kept(), &[-16, -8, 8, 16]);
        assert_eq!(r.dropped(), &[-11, 3]);
    }

    #[test]
    fn magnitudes_merge_signs() {
        let h = hist(&[(5, 3), (-5, 4), (0, 2)]);
        assert_eq!(h.magnitude_counts(), vec![(0, 2), (5, 7)]);
    }

    #[test]
    fn normalization_peaks_at_one() {
        let h = hist(&[(1, 10), (2, 5)]);
        let n = h.normalized_magnitudes();
        assert_eq!(n, vec![(1, 1.0), (2, 0.5)]);
    }

    #[test]
    fn empty_histogram_ranks_empty() {
        let h = DistanceHistogram::new();
        let r = h.rank(0.15);
        assert!(r.kept().is_empty());
        assert!(r.dropped().is_empty());
        assert_eq!(r.max_count(), 0);
    }

    #[test]
    fn unrecord_removes() {
        let mut h = hist(&[(4, 2)]);
        h.unrecord(4);
        assert_eq!(h.total(), 1);
        h.unrecord(4);
        assert!(h.is_empty());
        h.unrecord(4); // no-op on empty
        assert!(h.is_empty());
    }

    #[test]
    fn one_sided_magnitude_keeps_both_signs_if_present() {
        // +2 frequent, -2 rare alone but same magnitude: kept together.
        let h = hist(&[(2, 50), (-2, 1), (9, 1)]);
        let r = h.rank(0.2);
        assert_eq!(r.kept(), &[-2, 2]);
        assert_eq!(r.dropped(), &[9]);
    }

    #[test]
    fn threshold_one_keeps_only_max() {
        let h = hist(&[(1, 10), (2, 9)]);
        let r = h.rank(1.0);
        assert_eq!(r.kept(), &[1]);
    }

    /// End-to-end filter efficacy: drive the pipeline through a
    /// [`FaultInjectingPort`](parbor_hal::FaultInjectingPort) at several
    /// noise rates and score the surviving distance set against the vendor's
    /// ground-truth neighbor distances.
    mod filter_efficacy {
        use crate::{Parbor, ParborConfig};
        use parbor_dram::{ChipGeometry, ModuleConfig, ModuleId, Vendor};
        use parbor_hal::{FaultInjectingPort, InjectionConfig};

        fn detected_distances(rate: f64, seed: u64) -> Vec<i64> {
            let module = ModuleConfig::new(Vendor::A)
                .geometry(ChipGeometry::new(1, 128, 1024).expect("geometry"))
                .chips(1)
                .seed(5)
                .module_id(ModuleId(1))
                .build()
                .expect("module");
            let mut port =
                FaultInjectingPort::new(module, InjectionConfig::new(rate, seed).expect("config"));
            let report = Parbor::new(ParborConfig::default())
                .run(&mut port)
                .expect("pipeline");
            report.distances().to_vec()
        }

        fn precision_recall(found: &[i64]) -> (f64, f64) {
            let truth = Vendor::A.paper_distances();
            let hits = found.iter().filter(|d| truth.contains(d)).count();
            let precision = if found.is_empty() {
                1.0
            } else {
                hits as f64 / found.len() as f64
            };
            (precision, hits as f64 / truth.len() as f64)
        }

        #[test]
        fn clean_port_recovers_the_exact_distance_set() {
            let found = detected_distances(0.0, 1);
            let (precision, recall) = precision_recall(&found);
            assert_eq!(
                (precision, recall),
                (1.0, 1.0),
                "clean run must match ground truth exactly, got {found:?}"
            );
        }

        #[test]
        fn moderate_noise_is_filtered_out_entirely() {
            // 2% of row writes carry one random extra flip: frequency
            // ranking must still keep exactly the true distances.
            for seed in [7, 11, 29] {
                let found = detected_distances(0.02, seed);
                let (precision, recall) = precision_recall(&found);
                assert_eq!(
                    (precision, recall),
                    (1.0, 1.0),
                    "rate 0.02 seed {seed}: got {found:?}"
                );
            }
        }

        #[test]
        fn heavy_noise_degrades_precision_but_not_recall() {
            // At a 5% per-write injection rate random distances become
            // frequent enough that some survive ranking (precision drops),
            // but every true neighbor distance must still be found.
            let found = detected_distances(0.05, 7);
            let (precision, recall) = precision_recall(&found);
            assert_eq!(recall, 1.0, "true distances lost: {found:?}");
            assert!(
                precision < 1.0,
                "expected some noise to survive ranking at rate 0.05"
            );
            assert!(
                precision >= 0.25,
                "precision collapsed to {precision} with {found:?}"
            );
        }
    }
}
