//! Baseline tests PARBOR is compared against.
//!
//! * **Random-pattern testing** (paper §7.2, Fig 12/13): write random data,
//!   wait, read, repeat — the state of the art for system-level detection
//!   before PARBOR, given an equal test budget.
//! * **Solid-pattern testing**: the all-0s/all-1s tests many prior
//!   system-level schemes assume are sufficient (§3, challenge 2).
//! * **Linear / exhaustive neighbor search**: the `O(n)` and `O(n²)` oracle
//!   searches whose infeasible runtimes (49 days per row for `O(n²)`)
//!   motivate PARBOR (paper appendix).

use std::collections::HashSet;

use parbor_dram::{BitAddr, PatternKind, PatternSet, RowBits, RowId};
use parbor_hal::{RoundExecutor, RoundPlan, TestPort};

use crate::error::ParborError;
use crate::victim::Victim;

/// Rounds per engine batch for the one-write-per-round oracle searches: big
/// enough to amortize batch dispatch, small enough to keep memory flat on the
/// `O(n²)` search.
const SEARCH_BATCH_ROUNDS: usize = 512;

/// Result of a baseline test campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineOutcome {
    /// Rounds executed.
    pub rounds: usize,
    /// Distinct failing bits, keyed by (unit, address).
    pub failing: HashSet<(u32, BitAddr)>,
}

impl BaselineOutcome {
    /// Number of distinct failing bits.
    pub fn failure_count(&self) -> usize {
        self.failing.len()
    }
}

fn run_patterned_rounds<P: TestPort + ?Sized>(
    port: &mut P,
    rows: &[RowId],
    patterns: &[PatternKind],
    with_inverses: bool,
) -> Result<BaselineOutcome, ParborError> {
    let width = port.geometry().cols_per_row as usize;
    let units = port.units();
    let inverse_passes: &[bool] = if with_inverses {
        &[false, true]
    } else {
        &[false]
    };
    let mut plans = Vec::with_capacity(patterns.len() * inverse_passes.len());
    for pattern in patterns {
        for &invert in inverse_passes {
            plans.push(RoundPlan::broadcast(units, rows, |row| {
                if invert {
                    pattern.inverse().row_bits(row.row, width)
                } else {
                    pattern.row_bits(row.row, width)
                }
            }));
        }
    }
    let mut exec = RoundExecutor::new(port);
    let mut failing = HashSet::new();
    for flips in exec.run_batch(plans)? {
        for flip in flips {
            failing.insert((flip.unit, flip.flip.addr));
        }
    }
    Ok(BaselineOutcome {
        rounds: exec.rounds_executed(),
        failing,
    })
}

/// Random-pattern testing with a fixed round budget: each round writes fresh
/// pseudo-random data (distinct per row) to every row of every unit.
///
/// # Errors
///
/// Propagates device errors from the port.
pub fn random_pattern_test<P: TestPort + ?Sized>(
    port: &mut P,
    rows: &[RowId],
    rounds: usize,
    seed: u64,
) -> Result<BaselineOutcome, ParborError> {
    let set = PatternSet::random(seed, rounds);
    run_patterned_rounds(port, rows, set.patterns(), false)
}

/// The naive all-0s / all-1s test (2 rounds).
///
/// # Errors
///
/// Propagates device errors from the port.
pub fn solid_pattern_test<P: TestPort + ?Sized>(
    port: &mut P,
    rows: &[RowId],
) -> Result<BaselineOutcome, ParborError> {
    run_patterned_rounds(port, rows, &[PatternKind::Solid(false)], true)
}

/// The classic *walking-1* memory test adapted to row-round semantics: in
/// round `k`, every bit at position `k (mod period)` is set against a zero
/// background, plus the inverse rounds (walking-0). Covers every cell as a
/// "victim" once per polarity like PARBOR's chip-wide test, but with *one*
/// victim per `period` instead of neighbor-aware packing — `2·period`
/// rounds versus PARBOR's 28–40.
///
/// # Errors
///
/// Propagates device errors; rejects a zero or row-exceeding period.
pub fn walking_pattern_test<P: TestPort + ?Sized>(
    port: &mut P,
    rows: &[RowId],
    period: usize,
) -> Result<BaselineOutcome, ParborError> {
    let width = port.geometry().cols_per_row as usize;
    if period == 0 || period > width {
        return Err(ParborError::InvalidConfig(format!(
            "walking period {period} invalid for row width {width}"
        )));
    }
    let patterns: Vec<PatternKind> = (0..period as u32)
        .map(|phase| PatternKind::Walking {
            period: period as u32,
            phase,
        })
        .collect();
    run_patterned_rounds(port, rows, &patterns, true)
}

/// The victim's charged background: the failing value everywhere.
fn victim_background(victim: &Victim, width: usize) -> RowBits {
    if victim.fail_value {
        RowBits::ones(width)
    } else {
        RowBits::zeros(width)
    }
}

/// Runs one single-write round per candidate image of the victim's row and
/// reports, per image in order, whether the victim bit flipped. Rounds go to
/// the engine in [`SEARCH_BATCH_ROUNDS`]-sized batches so images can be
/// streamed (the exhaustive search would not fit in memory otherwise).
fn victim_probe_rounds<P: TestPort + ?Sized>(
    port: &mut P,
    victim: &Victim,
    mut images: impl Iterator<Item = RowBits>,
) -> Result<Vec<bool>, ParborError> {
    let mut exec = RoundExecutor::new(port);
    let mut out = Vec::new();
    loop {
        let batch: Vec<RoundPlan> = images
            .by_ref()
            .take(SEARCH_BATCH_ROUNDS)
            .map(|image| {
                let mut plan = RoundPlan::with_capacity(1);
                plan.write(victim.unit, victim.row, image);
                plan
            })
            .collect();
        if batch.is_empty() {
            break;
        }
        for flips in exec.run_batch(batch)? {
            out.push(
                flips
                    .iter()
                    .any(|f| f.unit == victim.unit && f.flip.addr.col == victim.col),
            );
        }
    }
    Ok(out)
}

/// The `O(n)` linear search: flips one candidate bit at a time opposite to
/// the victim and reports every bit whose flip alone makes the victim fail
/// (i.e. finds *strongly coupled* neighbors only). `within` restricts the
/// candidate range to keep runtimes sane.
///
/// # Errors
///
/// Propagates device errors; returns [`ParborError::InvalidConfig`] if
/// `within` exceeds the row.
pub fn linear_neighbor_search<P: TestPort + ?Sized>(
    port: &mut P,
    victim: &Victim,
    within: std::ops::Range<usize>,
) -> Result<Vec<i64>, ParborError> {
    let width = port.geometry().cols_per_row as usize;
    if within.end > width {
        return Err(ParborError::InvalidConfig(format!(
            "search range {within:?} exceeds row width {width}"
        )));
    }
    let candidates: Vec<usize> = within.filter(|&c| c != victim.col as usize).collect();
    let images = candidates.iter().map(|&candidate| {
        let mut data = victim_background(victim, width);
        data.set(candidate, !victim.fail_value);
        data
    });
    let failed = victim_probe_rounds(port, victim, images)?;
    Ok(candidates
        .iter()
        .zip(failed)
        .filter(|&(_, fail)| fail)
        .map(|(&c, _)| c as i64 - i64::from(victim.col))
        .collect())
}

/// The `O(n²)` exhaustive pair search: flips every pair of candidate bits
/// opposite to the victim and reports the pairs that make it fail — the
/// naive scheme that would take 49 days per 8 K row on real hardware
/// (paper appendix). Finds weakly coupled cells too. `within` restricts the
/// candidate range (mandatory sanity: the full row would be 33 M rounds).
///
/// # Errors
///
/// Propagates device errors; returns [`ParborError::InvalidConfig`] if
/// `within` exceeds the row.
pub fn exhaustive_neighbor_search<P: TestPort + ?Sized>(
    port: &mut P,
    victim: &Victim,
    within: std::ops::Range<usize>,
) -> Result<Vec<(i64, i64)>, ParborError> {
    let width = port.geometry().cols_per_row as usize;
    if within.end > width {
        return Err(ParborError::InvalidConfig(format!(
            "search range {within:?} exceeds row width {width}"
        )));
    }
    let candidates: Vec<usize> = within.filter(|&c| c != victim.col as usize).collect();
    let pairs: Vec<(usize, usize)> = candidates
        .iter()
        .enumerate()
        .flat_map(|(i, &a)| candidates[i + 1..].iter().map(move |&b| (a, b)))
        .collect();
    let images = pairs.iter().map(|&(a, b)| {
        let mut data = victim_background(victim, width);
        data.set(a, !victim.fail_value);
        data.set(b, !victim.fail_value);
        data
    });
    let failed = victim_probe_rounds(port, victim, images)?;
    Ok(pairs
        .iter()
        .zip(failed)
        .filter(|&(_, fail)| fail)
        .map(|(&(a, b), _)| {
            (
                a as i64 - i64::from(victim.col),
                b as i64 - i64::from(victim.col),
            )
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbor_dram::{ChipGeometry, DramChip, Vendor};

    fn chip(vendor: Vendor, rows: u32, seed: u64) -> DramChip {
        DramChip::new(ChipGeometry::new(1, rows, 8192).unwrap(), vendor, seed).unwrap()
    }

    #[test]
    fn random_test_finds_failures_and_counts_rounds() {
        let mut c = chip(Vendor::C, 32, 5);
        let rows: Vec<RowId> = (0..32).map(|r| RowId::new(0, r)).collect();
        let out = random_pattern_test(&mut c, &rows, 20, 9).unwrap();
        assert_eq!(out.rounds, 20);
        assert!(out.failure_count() > 0);
    }

    #[test]
    fn solid_test_runs_two_rounds() {
        let mut c = chip(Vendor::A, 8, 5);
        let rows: Vec<RowId> = (0..8).map(|r| RowId::new(0, r)).collect();
        let out = solid_pattern_test(&mut c, &rows).unwrap();
        assert_eq!(out.rounds, 2);
    }

    #[test]
    fn solid_test_misses_coupling_failures() {
        // The whole point of the paper: solid patterns never put opposite
        // values in neighboring cells of the same polarity block, so they
        // find far fewer failures than random testing.
        let mut c1 = chip(Vendor::C, 64, 5);
        let mut c2 = chip(Vendor::C, 64, 5);
        let rows: Vec<RowId> = (0..64).map(|r| RowId::new(0, r)).collect();
        let solid = solid_pattern_test(&mut c1, &rows).unwrap();
        let random = random_pattern_test(&mut c2, &rows, 20, 3).unwrap();
        assert!(
            random.failure_count() > 2 * solid.failure_count(),
            "random {} vs solid {}",
            random.failure_count(),
            solid.failure_count()
        );
    }

    #[test]
    fn walking_test_runs_expected_rounds() {
        let mut c = chip(Vendor::A, 16, 5);
        let rows: Vec<RowId> = (0..16).map(|r| RowId::new(0, r)).collect();
        let out = walking_pattern_test(&mut c, &rows, 8).unwrap();
        assert_eq!(out.rounds, 16); // 8 phases x 2 polarities
        assert!(out.failure_count() > 0);
    }

    #[test]
    fn walking_test_validates_period() {
        let mut c = chip(Vendor::A, 4, 5);
        let rows = [RowId::new(0, 0)];
        assert!(walking_pattern_test(&mut c, &rows, 0).is_err());
        assert!(walking_pattern_test(&mut c, &rows, 9000).is_err());
    }

    #[test]
    fn linear_search_finds_a_strong_neighbor() {
        use crate::victim::VictimScout;
        let mut c = chip(Vendor::B, 64, 8);
        let rows: Vec<RowId> = (0..64).map(|r| RowId::new(0, r)).collect();
        let set = VictimScout::new(1).discover(&mut c, &rows).unwrap();
        // Restrict to victims the device oracle confirms as coupling cells
        // (discovery also catches marginal/VRT cells, whose intermittent
        // failures would pollute a bit-by-bit scan with spurious distances).
        let mut hits = 0;
        for v in set.select_for_recursion(Some(48)) {
            if !c
                .oracle_data_dependent(v.row)
                .iter()
                .any(|&(sys, _)| sys == v.col)
            {
                continue;
            }
            let lo = (v.col as usize).saturating_sub(80);
            let hi = (v.col as usize + 80).min(8192);
            let found = linear_neighbor_search(&mut c, &v, lo..hi).unwrap();
            for d in found {
                assert!(
                    [1, 64].contains(&d.unsigned_abs()),
                    "unexpected distance {d} for coupling victim"
                );
                hits += 1;
            }
        }
        assert!(hits > 0, "no strongly coupled victim responded");
    }

    #[test]
    fn search_range_validated() {
        let mut c = chip(Vendor::A, 4, 1);
        let v = Victim {
            unit: 0,
            row: RowId::new(0, 0),
            col: 0,
            fail_value: true,
        };
        assert!(linear_neighbor_search(&mut c, &v, 0..9999).is_err());
        assert!(exhaustive_neighbor_search(&mut c, &v, 0..9999).is_err());
    }
}
