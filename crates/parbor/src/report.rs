//! Test-time arithmetic and reduction-factor reporting (paper appendix).
//!
//! The appendix derives, from DDR3-1600 timing, how long naive neighbor
//! searches would take on real hardware: each test of one candidate costs a
//! full refresh interval (64 ms dominates the few hundred ns of row I/O), so
//! an `O(n²)` search of an 8 K row takes 49 days and `O(n⁴)` takes 9.1 M
//! years — while PARBOR's 92–132 rounds test a whole 2 GB module in under a
//! minute.

use std::fmt;

use serde::{Deserialize, Serialize};

/// DDR3-1600 row-to-row timing used by the appendix arithmetic.
mod ddr3 {
    /// RAS-to-CAS delay, ns.
    pub const T_RCD_NS: f64 = 13.75;
    /// Column-to-column delay, ns.
    pub const T_CCD_NS: f64 = 5.0;
    /// Precharge time, ns.
    pub const T_RP_NS: f64 = 13.75;
    /// Refresh interval the tests wait out, ms.
    pub const REFRESH_MS: f64 = 64.0;
    /// Cache lines per 8 KB row.
    pub const BLOCKS_PER_ROW: f64 = 128.0;
    /// Rows in a 2 GB module.
    pub const ROWS_PER_2GB: f64 = 262_144.0;
}

/// A duration in seconds with a human-friendly `Display` (s / min / h /
/// days / years).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct TestTime(pub f64);

impl TestTime {
    /// The duration in seconds.
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// The duration in days.
    pub fn days(self) -> f64 {
        self.0 / 86_400.0
    }

    /// The duration in years.
    pub fn years(self) -> f64 {
        self.0 / (86_400.0 * 365.0)
    }
}

impl fmt::Display for TestTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s < 120.0 {
            write!(f, "{s:.2} s")
        } else if s < 7_200.0 {
            write!(f, "{:.2} min", s / 60.0)
        } else if s < 2.0 * 86_400.0 {
            write!(f, "{:.2} h", s / 3_600.0)
        } else if s < 730.0 * 86_400.0 {
            write!(f, "{:.1} days", self.days())
        } else if self.years() < 2.0e6 {
            write!(f, "{:.0} years", self.years())
        } else {
            write!(f, "{:.1}M years", self.years() / 1.0e6)
        }
    }
}

/// Wall-clock time of a naive `O(n^k)` neighbor search over one row of
/// `row_bits` cells: each candidate test waits one 64 ms refresh interval
/// (paper appendix: 8.73 min for `k = 1`, 49 days for `k = 2`, 1115 years
/// for `k = 3`, 9.1 M years for `k = 4`).
pub fn naive_test_time(row_bits: usize, k: u32) -> TestTime {
    let per_test_s = ddr3::REFRESH_MS / 1e3; // the 42.5 ns of I/O is noise
    TestTime((row_bits as f64).powi(k as i32) * per_test_s)
}

/// Wall-clock time of `tests` PARBOR rounds over a whole 2 GB module:
/// write the module (174.98 ms), wait 64 ms, read it back (paper appendix:
/// 413.96 ms per round; 92 rounds ≈ 38 s, 132 rounds ≈ 55 s).
pub fn parbor_module_time(tests: usize) -> TestTime {
    let row_ns = ddr3::T_RCD_NS + ddr3::T_CCD_NS * ddr3::BLOCKS_PER_ROW + ddr3::T_RP_NS;
    let module_s = row_ns * ddr3::ROWS_PER_2GB / 1e9;
    let round_s = 2.0 * module_s + ddr3::REFRESH_MS / 1e3;
    TestTime(tests as f64 * round_s)
}

/// PARBOR's reduction factors versus the `O(n)` and `O(n²)` searches
/// (the paper's headline 90× and 745,654× numbers).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReductionReport {
    /// Row width the comparison is for.
    pub row_bits: usize,
    /// PARBOR recursion rounds.
    pub parbor_tests: usize,
    /// `n / parbor_tests`.
    pub vs_linear: f64,
    /// `n² / parbor_tests`.
    pub vs_quadratic: f64,
}

impl ReductionReport {
    /// Computes the reduction factors.
    pub fn new(row_bits: usize, parbor_tests: usize) -> Self {
        let n = row_bits as f64;
        let t = parbor_tests.max(1) as f64;
        ReductionReport {
            row_bits,
            parbor_tests,
            vs_linear: n / t,
            vs_quadratic: n * n / t,
        }
    }
}

impl fmt::Display for ReductionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tests for {}-bit rows: {:.0}x vs O(n), {:.0}x vs O(n^2)",
            self.parbor_tests, self.row_bits, self.vs_linear, self.vs_quadratic
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_search_takes_minutes() {
        let t = naive_test_time(8192, 1);
        assert!((t.seconds() / 60.0 - 8.73).abs() < 0.05, "{t}");
    }

    #[test]
    fn quadratic_search_takes_49_days() {
        let t = naive_test_time(8192, 2);
        assert!((t.days() - 49.7).abs() < 1.0, "days = {}", t.days());
    }

    #[test]
    fn cubic_search_takes_1115_years() {
        let t = naive_test_time(8192, 3);
        assert!((t.years() - 1115.0).abs() < 25.0, "years = {}", t.years());
    }

    #[test]
    fn quartic_search_takes_9m_years() {
        let t = naive_test_time(8192, 4);
        assert!((t.years() / 1.0e6 - 9.1).abs() < 0.3, "{}", t.years());
    }

    #[test]
    fn parbor_module_time_matches_paper() {
        // Paper: 92 tests ≈ 38 s, 132 tests ≈ 55 s for a 2 GB module.
        let t92 = parbor_module_time(92).seconds();
        let t132 = parbor_module_time(132).seconds();
        assert!((t92 - 38.0).abs() < 1.0, "t92 = {t92}");
        assert!((t132 - 54.6).abs() < 1.0, "t132 = {t132}");
    }

    #[test]
    fn reduction_factors_match_headline() {
        let r = ReductionReport::new(8192, 90);
        assert!((r.vs_linear - 91.0).abs() < 1.0);
        assert!((r.vs_quadratic - 745_654.0).abs() < 10.0);
    }

    #[test]
    fn display_humanizes() {
        assert_eq!(TestTime(10.0).to_string(), "10.00 s");
        assert!(TestTime(600.0).to_string().contains("min"));
        assert!(naive_test_time(8192, 2).to_string().contains("days"));
        assert!(naive_test_time(8192, 3).to_string().contains("years"));
        assert!(naive_test_time(8192, 4).to_string().contains("M years"));
    }
}
