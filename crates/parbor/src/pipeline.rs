//! The end-to-end PARBOR pipeline (paper §5.1's five steps).

use serde::{Deserialize, Serialize};

use parbor_dram::RowId;
use parbor_hal::TestPort;
use parbor_obs::metrics;
use parbor_obs::{span, RecorderHandle};

use crate::chipwide::{ChipwideOutcome, ChipwideTest};
use crate::error::ParborError;
use crate::recursion::{NeighborRecursion, RecursionConfig, RecursionOutcome};
use crate::victim::{VictimScout, VictimSet};

/// Configuration of a full PARBOR run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParborConfig {
    /// Seed of the discovery pattern family.
    pub discovery_seed: u64,
    /// Victim sample-size cap for the recursion (paper Fig 15); `None` uses
    /// every eligible victim.
    pub sample_limit: Option<usize>,
    /// Recursion tuning.
    pub recursion: RecursionConfig,
    /// Rows to test; `None` means every row of the port's geometry.
    pub rows: Option<Vec<RowId>>,
}

impl Default for ParborConfig {
    fn default() -> Self {
        ParborConfig {
            discovery_seed: 0x9A7B_0001,
            sample_limit: None,
            recursion: RecursionConfig::default(),
            rows: None,
        }
    }
}

/// Orchestrates discovery → recursion → aggregation/filtering → chip-wide
/// testing against any [`TestPort`].
///
/// # Examples
///
/// ```
/// use parbor_core::{Parbor, ParborConfig};
/// use parbor_dram::{ChipGeometry, DramChip, Vendor};
///
/// # fn main() -> Result<(), parbor_core::ParborError> {
/// let mut chip = DramChip::new(ChipGeometry::new(1, 64, 8192)?, Vendor::A, 1)?;
/// let report = Parbor::new(ParborConfig::default()).run(&mut chip)?;
/// assert_eq!(report.recursion.total_tests, 90); // paper Table 1, vendor A
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Parbor {
    config: ParborConfig,
    rec: RecorderHandle,
}

impl Parbor {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: ParborConfig) -> Self {
        Parbor {
            config,
            rec: RecorderHandle::null(),
        }
    }

    /// Attaches a metrics recorder; every phase reports counters and spans
    /// through it (the default null recorder drops everything).
    pub fn with_recorder(mut self, rec: RecorderHandle) -> Self {
        self.rec = rec;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &ParborConfig {
        &self.config
    }

    fn rows_for<P: TestPort + ?Sized>(&self, port: &P) -> Vec<RowId> {
        match &self.config.rows {
            Some(rows) => rows.clone(),
            None => port.geometry().rows().collect(),
        }
    }

    /// Step 1: victim discovery (10 rounds).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn discover<P: TestPort + ?Sized>(&self, port: &mut P) -> Result<VictimSet, ParborError> {
        let _span = span!(self.rec, metrics::pipeline::DISCOVER);
        let rows = self.rows_for(port);
        VictimScout::new(self.config.discovery_seed)
            .with_recorder(self.rec.clone())
            .discover(port, &rows)
    }

    /// Steps 2–4: the recursion over a discovered victim set.
    ///
    /// # Errors
    ///
    /// See [`NeighborRecursion::run`].
    pub fn locate<P: TestPort + ?Sized>(
        &self,
        port: &mut P,
        victims: &VictimSet,
    ) -> Result<RecursionOutcome, ParborError> {
        let _span = span!(self.rec, metrics::pipeline::RECURSION);
        let selected = victims.select_for_recursion(self.config.sample_limit);
        NeighborRecursion::new(self.config.recursion.clone())
            .with_recorder(self.rec.clone())
            .run(port, &selected)
    }

    /// Step 5: the neighbor-aware chip-wide test.
    ///
    /// # Errors
    ///
    /// Propagates schedule or device errors.
    pub fn chip_test<P: TestPort + ?Sized>(
        &self,
        port: &mut P,
        distances: &[i64],
    ) -> Result<ChipwideOutcome, ParborError> {
        let _span = span!(self.rec, metrics::pipeline::CHIPWIDE);
        let rows = self.rows_for(port);
        ChipwideTest::new(distances, port.geometry().cols_per_row as usize)?
            .with_recorder(self.rec.clone())
            .run(port, &rows)
    }

    /// Runs the full pipeline.
    ///
    /// # Errors
    ///
    /// * [`ParborError::NoVictims`] when discovery finds nothing.
    /// * [`ParborError::NoDistances`] when the recursion filters everything.
    /// * Device errors from the port.
    pub fn run<P: TestPort + ?Sized>(&self, port: &mut P) -> Result<ParborReport, ParborError> {
        let _span = span!(self.rec, metrics::pipeline::RUN);
        let victims = self.discover(port)?;
        if victims.is_empty() {
            return Err(ParborError::NoVictims);
        }
        let discovery_rounds = VictimScout::new(self.config.discovery_seed).rounds();
        let recursion = self.locate(port, &victims)?;
        let chipwide = self.chip_test(port, &recursion.distances)?;
        Ok(ParborReport {
            victim_count: victims.len(),
            discovery_rounds,
            recursion,
            chipwide,
        })
    }
}

/// The result of a full PARBOR run.
#[derive(Debug, Clone, PartialEq)]
pub struct ParborReport {
    /// Victims found by discovery.
    pub victim_count: usize,
    /// Rounds spent on discovery (10 in the paper's setup).
    pub discovery_rounds: usize,
    /// The recursion outcome (distances, per-level tests).
    pub recursion: RecursionOutcome,
    /// The chip-wide test outcome (failures found).
    pub chipwide: ChipwideOutcome,
}

impl ParborReport {
    /// Final signed neighbor distances.
    pub fn distances(&self) -> &[i64] {
        &self.recursion.distances
    }

    /// Total rounds across all phases — the paper's "92–132 tests" budget
    /// (discovery + recursion + chip-wide).
    pub fn total_rounds(&self) -> usize {
        self.discovery_rounds + self.recursion.total_tests + self.chipwide.rounds
    }

    /// Distinct data-dependent failures uncovered by the chip-wide test.
    pub fn failure_count(&self) -> usize {
        self.chipwide.failure_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbor_dram::{ChipGeometry, DramChip, ModuleConfig, Vendor};

    #[test]
    fn full_pipeline_on_vendor_c_chip() {
        let mut chip =
            DramChip::new(ChipGeometry::new(1, 96, 8192).unwrap(), Vendor::C, 4).unwrap();
        let report = Parbor::new(ParborConfig::default()).run(&mut chip).unwrap();
        assert_eq!(report.recursion.total_tests, 90);
        assert_eq!(report.distances(), &[-49, -33, -16, 16, 33, 49]);
        assert!(report.failure_count() > 0);
        // Budget: 10 discovery + 90 recursion + 16 chip-wide-ish rounds.
        assert!(report.total_rounds() >= 100 && report.total_rounds() <= 140);
    }

    #[test]
    fn full_pipeline_on_module() {
        let mut module = ModuleConfig::new(Vendor::B)
            .geometry(ChipGeometry::new(1, 48, 8192).unwrap())
            .chips(4)
            .seed(21)
            .build()
            .unwrap();
        let report = Parbor::new(ParborConfig::default())
            .run(&mut module)
            .unwrap();
        assert_eq!(report.distances(), &[-64, -1, 1, 64]);
        assert_eq!(report.recursion.total_tests, 66);
    }

    #[test]
    fn table1_counts_pinned_for_all_vendors() {
        // Paper Table 1 (and the doctest claim above): A=90, B=66, C=90
        // recursion tests on 8 K-cell rows. Noise populations can add
        // retests on unlucky seeds, so each vendor pins a seed where the
        // simulated chip behaves canonically.
        for (vendor, seed, total, per_level) in [
            (Vendor::A, 1, 90, vec![2, 8, 8, 24, 48]),
            (Vendor::B, 1, 66, vec![2, 8, 8, 24, 24]),
            (Vendor::C, 2, 90, vec![2, 8, 8, 24, 48]),
        ] {
            let mut chip =
                DramChip::new(ChipGeometry::new(1, 64, 8192).unwrap(), vendor, seed).unwrap();
            let report = Parbor::new(ParborConfig::default()).run(&mut chip).unwrap();
            assert_eq!(report.recursion.total_tests, total, "vendor {vendor}");
            assert_eq!(
                report.recursion.tests_per_level(),
                per_level,
                "vendor {vendor}"
            );
            assert_eq!(
                report.distances(),
                vendor.paper_distances(),
                "vendor {vendor}"
            );
        }
    }

    #[test]
    fn recorder_counts_every_phase_and_traces_jsonl() {
        use parbor_obs::{InMemoryRecorder, RecorderHandle};

        let recorder = InMemoryRecorder::handle();
        let rec = RecorderHandle::from(recorder.clone());
        let mut chip = DramChip::new(ChipGeometry::new(1, 64, 8192).unwrap(), Vendor::A, 1)
            .unwrap()
            .with_recorder(rec.clone());
        Parbor::new(ParborConfig::default())
            .with_recorder(rec)
            .run(&mut chip)
            .unwrap();
        // Every pipeline phase reported nonzero counters.
        for counter in [
            "discover.rounds",
            "discover.victims",
            "recursion.tests",
            "aggregate.distances_kept",
            "aggregate.distances_dropped",
            "chipwide.rounds",
            "chipwide.failures",
            "dram.port_rounds",
            "dram.row_writes",
            "dram.row_reads",
        ] {
            assert!(recorder.counter(counter) > 0, "counter {counter} is zero");
        }
        // Phase spans were recorded, nested under pipeline.run.
        let spans = recorder.finished_spans();
        for phase in [
            "pipeline.run",
            "pipeline.discover",
            "pipeline.recursion",
            "pipeline.chipwide",
            "recursion.level",
        ] {
            assert!(spans.iter().any(|s| s.name == phase), "no span {phase}");
        }
        // The trace is valid JSONL: one parseable object per line.
        let trace = recorder.trace_jsonl();
        assert!(!trace.is_empty());
        for line in trace.lines() {
            serde_json::parse_value(line).expect("trace line parses as JSON");
        }
    }

    #[test]
    fn null_recorder_output_is_bit_identical() {
        let run = |rec: Option<parbor_obs::RecorderHandle>| {
            let mut chip =
                DramChip::new(ChipGeometry::new(1, 64, 8192).unwrap(), Vendor::C, 9).unwrap();
            let mut parbor = Parbor::new(ParborConfig::default());
            if let Some(rec) = rec {
                chip.set_recorder(rec.clone());
                parbor = parbor.with_recorder(rec);
            }
            let report = parbor.run(&mut chip).unwrap();
            (
                report.victim_count,
                report.recursion.clone(),
                report.chipwide.rounds,
                report.failure_count(),
            )
        };
        let bare = run(None);
        let null = run(Some(parbor_obs::RecorderHandle::null()));
        let mem = run(Some(parbor_obs::RecorderHandle::from(
            parbor_obs::InMemoryRecorder::handle(),
        )));
        assert_eq!(bare, null);
        assert_eq!(bare, mem);
    }

    #[test]
    fn sample_limit_is_respected() {
        let mut chip =
            DramChip::new(ChipGeometry::new(1, 128, 8192).unwrap(), Vendor::A, 8).unwrap();
        // Small samples make the ranking noisy (the paper's Fig 15 point),
        // so use a sample that is limited but still comfortably stable.
        let parbor = Parbor::new(ParborConfig {
            sample_limit: Some(48),
            ..ParborConfig::default()
        });
        let victims = parbor.discover(&mut chip).unwrap();
        assert!(victims.len() > 48, "need more victims than the cap");
        let selected = victims.select_for_recursion(Some(48));
        assert_eq!(selected.len(), 48);
        // And the pipeline still converges on the right distances.
        let outcome = parbor.locate(&mut chip, &victims).unwrap();
        assert_eq!(outcome.distances, vec![-48, -16, -8, 8, 16, 48]);
    }

    #[test]
    fn explicit_row_subset() {
        let rows: Vec<RowId> = (0..64).map(|r| RowId::new(0, r)).collect();
        let mut chip =
            DramChip::new(ChipGeometry::new(1, 512, 8192).unwrap(), Vendor::B, 2).unwrap();
        let parbor = Parbor::new(ParborConfig {
            rows: Some(rows.clone()),
            ..ParborConfig::default()
        });
        let report = parbor.run(&mut chip).unwrap();
        // All failures must be inside the tested subset.
        for (_, addr) in report.chipwide.failing.keys() {
            assert!(addr.row < 64);
        }
    }
}
