//! Immutable compiled-stencil snapshots for online content checks.
//!
//! PARBOR's payoff is the online question DC-REF asks on the live access
//! path: *is this row's current content a worst-case coupling pattern?*
//! Answering it at memory-system rates means the per-query work must be a
//! single compiled-kernel evaluation — no fault-map builds, no scrambler
//! arithmetic, no locks. A [`StencilSnapshot`] front-loads all of that: it
//! compiles every tracked row's [`CouplingStencil`] once (plus the chip's
//! [`ScramblerLut`] translation tables), freezes them behind a dense
//! `(unit, bank, row) → slot` index, and from then on serves lookups from
//! shared immutable memory. `parbor-serve` shards these per module across
//! worker cores.
//!
//! Two build scopes exist:
//!
//! - [`StencilSnapshot::compile`] covers **every row** of the module — the
//!   ground truth used by benchmarks and the bit-identity proptests.
//! - [`StencilSnapshot::compile_filtered`] covers only the rows a scanned
//!   [`FailureProfile`] flagged — the production path, where the fleet's
//!   profile store tells the daemon which rows are worth watching.
//!
//! Both compile through [`DramChip::compile_stencil`], so a snapshot answer
//! is bit-identical to what the chip itself would report for the same row
//! content at the same conditions.

use std::collections::BTreeSet;
use std::sync::Arc;

use parbor_dram::{CouplingStencil, DramModule, RowBits, RowId, ScramblerLut};

use crate::scan::FailureProfile;

/// Index sentinel for rows without a compiled stencil.
const UNTRACKED: u32 = u32::MAX;

/// One module's compiled content-check state: a dense row index over
/// compiled [`CouplingStencil`]s plus the per-chip scrambler LUTs.
///
/// Immutable after compilation and cheap to share (`Arc` it); evaluation
/// takes `&self` and writes failing system columns into a caller-provided
/// buffer, so the hot path allocates nothing.
///
/// # Examples
///
/// ```
/// use parbor_core::StencilSnapshot;
/// use parbor_dram::{ChipGeometry, ModuleConfig, RowId, Vendor};
/// use parbor_hal::RowBits;
///
/// let module = ModuleConfig::new(Vendor::A)
///     .geometry(ChipGeometry::tiny())
///     .chips(1)
///     .build()
///     .unwrap();
/// let snap = StencilSnapshot::compile(&module);
/// let row = RowId::new(0, 3);
/// let content = RowBits::ones(snap.row_len());
/// let mut fails = Vec::new();
/// assert!(snap.eval_into(0, row, &content, &mut fails));
/// // Bit-identical to asking the chip directly:
/// let direct = module.chips()[0].compile_stencil(row).eval(&content);
/// assert_eq!(fails, direct);
/// ```
#[derive(Debug, Clone)]
pub struct StencilSnapshot {
    name: String,
    units: u32,
    banks: u32,
    rows_per_bank: u32,
    row_len: usize,
    /// Dense `(unit, bank, row) → stencil slot` map; [`UNTRACKED`] marks
    /// rows with no compiled stencil.
    index: Vec<u32>,
    stencils: Vec<CouplingStencil>,
    /// Per-unit scrambler translation tables, shared with the chips.
    luts: Vec<Arc<ScramblerLut>>,
    stored: bool,
}

impl StencilSnapshot {
    /// Compiles stencils for **every row of every chip** in the module.
    ///
    /// This is the ground-truth scope: content checks against it answer
    /// for any row, which is what benchmarks and bit-identity tests want.
    /// Cost is one fault-map build + stencil compile per row, so keep the
    /// geometry modest (the experiment-slice presets compile in
    /// milliseconds; the full paper geometry would take minutes).
    pub fn compile(module: &DramModule) -> StencilSnapshot {
        Self::compile_inner(module, None, false)
    }

    /// Compiles stencils only for the rows `profile` flagged as failing.
    ///
    /// This is the production scope: a fleet scan found the vulnerable
    /// rows, the profile landed in the store, and the daemon only needs
    /// stencils for those. Content checks on unflagged rows report
    /// *untracked* (no failing lanes), matching DC-REF's contract that
    /// unprofiled rows stay on the conservative refresh schedule.
    /// Cells outside the module's geometry are ignored.
    pub fn compile_filtered(module: &DramModule, profile: &FailureProfile) -> StencilSnapshot {
        let rows: BTreeSet<(u32, RowId)> = profile
            .failures
            .iter()
            .map(|c| (c.unit, RowId::new(c.bank, c.row)))
            .collect();
        Self::compile_inner(module, Some(&rows), true)
    }

    fn compile_inner(
        module: &DramModule,
        filter: Option<&BTreeSet<(u32, RowId)>>,
        stored: bool,
    ) -> StencilSnapshot {
        let chips = module.chips();
        let geom = chips
            .first()
            .expect("a built module has at least one chip")
            .geometry();
        let units = chips.len() as u32;
        let slots = units as usize * geom.banks as usize * geom.rows_per_bank as usize;
        let mut index = vec![UNTRACKED; slots];
        let mut stencils = Vec::new();
        let mut luts = Vec::with_capacity(chips.len());
        for (unit, chip) in chips.iter().enumerate() {
            luts.push(Arc::clone(chip.scrambler_lut()));
            for row in geom.rows() {
                if let Some(wanted) = filter {
                    if !wanted.contains(&(unit as u32, row)) {
                        continue;
                    }
                }
                let slot = stencils.len() as u32;
                stencils.push(chip.compile_stencil(row));
                let flat = Self::flat(&geom, unit as u32, row);
                index[flat] = slot;
            }
        }
        StencilSnapshot {
            name: module.name(),
            units,
            banks: geom.banks,
            rows_per_bank: geom.rows_per_bank,
            row_len: geom.cols_per_row as usize,
            index,
            stencils,
            luts,
            stored,
        }
    }

    fn flat(geom: &parbor_dram::ChipGeometry, unit: u32, row: RowId) -> usize {
        (unit as usize * geom.banks as usize + row.bank as usize) * geom.rows_per_bank as usize
            + row.row as usize
    }

    /// The module name this snapshot was compiled from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the snapshot was restricted to a stored profile's rows
    /// ([`compile_filtered`](StencilSnapshot::compile_filtered)).
    pub fn stored(&self) -> bool {
        self.stored
    }

    /// Row width in bits (request content must match).
    pub fn row_len(&self) -> usize {
        self.row_len
    }

    /// Number of compiled stencils (tracked rows).
    pub fn stencil_count(&self) -> usize {
        self.stencils.len()
    }

    /// Number of chips (units) in the module.
    pub fn units(&self) -> u32 {
        self.units
    }

    /// Every tracked `(unit, row)` pair, in index order. Load generators
    /// use this as the target population.
    pub fn tracked_rows(&self) -> Vec<(u32, RowId)> {
        let mut out = Vec::with_capacity(self.stencils.len());
        let per_unit = self.banks as usize * self.rows_per_bank as usize;
        for (flat, slot) in self.index.iter().enumerate() {
            if *slot == UNTRACKED {
                continue;
            }
            let unit = (flat / per_unit) as u32;
            let rem = flat % per_unit;
            let bank = (rem / self.rows_per_bank as usize) as u32;
            let row = (rem % self.rows_per_bank as usize) as u32;
            out.push((unit, RowId::new(bank, row)));
        }
        out
    }

    /// The scrambler translation tables of a unit, shared with the chip.
    /// `None` for out-of-range units.
    pub fn lut(&self, unit: u32) -> Option<&Arc<ScramblerLut>> {
        self.luts.get(unit as usize)
    }

    /// Whether `(unit, row)` has a compiled stencil.
    pub fn is_tracked(&self, unit: u32, row: RowId) -> bool {
        self.slot(unit, row).is_some()
    }

    /// Evaluates the row's compiled stencil against `content`, writing the
    /// failing system columns into `out` (cleared first, ascending order).
    ///
    /// Returns `true` when the row is tracked. Untracked or out-of-range
    /// rows clear `out` and return `false` — the conservative "no profile,
    /// no exemption" answer. The result is bit-identical to
    /// [`DramChip::compile_stencil`] + [`CouplingStencil::eval`] on the
    /// same inputs.
    ///
    /// [`DramChip::compile_stencil`]: parbor_dram::DramChip::compile_stencil
    pub fn eval_into(&self, unit: u32, row: RowId, content: &RowBits, out: &mut Vec<u32>) -> bool {
        match self.slot(unit, row) {
            Some(slot) => {
                self.stencils[slot].eval_into(content, out);
                true
            }
            None => {
                out.clear();
                false
            }
        }
    }

    fn slot(&self, unit: u32, row: RowId) -> Option<usize> {
        if unit >= self.units || row.bank >= self.banks || row.row >= self.rows_per_bank {
            return None;
        }
        let flat = (unit as usize * self.banks as usize + row.bank as usize)
            * self.rows_per_bank as usize
            + row.row as usize;
        match self.index[flat] {
            UNTRACKED => None,
            slot => Some(slot as usize),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::FailingCell;
    use parbor_dram::{ChipGeometry, ModuleConfig, Vendor};

    fn tiny_module() -> DramModule {
        ModuleConfig::new(Vendor::A)
            .chips(2)
            .geometry(ChipGeometry::tiny())
            .seed(7)
            .build()
            .unwrap()
    }

    #[test]
    fn full_snapshot_matches_direct_stencil_eval() {
        let module = tiny_module();
        let snap = StencilSnapshot::compile(&module);
        assert_eq!(snap.stencil_count(), 2 * 8);
        let content = RowBits::from_fn(snap.row_len(), |i| i % 3 == 0);
        let mut fails = Vec::new();
        for (unit, row) in snap.tracked_rows() {
            assert!(snap.eval_into(unit, row, &content, &mut fails));
            let direct = module.chips()[unit as usize]
                .compile_stencil(row)
                .eval(&content);
            assert_eq!(fails, direct, "unit {unit} row {row:?}");
        }
    }

    #[test]
    fn filtered_snapshot_tracks_only_profiled_rows() {
        let module = tiny_module();
        let profile = FailureProfile {
            failures: vec![
                FailingCell {
                    unit: 1,
                    bank: 0,
                    row: 3,
                    col: 5,
                    value: true,
                },
                FailingCell {
                    unit: 1,
                    bank: 0,
                    row: 3,
                    col: 9,
                    value: false,
                },
                // Out-of-geometry cell: ignored, not a panic.
                FailingCell {
                    unit: 9,
                    bank: 4,
                    row: 999,
                    col: 0,
                    value: true,
                },
            ],
            victim_count: 2,
            discovery_rounds: 0,
            tests_per_level: Vec::new(),
            recursion_tests: 0,
            distances: Vec::new(),
            chipwide_rounds: 0,
        };
        let snap = StencilSnapshot::compile_filtered(&module, &profile);
        assert!(snap.stored());
        assert_eq!(snap.stencil_count(), 1);
        assert_eq!(snap.tracked_rows(), vec![(1, RowId::new(0, 3))]);
        let content = RowBits::ones(snap.row_len());
        let mut fails = Vec::new();
        assert!(snap.eval_into(1, RowId::new(0, 3), &content, &mut fails));
        let direct = module.chips()[1]
            .compile_stencil(RowId::new(0, 3))
            .eval(&content);
        assert_eq!(fails, direct);
        // Untracked row: cleared output, `false`, no panic.
        fails.push(42);
        assert!(!snap.eval_into(0, RowId::new(0, 0), &content, &mut fails));
        assert!(fails.is_empty());
        // Out-of-range coordinates are untracked, not a panic.
        assert!(!snap.eval_into(7, RowId::new(3, 900), &content, &mut fails));
    }
}
