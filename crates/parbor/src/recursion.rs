//! Steps 2–4: the parallel recursive neighbor test (paper §5.2.3) with
//! noise filtering (§5.2.4).
//!
//! Each *round* writes, in every victim's row simultaneously, the victim's
//! failing value everywhere except one candidate region, which gets the
//! opposite value; if the victim's strongly coupled neighbor lies in that
//! region, the victim flips. Rounds are counted exactly as the paper counts
//! tests (Table 1): the first level splits the row in half (2 rounds), and
//! every kept region splits into 8 subregions at each later level
//! (`kept × 8` rounds). Distances are recorded *relative to the victim's own
//! region*, which is what makes rows testable in parallel and results
//! aggregatable across the whole chip (§5.2.2).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use parbor_hal::{RoundArena, RoundExecutor, RoundPlan, TestPort};
use parbor_obs::metrics;
use parbor_obs::{span, RecorderHandle};

use crate::aggregate::DistanceHistogram;
use crate::error::ParborError;
use crate::region::LevelPlan;
use crate::victim::{Victim, VictimKey};

/// Tuning knobs of the recursion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecursionConfig {
    /// Region-size plan; `None` derives the paper plan from the row width.
    pub plan: Option<LevelPlan>,
    /// Keep a distance only if its magnitude count is at least this fraction
    /// of the most frequent magnitude (paper §5.2.4 ranking).
    pub rank_threshold: f64,
    /// Discard a victim (as marginal/weak/VRT) if it failed in more than
    /// `max(discard_fail_fraction × eligible_rounds, 1)` rounds at a level.
    /// Genuinely coupled victims fail in at most a couple of regions per
    /// level; intermittent cells fail in ~30-50 % of all rounds regardless
    /// of region and must be rejected (paper §5.2.4, first filter).
    pub discard_fail_fraction: f64,
}

impl Default for RecursionConfig {
    fn default() -> Self {
        RecursionConfig {
            plan: None,
            rank_threshold: 0.2,
            discard_fail_fraction: 0.25,
        }
    }
}

/// What happened at one recursion level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelOutcome {
    /// Region size at this level.
    pub region_size: usize,
    /// Test rounds executed at this level (the paper's Table 1 columns).
    pub tests: usize,
    /// Distance observations after victim discard, before ranking.
    pub histogram: DistanceHistogram,
    /// Signed region distances kept by ranking.
    pub kept: Vec<i64>,
    /// Victims discarded as marginal at this level.
    pub discarded_victims: usize,
}

/// The result of the full recursion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecursionOutcome {
    /// Per-level outcomes, coarsest first.
    pub levels: Vec<LevelOutcome>,
    /// Final signed neighbor distances in bits (the last level's kept set).
    pub distances: Vec<i64>,
    /// Total rounds across all levels (Table 1's rightmost column).
    pub total_tests: usize,
}

impl RecursionOutcome {
    /// Tests per level, coarsest first (one Table 1 row).
    pub fn tests_per_level(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.tests).collect()
    }
}

/// Runs the parallel recursive neighbor test against a [`TestPort`].
#[derive(Debug, Clone, Default)]
pub struct NeighborRecursion {
    config: RecursionConfig,
    rec: RecorderHandle,
}

impl NeighborRecursion {
    /// Creates a recursion runner with the given configuration.
    pub fn new(config: RecursionConfig) -> Self {
        NeighborRecursion {
            config,
            rec: RecorderHandle::null(),
        }
    }

    /// Attaches a metrics recorder (`recursion.*` and `aggregate.*` metrics,
    /// one `recursion.level` span per level carrying the region size).
    pub fn with_recorder(mut self, rec: RecorderHandle) -> Self {
        self.rec = rec;
        self
    }

    /// Runs the recursion over the selected victims (one per unit/row — see
    /// [`VictimSet::select_for_recursion`](crate::VictimSet::select_for_recursion)).
    ///
    /// # Errors
    ///
    /// * [`ParborError::NoVictims`] if `victims` is empty.
    /// * [`ParborError::InvalidConfig`] if two victims share a row or the
    ///   row width has no valid level plan.
    /// * [`ParborError::NoDistances`] if every distance was filtered as
    ///   noise at some level.
    pub fn run<P: TestPort + ?Sized>(
        &self,
        port: &mut P,
        victims: &[Victim],
    ) -> Result<RecursionOutcome, ParborError> {
        let width = port.geometry().cols_per_row as usize;
        let mut state = RecursionState::start(&self.config, width, victims)?;
        let lookup = RecursionState::victim_lookup(victims);
        let arena = RoundArena::new();
        while !state.is_done() {
            state.step(
                &self.config,
                &self.rec,
                port,
                victims,
                &lookup,
                &arena,
                usize::MAX,
            )?;
        }
        Ok(state.outcome())
    }
}

/// Checkpointable progress of the recursion: everything the level loop
/// accumulates across rounds, and nothing derivable from the config and
/// victim list.
///
/// [`NeighborRecursion::run`] drives one of these to completion in a single
/// call; a checkpointed scan ([`ScanMachine`](crate::ScanMachine))
/// serializes the state between [`step`](RecursionState::step) calls and
/// later resumes against a port fast-forwarded by the rounds already run —
/// the remaining rounds and the final outcome are bit-identical to the
/// uninterrupted run because every round's content is a pure function of
/// (config, victims, kept distances so far).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecursionState {
    /// Current level (index into the level plan).
    level: usize,
    /// Rounds of the current level already executed.
    next_round: usize,
    /// Per-victim liveness (false once discarded as marginal).
    alive: Vec<bool>,
    /// Per-victim fail counts at the current level.
    fails: Vec<usize>,
    /// Per-victim distances observed at the current level, sorted and
    /// deduplicated (set semantics).
    observed: Vec<Vec<i64>>,
    /// Completed level outcomes.
    levels: Vec<LevelOutcome>,
    /// Distances kept at the previous level.
    kept_parents: Vec<i64>,
    /// Rounds executed across all completed levels.
    total_tests: usize,
    /// Whether the final level has completed.
    done: bool,
}

/// The per-round victim regions and per-victim eligibility counts of one
/// level — pure functions of (plan, victims, liveness, kept distances).
struct LevelGeometry {
    round_regions: Vec<Vec<Option<usize>>>,
    eligible: Vec<usize>,
}

impl RecursionState {
    /// Validates the inputs and positions the state before round 0 of
    /// level 0.
    ///
    /// # Errors
    ///
    /// * [`ParborError::NoVictims`] if `victims` is empty.
    /// * [`ParborError::InvalidConfig`] if two victims share a row or the
    ///   row width has no valid level plan.
    pub fn start(
        config: &RecursionConfig,
        width: usize,
        victims: &[Victim],
    ) -> Result<Self, ParborError> {
        if victims.is_empty() {
            return Err(ParborError::NoVictims);
        }
        Self::resolve_plan(config, width)?;
        let mut keys = std::collections::HashSet::new();
        for v in victims {
            if !keys.insert(v.key()) {
                return Err(ParborError::InvalidConfig(format!(
                    "two victims share unit {} {}",
                    v.unit, v.row
                )));
            }
        }
        Ok(RecursionState {
            level: 0,
            next_round: 0,
            alive: vec![true; victims.len()],
            fails: vec![0; victims.len()],
            observed: vec![Vec::new(); victims.len()],
            levels: Vec::new(),
            kept_parents: Vec::new(),
            total_tests: 0,
            done: false,
        })
    }

    /// Whether the final level has completed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Rounds executed so far (completed levels plus the current level's
    /// progress).
    pub fn rounds_done(&self) -> usize {
        self.total_tests + self.next_round
    }

    /// The finished outcome. Meaningful only once [`is_done`](Self::is_done)
    /// returns true (levels completed so far otherwise).
    pub fn outcome(&self) -> RecursionOutcome {
        let distances = self
            .levels
            .last()
            .map(|l| l.kept.clone())
            .unwrap_or_default();
        RecursionOutcome {
            levels: self.levels.clone(),
            distances,
            total_tests: self.total_tests,
        }
    }

    fn resolve_plan(config: &RecursionConfig, width: usize) -> Result<LevelPlan, ParborError> {
        match &config.plan {
            Some(p) => {
                if p.row_bits() != width {
                    return Err(ParborError::InvalidConfig(format!(
                        "plan built for {} bits, port rows have {width}",
                        p.row_bits()
                    )));
                }
                Ok(p.clone())
            }
            None => LevelPlan::paper(width),
        }
    }

    /// Recomputes each round's victim regions and the per-victim eligible
    /// counts for the current level. Candidate generators are (parent
    /// distance, child offset) pairs; level 0 has a single virtual parent
    /// covering the whole row.
    fn level_geometry(&self, plan: &LevelPlan, victims: &[Victim]) -> LevelGeometry {
        let level = self.level;
        let fanout = plan.fanout(level);
        let region_count = plan.region_count(level);
        let parents: Vec<Option<i64>> = if level == 0 {
            vec![None]
        } else {
            self.kept_parents.iter().copied().map(Some).collect()
        };
        let mut round_regions = Vec::with_capacity(parents.len() * fanout);
        let mut eligible = vec![0usize; victims.len()];
        for parent in &parents {
            for child in 0..fanout {
                let mut regions: Vec<Option<usize>> = vec![None; victims.len()];
                for (i, v) in victims.iter().enumerate() {
                    if !self.alive[i] {
                        continue;
                    }
                    let own_parent = match parent {
                        None => 0i64,
                        Some(d) => plan.region_of(v.col as usize, level - 1) as i64 + d,
                    };
                    if parent.is_some()
                        && (own_parent < 0 || own_parent as usize >= plan.region_count(level - 1))
                    {
                        continue; // parent region off the row edge
                    }
                    let region = if level == 0 {
                        child
                    } else {
                        own_parent as usize * fanout + child
                    };
                    if region < region_count {
                        regions[i] = Some(region);
                        eligible[i] += 1;
                    }
                }
                round_regions.push(regions);
            }
        }
        LevelGeometry {
            round_regions,
            eligible,
        }
    }

    /// The flip-attribution index: row-space key → position in the victim
    /// slice. A pure function of the victim list, so callers build it once
    /// per stage and reuse it across every [`step`](RecursionState::step).
    pub fn victim_lookup(victims: &[Victim]) -> HashMap<VictimKey, usize> {
        victims
            .iter()
            .enumerate()
            .map(|(i, v)| (v.key(), i))
            .collect()
    }

    /// Materializes the row images of one round from its victim regions,
    /// drawing backing buffers from the arena pool.
    fn build_round(
        plan: &LevelPlan,
        level: usize,
        width: usize,
        victims: &[Victim],
        regions: &[Option<usize>],
        arena: &RoundArena,
    ) -> RoundPlan {
        let mut round = RoundPlan::new();
        for (i, v) in victims.iter().enumerate() {
            let Some(region) = regions[i] else { continue };
            let (lo, hi) = plan
                .region_range(region, level)
                .expect("region index validated during geometry");
            let mut data = arena.row(width, v.fail_value);
            data.set_range(lo, hi, !v.fail_value);
            data.set(v.col as usize, v.fail_value);
            round.write(v.unit, v.row, data);
        }
        round
    }

    /// Executes up to `budget` rounds of the current level; when the level's
    /// last round completes, runs the discard/aggregate/rank step and
    /// advances to the next level (or marks the recursion done). Returns the
    /// number of rounds executed.
    ///
    /// Within a level every round's content is fixed by the previous level's
    /// kept distances, so any split of the level into consecutive batches is
    /// bit-identical to one batch (an empty plan still costs one round —
    /// exactly how the paper counts tests).
    ///
    /// # Errors
    ///
    /// * [`ParborError::NoDistances`] if every distance was filtered as
    ///   noise at the completed level (the state is dead afterwards).
    /// * Device errors from the port.
    #[allow(clippy::too_many_arguments)]
    pub fn step<P: TestPort + ?Sized>(
        &mut self,
        config: &RecursionConfig,
        rec: &RecorderHandle,
        port: &mut P,
        victims: &[Victim],
        lookup: &HashMap<VictimKey, usize>,
        arena: &RoundArena,
        budget: usize,
    ) -> Result<usize, ParborError> {
        if self.done {
            return Ok(0);
        }
        let width = port.geometry().cols_per_row as usize;
        let plan = Self::resolve_plan(config, width)?;
        let level = self.level;
        let size = plan.sizes()[level];
        let _level_span = span!(*rec, metrics::recursion::LEVEL, size);
        let geometry = self.level_geometry(&plan, victims);
        let rounds_at_level = geometry.round_regions.len();

        let end = self.next_round.saturating_add(budget).min(rounds_at_level);
        let plans: Vec<RoundPlan> = geometry.round_regions[self.next_round..end]
            .iter()
            .map(|regions| Self::build_round(&plan, level, width, victims, regions, arena))
            .collect();
        let mut exec = RoundExecutor::new(port)
            .with_recorder(rec.clone())
            .with_arena(arena.clone())
            .count_rounds_as(metrics::recursion::TESTS);
        for (flips, regions) in exec
            .run_batch(plans)?
            .into_iter()
            .zip(&geometry.round_regions[self.next_round..end])
        {
            for flip in flips {
                let key = VictimKey {
                    unit: flip.unit,
                    row: flip.flip.addr.row(),
                };
                let Some(&i) = lookup.get(&key) else { continue };
                if flip.flip.addr.col != victims[i].col {
                    continue;
                }
                let Some(region) = regions[i] else { continue };
                self.fails[i] += 1;
                let distance =
                    region as i64 - plan.region_of(victims[i].col as usize, level) as i64;
                if let Err(pos) = self.observed[i].binary_search(&distance) {
                    self.observed[i].insert(pos, distance);
                }
            }
        }
        let executed = end - self.next_round;
        self.next_round = end;
        if end == rounds_at_level {
            self.complete_level(
                config,
                rec,
                size,
                rounds_at_level,
                &geometry.eligible,
                plan.levels(),
            )?;
        }
        Ok(executed)
    }

    /// The discard/aggregate/rank step at the end of a level.
    fn complete_level(
        &mut self,
        config: &RecursionConfig,
        rec: &RecorderHandle,
        size: usize,
        rounds_at_level: usize,
        eligible: &[usize],
        total_levels: usize,
    ) -> Result<(), ParborError> {
        // Victim discard: marginal/weak cells fail in most regions.
        let mut discarded = 0usize;
        for (i, &elig) in eligible.iter().enumerate().take(self.alive.len()) {
            let cutoff = (config.discard_fail_fraction * elig as f64).max(1.0);
            if self.alive[i] && elig > 0 && self.fails[i] as f64 > cutoff {
                self.alive[i] = false;
                self.observed[i].clear();
                discarded += 1;
            }
        }

        // Aggregate the surviving observations and rank.
        let mut histogram = DistanceHistogram::new();
        for set in &self.observed {
            for &d in set {
                histogram.record(d);
            }
        }
        let ranked = histogram.rank(config.rank_threshold);
        rec.incr(
            metrics::aggregate::DISTANCES_KEPT,
            ranked.kept().len() as u64,
        );
        rec.incr(
            metrics::aggregate::DISTANCES_DROPPED,
            ranked.dropped().len() as u64,
        );
        rec.incr(metrics::recursion::VICTIMS_DISCARDED, discarded as u64);
        let kept = ranked.kept().to_vec();
        self.total_tests += rounds_at_level;
        self.levels.push(LevelOutcome {
            region_size: size,
            tests: rounds_at_level,
            histogram,
            kept: kept.clone(),
            discarded_victims: discarded,
        });
        self.next_round = 0;
        self.fails.iter_mut().for_each(|f| *f = 0);
        self.observed.iter_mut().for_each(Vec::clear);
        if kept.is_empty() {
            self.done = true; // dead state: no distances survived
            return Err(ParborError::NoDistances);
        }
        self.kept_parents = kept;
        self.level += 1;
        if self.level == total_levels {
            self.done = true;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::victim::VictimScout;
    use parbor_dram::{ChipGeometry, DramChip, RowId, Vendor};

    fn run_vendor(vendor: Vendor, rows: u32, seed: u64) -> (RecursionOutcome, DramChip) {
        let mut chip =
            DramChip::new(ChipGeometry::new(1, rows, 8192).unwrap(), vendor, seed).unwrap();
        let row_ids: Vec<RowId> = (0..rows).map(|r| RowId::new(0, r)).collect();
        let set = VictimScout::new(3).discover(&mut chip, &row_ids).unwrap();
        let victims = set.select_for_recursion(None);
        let outcome = NeighborRecursion::default()
            .run(&mut chip, &victims)
            .unwrap();
        (outcome, chip)
    }

    #[test]
    fn vendor_a_finds_paper_distances_and_counts() {
        let (outcome, _) = run_vendor(Vendor::A, 256, 11);
        assert_eq!(outcome.distances, vec![-48, -16, -8, 8, 16, 48]);
        assert_eq!(outcome.tests_per_level(), vec![2, 8, 8, 24, 48]);
        assert_eq!(outcome.total_tests, 90);
    }

    #[test]
    fn vendor_b_finds_paper_distances_and_counts() {
        let (outcome, _) = run_vendor(Vendor::B, 256, 12);
        assert_eq!(outcome.distances, vec![-64, -1, 1, 64]);
        assert_eq!(outcome.tests_per_level(), vec![2, 8, 8, 24, 24]);
        assert_eq!(outcome.total_tests, 66);
    }

    #[test]
    fn vendor_c_finds_paper_distances_and_counts() {
        let (outcome, _) = run_vendor(Vendor::C, 256, 13);
        assert_eq!(outcome.distances, vec![-49, -33, -16, 16, 33, 49]);
        assert_eq!(outcome.tests_per_level(), vec![2, 8, 8, 24, 48]);
        assert_eq!(outcome.total_tests, 90);
    }

    #[test]
    fn empty_victims_rejected() {
        let mut chip = DramChip::new(ChipGeometry::new(1, 8, 8192).unwrap(), Vendor::A, 1).unwrap();
        let err = NeighborRecursion::default()
            .run(&mut chip, &[])
            .unwrap_err();
        assert!(matches!(err, ParborError::NoVictims));
    }

    #[test]
    fn duplicate_victim_rows_rejected() {
        let mut chip = DramChip::new(ChipGeometry::new(1, 8, 8192).unwrap(), Vendor::A, 1).unwrap();
        let v = |col| Victim {
            unit: 0,
            row: RowId::new(0, 0),
            col,
            fail_value: true,
        };
        let err = NeighborRecursion::default()
            .run(&mut chip, &[v(1), v(2)])
            .unwrap_err();
        assert!(matches!(err, ParborError::InvalidConfig(_)));
    }

    #[test]
    fn level_histograms_follow_figure_11_shape() {
        // Vendor A: L1/L2 keep only distance 0, L3 keeps {0, ±1},
        // L4 keeps {±1, ±2, ±6} (Fig 11a).
        let (outcome, _) = run_vendor(Vendor::A, 256, 21);
        assert_eq!(outcome.levels[0].kept, vec![0]);
        assert_eq!(outcome.levels[1].kept, vec![0]);
        assert_eq!(outcome.levels[2].kept, vec![-1, 0, 1]);
        assert_eq!(outcome.levels[3].kept, vec![-6, -2, -1, 1, 2, 6]);
    }
}
