//! A checkpointable, resumable form of the PARBOR pipeline.
//!
//! [`Parbor::run`](crate::Parbor::run) drives the five steps to completion
//! inside one process. A *deployed* profiler (paper §VII) instead runs as a
//! long campaign that must survive interruption: the orchestrator in
//! `parbor-fleet` periodically persists a [`ScanState`] and, after a crash,
//! rebuilds the device from its spec, fast-forwards its round clock, and
//! continues from the exact round where the checkpoint was taken.
//!
//! [`ScanMachine`] makes that possible by exposing the pipeline as a state
//! machine advanced in bounded round batches. Resume is bit-identical
//! because every round's content is a pure function of the config and the
//! state accumulated so far, and the simulated device's behavior is a pure
//! function of its spec plus the round counter (see
//! [`DramModule::fast_forward`](parbor_dram::DramModule::fast_forward)).
//!
//! ```
//! use parbor_core::{ParborConfig, ScanMachine};
//! use parbor_dram::{ChipGeometry, DramChip, Vendor};
//!
//! # fn main() -> Result<(), parbor_core::ParborError> {
//! let mut chip = DramChip::new(ChipGeometry::new(1, 64, 8192)?, Vendor::A, 1)?;
//! let mut machine = ScanMachine::new(ParborConfig::default());
//! while !machine.is_done() {
//!     machine.advance(&mut chip, 8)?; // checkpoint machine.state() here
//! }
//! assert!(!machine.profile().expect("done").failures.is_empty());
//! # Ok(())
//! # }
//! ```

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use parbor_dram::{BitAddr, RowId};
use parbor_hal::{RoundArena, RoundExecutor, RoundPlan, TestPort};
use parbor_obs::metrics;
use parbor_obs::RecorderHandle;

use crate::chipwide::{ChipwideOutcome, ChipwideTest};
use crate::error::ParborError;
use crate::pipeline::{ParborConfig, ParborReport};
use crate::recursion::{RecursionOutcome, RecursionState};
use crate::victim::{Victim, VictimKey, VictimScout};

/// Address of one cell across the whole port: unit (chip) plus bit address.
///
/// Orderable and usable as a serialized map key, so checkpointed per-cell
/// accumulations serialize deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellKey {
    /// Unit (chip) index within the test port.
    pub unit: u32,
    /// Bank index.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u32,
    /// System column (bit) index within the row.
    pub col: u32,
}

impl CellKey {
    /// Builds the key of one flip location.
    pub fn new(unit: u32, addr: BitAddr) -> Self {
        CellKey {
            unit,
            bank: addr.bank,
            row: addr.row,
            col: addr.col,
        }
    }

    /// The bit address part of the key.
    pub fn addr(&self) -> BitAddr {
        BitAddr::new(self.bank, self.row, self.col)
    }
}

// Lets `CellKey` key serialized maps (JSON object keys must be strings).
impl serde::MapKey for CellKey {
    fn to_key(&self) -> String {
        format!("{}:{}:{}:{}", self.unit, self.bank, self.row, self.col)
    }

    fn from_key(s: &str) -> Result<Self, serde::Error> {
        let bad = || serde::Error::msg(format!("invalid CellKey map key {s:?}"));
        let mut parts = s.splitn(4, ':');
        let mut next = || parts.next().and_then(|p| p.parse().ok()).ok_or_else(bad);
        Ok(CellKey {
            unit: next()?,
            bank: next()?,
            row: next()?,
            col: next()?,
        })
    }
}

/// Per-cell accumulation of the discovery stage: how often the cell failed
/// and the value written at its first failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeenCell {
    /// Rounds in which the cell flipped.
    pub fails: usize,
    /// The value written at the first observed failure (the cell's charged
    /// polarity).
    pub value: bool,
}

/// Checkpointable progress of the discovery stage.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DiscoverState {
    next_round: usize,
    seen: BTreeMap<CellKey, SeenCell>,
}

impl DiscoverState {
    /// Executes up to `budget` of the scout's remaining rounds; returns the
    /// number executed. Complete when it returns less than asked and
    /// [`is_done`](Self::is_done) is true.
    fn step<P: TestPort + ?Sized>(
        &mut self,
        scout: &VictimScout,
        rec: &RecorderHandle,
        port: &mut P,
        rows: &[RowId],
        arena: &RoundArena,
        budget: usize,
    ) -> Result<usize, ParborError> {
        let width = port.geometry().cols_per_row as usize;
        let units = port.units();
        let end = self.next_round.saturating_add(budget).min(scout.rounds());
        // Only the rounds actually executed this step are materialized —
        // the already-run prefix is never rebuilt on resume.
        let batch: Vec<RoundPlan> = (self.next_round..end)
            .map(|i| scout.round_plan_in(i, units, rows, width, arena))
            .collect();
        let mut exec = RoundExecutor::new(port)
            .with_recorder(rec.clone())
            .with_arena(arena.clone())
            .count_rounds_as(metrics::discover::ROUNDS)
            .observe_flips_as(metrics::discover::ROUND_FLIPS);
        for flips in exec.run_batch(batch)? {
            for flip in flips {
                self.seen
                    .entry(CellKey::new(flip.unit, flip.flip.addr))
                    .or_insert(SeenCell {
                        fails: 0,
                        value: flip.flip.expected,
                    })
                    .fails += 1;
            }
        }
        let executed = end - self.next_round;
        self.next_round = end;
        Ok(executed)
    }

    fn is_done(&self, scout: &VictimScout) -> bool {
        self.next_round >= scout.rounds()
    }
}

/// Checkpointable progress of the chip-wide test.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChipwideState {
    next_round: usize,
    /// First-failure polarity per failing cell. Only rounds executed so far
    /// contribute, and stepping preserves round order, so the "first
    /// failure wins" rule matches the batched run exactly.
    failing: BTreeMap<CellKey, bool>,
}

impl ChipwideState {
    fn step<P: TestPort + ?Sized>(
        &mut self,
        test: &ChipwideTest,
        rec: &RecorderHandle,
        port: &mut P,
        rows: &[RowId],
        arena: &RoundArena,
        budget: usize,
    ) -> Result<usize, ParborError> {
        let width = port.geometry().cols_per_row as usize;
        let units = port.units();
        let end = self.next_round.saturating_add(budget).min(test.rounds());
        // Only the rounds actually executed this step are materialized —
        // the already-run prefix is never rebuilt on resume.
        let batch: Vec<RoundPlan> = (self.next_round..end)
            .map(|i| test.round_plan_in(i, units, rows, width, arena))
            .collect();
        let mut exec = RoundExecutor::new(port)
            .with_recorder(rec.clone())
            .with_arena(arena.clone())
            .count_rounds_as(metrics::chipwide::ROUNDS)
            .observe_flips_as(metrics::chipwide::ROUND_FLIPS);
        for flips in exec.run_batch(batch)? {
            for flip in flips {
                self.failing
                    .entry(CellKey::new(flip.unit, flip.flip.addr))
                    .or_insert(flip.flip.expected);
            }
        }
        let executed = end - self.next_round;
        self.next_round = end;
        Ok(executed)
    }

    fn into_outcome(self) -> ChipwideOutcome {
        ChipwideOutcome {
            rounds: self.next_round,
            failing: self
                .failing
                .into_iter()
                .map(|(k, v)| ((k.unit, k.addr()), v))
                .collect(),
        }
    }
}

/// One failing cell of a finished scan, with the polarity it failed under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FailingCell {
    /// Unit (chip) index.
    pub unit: u32,
    /// Bank index.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u32,
    /// System column of the cell.
    pub col: u32,
    /// The data the cell held when it failed (its charged polarity) — what
    /// DC-REF's content check needs.
    pub value: bool,
}

/// The serializable end product of one scan — what the fleet's profile
/// store persists and the DC-REF/mitigation path reads back.
///
/// Equivalent to a [`ParborReport`] with the failing set flattened into a
/// deterministically sorted list (reports hold a hash map, which neither
/// serializes nor compares bytewise).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureProfile {
    /// Victims found by discovery.
    pub victim_count: usize,
    /// Rounds spent on discovery (10 in the paper's setup).
    pub discovery_rounds: usize,
    /// Recursion rounds per level, coarsest first (one Table 1 row).
    pub tests_per_level: Vec<usize>,
    /// Total recursion rounds (Table 1's rightmost column).
    pub recursion_tests: usize,
    /// Final signed neighbor distances in bits.
    pub distances: Vec<i64>,
    /// Chip-wide test rounds including the inverse-polarity pass.
    pub chipwide_rounds: usize,
    /// Every distinct failing cell, sorted by (unit, bank, row, col).
    pub failures: Vec<FailingCell>,
}

impl FailureProfile {
    /// Flattens a pipeline report into a profile.
    pub fn from_report(report: &ParborReport) -> Self {
        let mut failures: Vec<FailingCell> = report
            .chipwide
            .failing
            .iter()
            .map(|(&(unit, addr), &value)| FailingCell {
                unit,
                bank: addr.bank,
                row: addr.row,
                col: addr.col,
                value,
            })
            .collect();
        failures.sort();
        FailureProfile {
            victim_count: report.victim_count,
            discovery_rounds: report.discovery_rounds,
            tests_per_level: report.recursion.tests_per_level(),
            recursion_tests: report.recursion.total_tests,
            distances: report.recursion.distances.clone(),
            chipwide_rounds: report.chipwide.rounds,
            failures,
        }
    }

    /// Total rounds across all phases (the paper's test budget).
    pub fn total_rounds(&self) -> usize {
        self.discovery_rounds + self.recursion_tests + self.chipwide_rounds
    }

    /// Number of distinct failing cells.
    pub fn failure_count(&self) -> usize {
        self.failures.len()
    }
}

/// Which pipeline stage a [`ScanState`] is in, with that stage's progress.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StageState {
    /// Step 1: victim discovery.
    Discover {
        /// Discovery progress.
        state: DiscoverState,
    },
    /// Steps 2–4: the recursion over the selected victims.
    Recursion {
        /// Victims found by discovery (the full population's size).
        victim_count: usize,
        /// Victims selected for the recursion (one per unit/row).
        selected: Vec<Victim>,
        /// Recursion progress.
        state: RecursionState,
    },
    /// Step 5: the neighbor-aware chip-wide test.
    Chipwide {
        /// Victims found by discovery.
        victim_count: usize,
        /// The finished recursion outcome.
        recursion: RecursionOutcome,
        /// Chip-wide progress.
        state: ChipwideState,
    },
    /// All stages finished.
    Done {
        /// The final profile.
        profile: FailureProfile,
    },
}

/// The complete checkpointable state of one scan: the config it runs under,
/// the port rounds executed so far, and the active stage's progress.
///
/// Serializing this (the shims' `serde` derives) and deserializing it in
/// another process loses nothing: a [`ScanMachine`] rebuilt from the state —
/// against a port fast-forwarded by [`rounds_done`](Self::rounds_done) —
/// continues bit-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScanState {
    /// The scan's pipeline configuration.
    pub config: ParborConfig,
    /// Port rounds executed so far (the device fast-forward amount on
    /// resume).
    pub rounds_done: u64,
    /// The active stage and its progress.
    pub stage: StageState,
}

impl ScanState {
    /// A fresh state positioned before discovery round 0.
    pub fn new(config: ParborConfig) -> Self {
        ScanState {
            config,
            rounds_done: 0,
            stage: StageState::Discover {
                state: DiscoverState::default(),
            },
        }
    }

    /// Short name of the active stage (`discover`, `recursion`, `chipwide`,
    /// `done`).
    pub fn stage_name(&self) -> &'static str {
        match &self.stage {
            StageState::Discover { .. } => "discover",
            StageState::Recursion { .. } => "recursion",
            StageState::Chipwide { .. } => "chipwide",
            StageState::Done { .. } => "done",
        }
    }
}

/// Drives a [`ScanState`] against a [`TestPort`] in bounded round batches.
///
/// Behaves exactly like [`Parbor::run`](crate::Parbor::run) — same rounds in
/// the same order, same outcome — but can stop between any two rounds and
/// continue later, in this process or another (see the module docs).
#[derive(Debug, Clone)]
pub struct ScanMachine {
    state: ScanState,
    rec: RecorderHandle,
    /// Buffer pool shared across every stage and the port for the machine's
    /// whole lifetime — a pure performance device, never checkpointed.
    arena: RoundArena,
    /// Cached flip-attribution index of the recursion stage's victims,
    /// rebuilt lazily after construction or resume.
    lookup: Option<HashMap<VictimKey, usize>>,
}

impl ScanMachine {
    /// A machine at the start of a fresh scan.
    pub fn new(config: ParborConfig) -> Self {
        ScanMachine {
            state: ScanState::new(config),
            rec: RecorderHandle::null(),
            arena: RoundArena::new(),
            lookup: None,
        }
    }

    /// A machine resuming from a checkpointed state.
    ///
    /// The port passed to [`advance`](Self::advance) must be in the same
    /// device state as when the checkpoint was taken — for a simulated
    /// module, rebuilt from its spec and fast-forwarded by
    /// [`ScanState::rounds_done`].
    pub fn from_state(state: ScanState) -> Self {
        ScanMachine {
            state,
            rec: RecorderHandle::null(),
            arena: RoundArena::new(),
            lookup: None,
        }
    }

    /// Attaches a metrics recorder (stage counters, as in the one-shot
    /// pipeline).
    pub fn with_recorder(mut self, rec: RecorderHandle) -> Self {
        self.rec = rec;
        self
    }

    /// The current state (what a checkpoint persists).
    pub fn state(&self) -> &ScanState {
        &self.state
    }

    /// Consumes the machine, returning the state.
    pub fn into_state(self) -> ScanState {
        self.state
    }

    /// Port rounds executed so far.
    pub fn rounds_done(&self) -> u64 {
        self.state.rounds_done
    }

    /// Whether every stage has finished.
    pub fn is_done(&self) -> bool {
        matches!(self.state.stage, StageState::Done { .. })
    }

    /// The final profile, once [`is_done`](Self::is_done).
    pub fn profile(&self) -> Option<&FailureProfile> {
        match &self.state.stage {
            StageState::Done { profile } => Some(profile),
            _ => None,
        }
    }

    fn rows_for<P: TestPort + ?Sized>(&self, port: &P) -> Vec<RowId> {
        match &self.state.config.rows {
            Some(rows) => rows.clone(),
            None => port.geometry().rows().collect(),
        }
    }

    /// Executes up to `budget` rounds of the active stage; when a stage's
    /// last round completes, transitions to the next stage (transitions
    /// cost zero rounds, so the checkpoint after a transition already holds
    /// the next stage's initial state). Returns the rounds executed — `0`
    /// once done.
    ///
    /// # Errors
    ///
    /// * [`ParborError::NoVictims`] when discovery completes empty.
    /// * [`ParborError::NoDistances`] when the recursion filters everything.
    /// * Device errors from the port. The state is dead after an error.
    pub fn advance<P: TestPort + ?Sized>(
        &mut self,
        port: &mut P,
        budget: usize,
    ) -> Result<usize, ParborError> {
        let rows = self.rows_for(port);
        let executed = match &mut self.state.stage {
            StageState::Discover { state } => {
                let scout = VictimScout::new(self.state.config.discovery_seed)
                    .with_recorder(self.rec.clone());
                let executed = state.step(&scout, &self.rec, port, &rows, &self.arena, budget)?;
                if state.is_done(&scout) {
                    let victims = scout.finish(
                        state
                            .seen
                            .iter()
                            .map(|(k, s)| ((k.unit, k.addr()), (s.fails, s.value))),
                    );
                    if victims.is_empty() {
                        return Err(ParborError::NoVictims);
                    }
                    let selected = victims.select_for_recursion(self.state.config.sample_limit);
                    let width = port.geometry().cols_per_row as usize;
                    let rec_state =
                        RecursionState::start(&self.state.config.recursion, width, &selected)?;
                    self.state.stage = StageState::Recursion {
                        victim_count: victims.len(),
                        selected,
                        state: rec_state,
                    };
                }
                executed
            }
            StageState::Recursion {
                victim_count,
                selected,
                state,
            } => {
                let lookup = self
                    .lookup
                    .get_or_insert_with(|| RecursionState::victim_lookup(selected));
                let executed = state.step(
                    &self.state.config.recursion,
                    &self.rec,
                    port,
                    selected,
                    lookup,
                    &self.arena,
                    budget,
                )?;
                if state.is_done() {
                    let recursion = state.outcome();
                    let width = port.geometry().cols_per_row as usize;
                    ChipwideTest::new(&recursion.distances, width)?;
                    self.state.stage = StageState::Chipwide {
                        victim_count: *victim_count,
                        recursion,
                        state: ChipwideState::default(),
                    };
                }
                executed
            }
            StageState::Chipwide {
                victim_count,
                recursion,
                state,
            } => {
                let width = port.geometry().cols_per_row as usize;
                let test =
                    ChipwideTest::new(&recursion.distances, width)?.with_recorder(self.rec.clone());
                let executed = state.step(&test, &self.rec, port, &rows, &self.arena, budget)?;
                let total = test.rounds();
                if state.next_round >= total {
                    let chipwide = std::mem::take(state).into_outcome();
                    self.rec
                        .incr(metrics::chipwide::FAILURES, chipwide.failure_count() as u64);
                    let report = ParborReport {
                        victim_count: *victim_count,
                        discovery_rounds: VictimScout::new(self.state.config.discovery_seed)
                            .rounds(),
                        recursion: recursion.clone(),
                        chipwide,
                    };
                    self.state.stage = StageState::Done {
                        profile: FailureProfile::from_report(&report),
                    };
                }
                executed
            }
            StageState::Done { .. } => 0,
        };
        self.state.rounds_done += executed as u64;
        Ok(executed)
    }

    /// Runs the remaining stages to completion and returns the profile.
    ///
    /// # Errors
    ///
    /// See [`advance`](Self::advance).
    pub fn run_to_completion<P: TestPort + ?Sized>(
        &mut self,
        port: &mut P,
    ) -> Result<&FailureProfile, ParborError> {
        while !self.is_done() {
            self.advance(port, usize::MAX)?;
        }
        Ok(self.profile().expect("machine is done"))
    }
}

// Compile-time guard: checkpoint lookups key on `CellKey`, whose `HashMap`
// twin in reports keys on `(u32, BitAddr)`; keep the conversion total.
#[allow(dead_code)]
fn _cellkey_roundtrip(map: HashMap<(u32, BitAddr), bool>) -> Vec<CellKey> {
    map.keys().map(|&(u, a)| CellKey::new(u, a)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Parbor;
    use parbor_dram::{ChipGeometry, DramChip, ModuleSpec, Vendor};

    fn fresh_chip(vendor: Vendor, seed: u64) -> DramChip {
        DramChip::new(ChipGeometry::new(1, 64, 8192).unwrap(), vendor, seed).unwrap()
    }

    #[test]
    fn machine_matches_one_shot_pipeline() {
        for (vendor, seed) in [(Vendor::A, 1), (Vendor::B, 1), (Vendor::C, 2)] {
            let config = ParborConfig::default();
            let report = Parbor::new(config.clone())
                .run(&mut fresh_chip(vendor, seed))
                .unwrap();
            let expected = FailureProfile::from_report(&report);

            let mut machine = ScanMachine::new(config);
            let profile = machine
                .run_to_completion(&mut fresh_chip(vendor, seed))
                .unwrap();
            assert_eq!(profile, &expected, "vendor {vendor:?}");
        }
    }

    #[test]
    fn single_round_stepping_matches_batched() {
        let config = ParborConfig::default();
        let mut machine = ScanMachine::new(config.clone());
        let batched = machine
            .run_to_completion(&mut fresh_chip(Vendor::A, 3))
            .unwrap()
            .clone();

        let mut stepped = ScanMachine::new(config);
        let mut chip = fresh_chip(Vendor::A, 3);
        let mut rounds = 0u64;
        while !stepped.is_done() {
            rounds += stepped.advance(&mut chip, 1).unwrap() as u64;
        }
        assert_eq!(stepped.rounds_done(), rounds);
        assert_eq!(chip.rounds_run(), rounds);
        assert_eq!(stepped.profile().unwrap(), &batched);
    }

    #[test]
    fn checkpoint_resume_mid_scan_is_bit_identical() {
        // Interrupt after an arbitrary prefix, serialize the state, rebuild
        // a *fresh* device fast-forwarded by the rounds run, and finish.
        let spec = ModuleSpec {
            chips: 2,
            geometry: ChipGeometry::new(1, 48, 8192).unwrap(),
            seed: 77,
            ..ModuleSpec::new(Vendor::B)
        };
        let config = ParborConfig::default();
        let mut clean = ScanMachine::new(config.clone());
        let expected = clean
            .run_to_completion(&mut spec.build().unwrap())
            .unwrap()
            .clone();

        for k in [1usize, 7, 11, 40] {
            let mut machine = ScanMachine::new(config.clone());
            let mut module = spec.build().unwrap();
            let mut left = k;
            while left > 0 && !machine.is_done() {
                left -= machine.advance(&mut module, left).unwrap().min(left);
                if machine.rounds_done() as usize >= k {
                    break;
                }
            }
            // "Crash": keep only the serialized state.
            let json = serde_json::to_string(machine.state()).unwrap();
            drop(machine);
            drop(module);

            let state: ScanState = serde_json::from_str(&json).unwrap();
            let mut resumed = ScanMachine::from_state(state);
            let mut module = spec.build().unwrap();
            module.fast_forward(resumed.rounds_done());
            let profile = resumed.run_to_completion(&mut module).unwrap();
            assert_eq!(profile, &expected, "resume after {k} rounds diverged");
        }
    }

    #[test]
    fn state_json_roundtrip_is_lossless() {
        let mut machine = ScanMachine::new(ParborConfig::default());
        let mut chip = fresh_chip(Vendor::C, 4);
        machine.advance(&mut chip, 5).unwrap();
        let json = serde_json::to_string(machine.state()).unwrap();
        let back: ScanState = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, machine.state());
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn empty_discovery_reports_no_victims() {
        // A single row cannot produce victims on a clean geometry with an
        // absurd config? Use rows: a region with no faults is unlikely on
        // simulated chips, so instead check the machine surfaces NoVictims
        // by scanning one row (too few cells for discovery on vendor B's
        // sparse rates at this seed).
        let config = ParborConfig {
            rows: Some(vec![RowId::new(0, 0)]),
            ..ParborConfig::default()
        };
        let mut machine = ScanMachine::new(config);
        let mut chip = fresh_chip(Vendor::B, 1);
        let result = machine.run_to_completion(&mut chip);
        if let Err(e) = result {
            assert!(matches!(
                e,
                ParborError::NoVictims | ParborError::NoDistances
            ));
        }
    }
}
