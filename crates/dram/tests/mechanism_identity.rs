//! Bit-identity pins for the mechanism refactor.
//!
//! The digests below were captured from the simulator *before* the failure
//! model was refactored behind the `FailureMechanism` trait. A chip with an
//! empty extra-mechanism stack (and one whose extras are all at rate or
//! threshold zero) must keep reproducing them bit for bit.

use parbor_dram::{ChipGeometry, DramModule, ModuleConfig, ModuleId, PatternKind, Vendor};
use parbor_hal::{MechanismSpec, ParallelMode, RowId, RowWrite, TestPort};
use proptest::prelude::*;

fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Order-sensitive fold over every flip a scenario produces.
fn fold(digest: u64, words: &[u64]) -> u64 {
    words.iter().fold(digest, |acc, &w| mix64(acc ^ w))
}

const ROWS: u32 = 48;
const COLS: u32 = 8192;
const ROUNDS: usize = 6;

fn scenario_digest(port: &mut dyn TestPort) -> u64 {
    let patterns = [
        PatternKind::Solid(true),
        PatternKind::ColStripe { period: 2 },
        PatternKind::Checkerboard,
    ];
    let mut digest = 0x5EED_0001u64;
    for round in 0..ROUNDS {
        let pattern = &patterns[round % patterns.len()];
        let invert = (round / patterns.len()) % 2 == 1;
        let mut writes = Vec::new();
        for unit in 0..port.units() {
            for r in 0..ROWS {
                let row = RowId::new(0, r);
                let data = if invert {
                    pattern.inverse().row_bits(r, COLS as usize)
                } else {
                    pattern.row_bits(r, COLS as usize)
                };
                writes.push(RowWrite { unit, row, data });
            }
        }
        for flip in port.run_round(writes).expect("round") {
            digest = fold(
                digest,
                &[
                    u64::from(flip.unit),
                    u64::from(flip.flip.addr.bank),
                    u64::from(flip.flip.addr.row),
                    u64::from(flip.flip.addr.col),
                    u64::from(flip.flip.expected),
                ],
            );
        }
    }
    digest
}

fn build_module(vendor: Vendor, seed: u64, mode: ParallelMode) -> parbor_dram::DramModule {
    let mut module = ModuleConfig::new(vendor)
        .geometry(ChipGeometry::new(1, ROWS, COLS).expect("geometry"))
        .chips(2)
        .seed(seed)
        .module_id(ModuleId(7))
        .build()
        .expect("module");
    module.set_parallel_mode(mode);
    module
}

/// Digests captured at commit `ed640c5` (pre-refactor), `ParallelMode::Never`.
const GOLDEN: [(Vendor, u64, u64); 6] = [
    (Vendor::A, 1, 0x2186_B612_824E_415E),
    (Vendor::A, 7, 0xE9E9_6E2C_E088_7C47),
    (Vendor::B, 1, 0xF9FA_437D_C14C_BA50),
    (Vendor::B, 7, 0x7B49_1935_1479_8C43),
    (Vendor::C, 1, 0x8698_A4E1_144B_28C0),
    (Vendor::C, 7, 0x5998_9DEF_3F17_0707),
];

#[test]
fn empty_stack_matches_pre_refactor_digests() {
    for (vendor, seed, want) in GOLDEN {
        let got = scenario_digest(&mut build_module(vendor, seed, ParallelMode::Never));
        assert_eq!(got, want, "({vendor:?}, seed {seed}) drifted from golden");
    }
}

#[test]
fn parallel_eval_matches_pre_refactor_digests() {
    for (vendor, seed, want) in GOLDEN {
        let got = scenario_digest(&mut build_module(vendor, seed, ParallelMode::Always));
        assert_eq!(
            got, want,
            "({vendor:?}, seed {seed}) drifted from golden under parallel eval"
        );
    }
}

#[test]
fn zeroed_mechanism_stack_matches_pre_refactor_digests() {
    // Every extra mechanism at rate/threshold zero must be a no-op: the
    // stack is walked, but no flip may escape and no RNG state may leak
    // into the base model.
    let specs = MechanismSpec::parse_stack("hammer=rate:0;press=rate:0;drift=rate:0")
        .expect("zero-rate stack parses");
    for (vendor, seed, want) in GOLDEN {
        let mut module = ModuleConfig::new(vendor)
            .geometry(ChipGeometry::new(1, ROWS, COLS).expect("geometry"))
            .chips(2)
            .seed(seed)
            .module_id(ModuleId(7))
            .mechanisms(specs.clone())
            .build()
            .expect("module");
        module.set_parallel_mode(ParallelMode::Never);
        let got = scenario_digest(&mut module);
        assert_eq!(
            got, want,
            "({vendor:?}, seed {seed}) zero-rate mechanism stack is not inert"
        );
    }
}

#[test]
fn active_stack_is_deterministic_across_worker_counts() {
    // A live mechanism stack must still be a pure function of (spec, seed,
    // round): worker count and parallel mode must not change which flips
    // are emitted or their order.
    let specs = MechanismSpec::parse_stack("hammer=thresh:100k,rate:2e-3;drift=rate:1e-3,period:4")
        .expect("stack parses");
    let build = |mode: ParallelMode| {
        let mut module = ModuleConfig::new(Vendor::B)
            .geometry(ChipGeometry::new(1, ROWS, COLS).expect("geometry"))
            .chips(2)
            .seed(7)
            .module_id(ModuleId(7))
            .mechanisms(specs.clone())
            .build()
            .expect("module");
        module.set_parallel_mode(mode);
        module
    };
    let baseline = scenario_digest(&mut build(ParallelMode::Never));
    assert_ne!(
        baseline, GOLDEN[3].2,
        "active stack should perturb the flip stream"
    );
    for mode in [ParallelMode::Always, ParallelMode::Auto] {
        let got = scenario_digest(&mut build(mode));
        assert_eq!(got, baseline, "digest drifted under {mode:?}");
    }
}

/// Smaller scenario used by the property tests below (vendor C's 128-column
/// tile span keeps the geometry cheap enough for 64 cases).
fn small_digest(mut module: DramModule) -> u64 {
    let patterns = [
        PatternKind::Solid(true),
        PatternKind::ColStripe { period: 2 },
    ];
    let mut digest = 0x5EED_0002u64;
    for round in 0..3 {
        let pattern = &patterns[round % patterns.len()];
        let mut writes = Vec::new();
        for unit in 0..module.units() {
            for r in 0..12 {
                let row = RowId::new(0, r);
                writes.push(RowWrite {
                    unit,
                    row,
                    data: pattern.row_bits(r, 128),
                });
            }
        }
        for flip in module.run_round(writes).expect("round") {
            digest = fold(
                digest,
                &[
                    u64::from(flip.unit),
                    u64::from(flip.flip.addr.bank),
                    u64::from(flip.flip.addr.row),
                    u64::from(flip.flip.addr.col),
                    u64::from(flip.flip.expected),
                ],
            );
        }
    }
    digest
}

fn small_module(seed: u64, stack: &str, mode: ParallelMode) -> DramModule {
    let mut config = ModuleConfig::new(Vendor::C)
        .geometry(ChipGeometry::new(1, 12, 128).expect("geometry"))
        .chips(2)
        .seed(seed)
        .module_id(ModuleId(3));
    if !stack.is_empty() {
        config = config.mechanisms(MechanismSpec::parse_stack(stack).expect("stack parses"));
    }
    let mut module = config.build().expect("module");
    module.set_parallel_mode(mode);
    module
}

proptest! {
    /// An empty stack and every individually-zeroed mechanism are
    /// bit-identical to the pre-refactor device for any fault seed.
    #[test]
    fn zeroed_stacks_are_inert_for_any_seed(seed in any::<u64>(), which in 0usize..4) {
        let stack = [
            "hammer=rate:0",
            "press=rate:0",
            "drift=rate:0",
            "hammer=rate:0;press=rate:0;drift=rate:0",
        ][which];
        let bare = small_digest(small_module(seed, "", ParallelMode::Never));
        let zeroed = small_digest(small_module(seed, stack, ParallelMode::Never));
        prop_assert_eq!(bare, zeroed);
    }

    /// Digests are a pure function of (seed, stack): parallel evaluation
    /// must reproduce the serial flip stream exactly, live stack included.
    #[test]
    fn digests_do_not_depend_on_worker_count(seed in any::<u64>(), live in any::<bool>()) {
        let stack = if live { "hammer=thresh:100k,rate:2e-3;drift=rate:1e-3,period:4" } else { "" };
        let serial = small_digest(small_module(seed, stack, ParallelMode::Never));
        let threaded = small_digest(small_module(seed, stack, ParallelMode::Always));
        prop_assert_eq!(serial, threaded);
    }
}

#[test]
fn mechanism_rounds_emit_only_registered_metrics() {
    use parbor_obs::{metrics, InMemoryRecorder, RecorderHandle};
    let rec = InMemoryRecorder::handle();
    let module = small_module(
        7,
        "hammer=thresh:100k,rate:2e-3;drift=rate:1e-3,period:4",
        ParallelMode::Never,
    )
    .with_recorder(RecorderHandle::from(rec.clone()));
    small_digest(module);
    assert!(
        rec.counter(metrics::mech::ROUNDS) > 0,
        "live stack recorded no mech.rounds"
    );
    let unregistered: Vec<String> = rec
        .snapshot()
        .metric_names()
        .into_iter()
        .filter(|name| !metrics::is_registered(name))
        .collect();
    assert!(
        unregistered.is_empty(),
        "mechanism rounds emitted unregistered metric names {unregistered:?}"
    );
}
