//! Construction and analysis of *tile walks*.
//!
//! A tile walk is the order in which a tile's physical cell positions pick up
//! system address offsets: `walk[j]` is the system offset held by physical
//! position `j`. The set of successive differences `walk[j+1] - walk[j]` is
//! exactly the set of system-address **neighbor distances** a tester like
//! PARBOR can observe, so building a vendor scrambler with a prescribed
//! distance set reduces to finding a permutation walk whose steps all lie in
//! that set — a Hamiltonian path in the graph whose edges connect offsets
//! differing by an allowed step.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// Errors from walk construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WalkError {
    /// No walk of the requested length exists with the given steps.
    NoWalk {
        /// Requested walk length.
        len: usize,
        /// Allowed step magnitudes.
        steps: Vec<i64>,
    },
    /// The request itself was malformed (empty steps, zero length, ...).
    Invalid(String),
}

impl fmt::Display for WalkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalkError::NoWalk { len, steps } => {
                write!(f, "no walk of length {len} with steps {steps:?}")
            }
            WalkError::Invalid(msg) => write!(f, "invalid walk request: {msg}"),
        }
    }
}

impl Error for WalkError {}

/// Verifies that `walk` is a permutation of `0..walk.len()`.
pub(crate) fn is_permutation(walk: &[usize]) -> bool {
    let n = walk.len();
    let mut seen = vec![false; n];
    for &v in walk {
        if v >= n || seen[v] {
            return false;
        }
        seen[v] = true;
    }
    true
}

/// [`is_permutation`] over the dense `u32` tables a compiled scrambler LUT
/// stores.
pub(crate) fn is_permutation_table(table: &[u32]) -> bool {
    let n = table.len();
    let mut seen = vec![false; n];
    for &v in table {
        let v = v as usize;
        if v >= n || seen[v] {
            return false;
        }
        seen[v] = true;
    }
    true
}

/// The set of absolute successive differences of a walk.
///
/// This is the neighbor-distance set that a system-level tester observes for
/// cells mapped through a scrambler built on this walk.
///
/// # Examples
///
/// ```
/// use parbor_dram::walk_distance_set;
///
/// assert_eq!(walk_distance_set(&[0, 2, 1, 3]), vec![1, 2]);
/// ```
pub fn walk_distance_set(walk: &[usize]) -> Vec<u64> {
    let mut set = BTreeSet::new();
    for pair in walk.windows(2) {
        set.insert((pair[1] as i64 - pair[0] as i64).unsigned_abs());
    }
    set.into_iter().collect()
}

/// Finds a permutation of `0..len` whose successive differences all have
/// magnitudes in `steps` (a Hamiltonian path with prescribed step sizes),
/// using depth-first search with a least-constrained start.
///
/// Used to build custom scramblers with a chosen neighbor-distance set; the
/// built-in vendor walks are hand-constructed and merely validated against
/// this module's predicates.
///
/// # Errors
///
/// Returns [`WalkError::Invalid`] for malformed requests and
/// [`WalkError::NoWalk`] when the search space is exhausted.
///
/// # Examples
///
/// ```
/// use parbor_dram::{hamiltonian_walk, walk_distance_set};
///
/// # fn main() -> Result<(), parbor_dram::WalkError> {
/// let walk = hamiltonian_walk(16, &[1, 4])?;
/// assert!(walk_distance_set(&walk).iter().all(|d| [1, 4].contains(d)));
/// # Ok(())
/// # }
/// ```
pub fn hamiltonian_walk(len: usize, steps: &[u64]) -> Result<Vec<usize>, WalkError> {
    if len == 0 {
        return Err(WalkError::Invalid("walk length must be nonzero".into()));
    }
    if steps.is_empty() || steps.contains(&0) {
        return Err(WalkError::Invalid(
            "steps must be nonempty and nonzero".into(),
        ));
    }
    if len == 1 {
        return Ok(vec![0]);
    }
    let signed: Vec<i64> = steps
        .iter()
        .flat_map(|&s| [s as i64, -(s as i64)])
        .collect();

    let mut walk = Vec::with_capacity(len);
    let mut used = vec![false; len];
    // Try every starting offset with a bounded search per start; low
    // offsets tend to succeed first and keep the result deterministic.
    for start in 0..len {
        walk.clear();
        used.fill(false);
        walk.push(start);
        used[start] = true;
        let mut budget = 200_000usize * len.max(1);
        if dfs(&mut walk, &mut used, &signed, len, &mut budget) == Some(true) {
            return Ok(walk);
        }
    }
    Err(WalkError::NoWalk { len, steps: signed })
}

/// Bounded DFS with Warnsdorff ordering (fewest onward moves first).
/// Returns `Some(true)` on success, `Some(false)` on exhausted subtree, and
/// `None` when the node budget ran out.
fn dfs(
    walk: &mut Vec<usize>,
    used: &mut [bool],
    steps: &[i64],
    len: usize,
    budget: &mut usize,
) -> Option<bool> {
    if walk.len() == len {
        return Some(true);
    }
    if *budget == 0 {
        return None;
    }
    *budget -= 1;
    let cur = *walk.last().expect("walk is nonempty") as i64;
    let degree = |x: usize| -> usize {
        steps
            .iter()
            .filter(|&&s| {
                let y = x as i64 + s;
                y >= 0 && (y as usize) < len && !used[y as usize]
            })
            .count()
    };
    let mut candidates: Vec<usize> = steps
        .iter()
        .filter_map(|&s| {
            let next = cur + s;
            (next >= 0 && (next as usize) < len && !used[next as usize]).then_some(next as usize)
        })
        .collect();
    candidates.sort_by_key(|&c| (degree(c), c));
    for next in candidates {
        used[next] = true;
        walk.push(next);
        match dfs(walk, used, steps, len, budget) {
            Some(true) => return Some(true),
            Some(false) => {}
            None => {
                walk.pop();
                used[next] = false;
                return None;
            }
        }
        walk.pop();
        used[next] = false;
    }
    Some(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_walk_has_distance_one() {
        let walk: Vec<usize> = (0..10).collect();
        assert_eq!(walk_distance_set(&walk), vec![1]);
    }

    #[test]
    fn hamiltonian_walk_is_permutation_with_allowed_steps() {
        let walk = hamiltonian_walk(32, &[1, 8]).expect("walk exists");
        assert!(is_permutation(&walk));
        for d in walk_distance_set(&walk) {
            assert!([1, 8].contains(&d), "unexpected distance {d}");
        }
    }

    #[test]
    fn impossible_steps_yield_no_walk() {
        // All steps even: odd offsets unreachable from 0, so no permutation.
        let err = hamiltonian_walk(8, &[2, 4]).unwrap_err();
        assert!(matches!(err, WalkError::NoWalk { .. }));
    }

    #[test]
    fn invalid_requests_rejected() {
        assert!(matches!(
            hamiltonian_walk(0, &[1]),
            Err(WalkError::Invalid(_))
        ));
        assert!(matches!(
            hamiltonian_walk(4, &[]),
            Err(WalkError::Invalid(_))
        ));
        assert!(matches!(
            hamiltonian_walk(4, &[0]),
            Err(WalkError::Invalid(_))
        ));
    }

    #[test]
    fn singleton_walk() {
        assert_eq!(hamiltonian_walk(1, &[3]).unwrap(), vec![0]);
    }

    #[test]
    fn walk_exists_for_vendor_c_style_steps() {
        // Steps {16, 33, 49} over length 50 — the vendor C tile.
        let walk = hamiltonian_walk(50, &[16, 33, 49]).expect("vendor C walk exists");
        assert!(is_permutation(&walk));
        for d in walk_distance_set(&walk) {
            assert!([16, 33, 49].contains(&d), "unexpected distance {d}");
        }
    }
}
