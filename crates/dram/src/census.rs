//! Chip-level fault census: aggregate the per-cell fault population the way
//! a characterization study reports it (class counts, bit-error rates, rows
//! affected) — the device-side ground truth behind the paper's §7 analyses.

use serde::{Deserialize, Serialize};

use crate::cell::{CellClass, FaultKind};
use crate::chip::DramChip;
use parbor_hal::DramError;
use parbor_hal::RowId;

/// Aggregate census of a set of rows on one chip.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CellCensus {
    /// Rows inspected.
    pub rows: u64,
    /// Total bits inspected.
    pub bits: u64,
    /// Retention-weak cells (fail unaided).
    pub retention_weak: u64,
    /// Strongly coupled cells (single-neighbor failures), both sides
    /// combined.
    pub strongly_coupled: u64,
    /// Weakly coupled cells (need both neighbors).
    pub weakly_coupled: u64,
    /// Deep window-coupled cells (need both neighbors plus a biased
    /// second-order window).
    pub deep_coupled: u64,
    /// Cells with a coupling profile that cannot fail at current conditions.
    pub robust: u64,
    /// Marginal (intermittent) cells.
    pub marginal: u64,
    /// Variable-retention-time cells.
    pub vrt: u64,
    /// Rows containing at least one data-dependent cell.
    pub rows_with_coupling: u64,
}

impl CellCensus {
    /// Takes the census of the given rows.
    ///
    /// # Errors
    ///
    /// Returns an address error if a row is out of range.
    pub fn take(chip: &mut DramChip, rows: &[RowId]) -> Result<Self, DramError> {
        let width = u64::from(chip.geometry().cols_per_row);
        let shift = chip.theta_shift();
        let mut census = CellCensus::default();
        for &row in rows {
            chip.geometry().check_row(row)?;
            census.rows += 1;
            census.bits += width;
            let mut row_has_coupling = false;
            for entry in &chip.fault_map(row).entries {
                match &entry.kind {
                    FaultKind::Coupling(profile) => {
                        let class = profile.classify(shift);
                        if class.is_data_dependent() {
                            row_has_coupling = true;
                        }
                        match class {
                            CellClass::RetentionWeak => census.retention_weak += 1,
                            CellClass::StrongLeft
                            | CellClass::StrongRight
                            | CellClass::StrongBoth => census.strongly_coupled += 1,
                            CellClass::WeaklyCoupled => census.weakly_coupled += 1,
                            CellClass::DeepCoupled => census.deep_coupled += 1,
                            CellClass::Robust => census.robust += 1,
                        }
                    }
                    FaultKind::Marginal { .. } => census.marginal += 1,
                    FaultKind::Vrt => census.vrt += 1,
                }
            }
            if row_has_coupling {
                census.rows_with_coupling += 1;
            }
        }
        Ok(census)
    }

    /// Total data-dependent cells.
    pub fn data_dependent(&self) -> u64 {
        self.strongly_coupled + self.weakly_coupled + self.deep_coupled
    }

    /// Data-dependent bit-error rate (cells per bit).
    pub fn coupling_ber(&self) -> f64 {
        if self.bits == 0 {
            0.0
        } else {
            self.data_dependent() as f64 / self.bits as f64
        }
    }

    /// Fraction of inspected rows containing a data-dependent cell.
    pub fn coupling_row_fraction(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.rows_with_coupling as f64 / self.rows as f64
        }
    }

    /// Merges another census into this one (e.g. across the chips of a
    /// module).
    pub fn merge(&mut self, other: &CellCensus) {
        self.rows += other.rows;
        self.bits += other.bits;
        self.retention_weak += other.retention_weak;
        self.strongly_coupled += other.strongly_coupled;
        self.weakly_coupled += other.weakly_coupled;
        self.deep_coupled += other.deep_coupled;
        self.robust += other.robust;
        self.marginal += other.marginal;
        self.vrt += other.vrt;
        self.rows_with_coupling += other.rows_with_coupling;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vendor::Vendor;
    use parbor_hal::ChipGeometry;

    fn census_of(vendor: Vendor, rows: u32, seed: u64) -> CellCensus {
        let mut chip =
            DramChip::new(ChipGeometry::new(1, rows, 8192).unwrap(), vendor, seed).unwrap();
        let ids: Vec<RowId> = (0..rows).map(|r| RowId::new(0, r)).collect();
        CellCensus::take(&mut chip, &ids).unwrap()
    }

    #[test]
    fn census_counts_population() {
        let c = census_of(Vendor::A, 64, 3);
        assert_eq!(c.rows, 64);
        assert_eq!(c.bits, 64 * 8192);
        assert!(c.data_dependent() > 0);
        assert!(c.retention_weak > 0);
        // Rate should be near the configured population rate (2e-3 for A,
        // minus the retention-weak and robust shares).
        let ber = c.coupling_ber();
        assert!((5e-4..3e-3).contains(&ber), "ber = {ber}");
    }

    #[test]
    fn vendor_c_has_higher_ber_than_b() {
        let b = census_of(Vendor::B, 64, 3).coupling_ber();
        let c = census_of(Vendor::C, 64, 3).coupling_ber();
        assert!(c > 2.0 * b, "C {c} vs B {b}");
    }

    #[test]
    fn merge_adds_fields() {
        let a = census_of(Vendor::A, 16, 1);
        let b = census_of(Vendor::A, 16, 2);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.rows, 32);
        assert_eq!(
            merged.data_dependent(),
            a.data_dependent() + b.data_dependent()
        );
    }

    #[test]
    fn strongly_coupled_dominate_weakly_under_margin_model() {
        // The margin draw concentrates mass near the worst case, but the
        // strong band (θ ≤ max weight) still holds a solid share — the
        // recursion depends on it.
        let c = census_of(Vendor::A, 128, 9);
        assert!(c.strongly_coupled > 0 && c.weakly_coupled > 0 && c.deep_coupled > 0);
        let strong_share = c.strongly_coupled as f64
            / (c.strongly_coupled + c.weakly_coupled + c.deep_coupled) as f64;
        assert!((0.1..0.6).contains(&strong_share), "share = {strong_share}");
    }

    #[test]
    fn out_of_range_row_errors() {
        let mut chip = DramChip::new(ChipGeometry::new(1, 4, 8192).unwrap(), Vendor::A, 1).unwrap();
        assert!(CellCensus::take(&mut chip, &[RowId::new(0, 99)]).is_err());
    }
}
