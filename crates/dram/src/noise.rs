//! Randomly-occurring (non-data-dependent) failure noise.
//!
//! Besides coupling failures, real chips exhibit soft errors (particle
//! strikes), which occur at random positions and random rounds. They matter
//! for PARBOR because they can masquerade as data-dependent failures during
//! the recursion (paper §5.2.4) — the filtering stage exists to reject them.

use serde::{Deserialize, Serialize};

use crate::hash::{cell_hash01, hash_words, mix64};
use parbor_hal::RowId;

/// Soft-error injector: at most one flip per row per round, drawn with
/// probability `row_bits × per_bit_rate`.
///
/// # Examples
///
/// ```
/// use parbor_dram::NoiseModel;
///
/// let noise = NoiseModel::new(1e-9);
/// // Deterministic: the same round always produces the same outcome.
/// let a = noise.soft_flip(1, parbor_dram::RowId::new(0, 0), 3, 8192);
/// let b = noise.soft_flip(1, parbor_dram::RowId::new(0, 0), 3, 8192);
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    per_bit_rate: f64,
}

impl NoiseModel {
    /// Creates a soft-error model with the given per-bit per-round rate.
    pub fn new(per_bit_rate: f64) -> Self {
        NoiseModel { per_bit_rate }
    }

    /// The configured per-bit per-round soft-error rate.
    pub fn per_bit_rate(&self) -> f64 {
        self.per_bit_rate
    }

    /// Returns the system column struck by a soft error in this row and
    /// round, if any.
    pub fn soft_flip(&self, seed: u64, row: RowId, round: u64, row_bits: usize) -> Option<usize> {
        let p_row = self.per_bit_rate * row_bits as f64;
        let u = cell_hash01(seed, u64::from(row.bank), u64::from(row.row), round, 0x50F7);
        if u < p_row {
            let h = hash_words(&[seed, u64::from(row.bank), u64::from(row.row), round, 0x50F8]);
            Some((mix64(h) % row_bits as u64) as usize)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_flips() {
        let noise = NoiseModel::new(0.0);
        for round in 0..1000 {
            assert_eq!(noise.soft_flip(1, RowId::new(0, 0), round, 8192), None);
        }
    }

    #[test]
    fn high_rate_flips_often_and_in_range() {
        let noise = NoiseModel::new(1e-4); // 0.82 per row per round
        let mut hits = 0;
        for round in 0..1000 {
            if let Some(col) = noise.soft_flip(1, RowId::new(0, 3), round, 8192) {
                assert!(col < 8192);
                hits += 1;
            }
        }
        assert!(hits > 500, "hits = {hits}");
    }

    #[test]
    fn rate_is_respected_statistically() {
        let noise = NoiseModel::new(1e-6); // ~0.008 per row per round
        let mut hits = 0;
        for round in 0..10_000 {
            if noise.soft_flip(9, RowId::new(0, 0), round, 8192).is_some() {
                hits += 1;
            }
        }
        // Expected ≈ 82; allow wide slack.
        assert!((30..200).contains(&hits), "hits = {hits}");
    }
}
