//! Retention margins and their dependence on temperature and refresh
//! interval.
//!
//! A DRAM cell holds its charge for a *retention time*; it fails when the
//! refresh interval exceeds the effective retention under interference.
//! Retention roughly halves for every +10 °C (paper §6), and testing at a
//! longer refresh interval exposes weaker cells (the paper tests at 4 s @
//! 45 °C ≈ 328 ms @ 85 °C).
//!
//! We fold all of this into a dimensionless **interference margin** `θ` per
//! cell: the amount of neighbor interference required to flip the cell
//! within one refresh interval. `θ ≤ 0` means the cell fails with no help
//! (a retention-weak cell); larger `θ` needs more aggressive neighborhood
//! patterns. Raising the temperature or lengthening the interval lowers
//! every cell's margin by `κ · log2(f)` where `f` is the combined stress
//! factor — so the *set* of failing cells grows, but the *locations of
//! neighbors* never change, reproducing the paper's temperature-sensitivity
//! result.

use serde::{Deserialize, Serialize};

use crate::config::{Celsius, Seconds};

/// Parameters of the retention / margin model.
///
/// # Examples
///
/// ```
/// use parbor_dram::{RetentionModel, Celsius, Seconds};
///
/// let m = RetentionModel::default();
/// // At reference conditions the stress factor is exactly 1.
/// let f = m.stress_factor(Seconds(4.0), Celsius(45.0));
/// assert!((f - 1.0).abs() < 1e-12);
/// // +10 °C doubles the stress.
/// let f2 = m.stress_factor(Seconds(4.0), Celsius(55.0));
/// assert!((f2 - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionModel {
    /// Refresh interval at which margins are drawn (paper: 4 s).
    pub reference_interval: Seconds,
    /// Temperature at which margins are drawn (paper: 45 °C).
    pub reference_temp: Celsius,
    /// Shape of the per-cell margin draw: the distance of a cell's margin
    /// below its worst-case interference maximum is `I_max · u^exponent`.
    /// Exponents > 1 concentrate cells *just below* the worst case — the
    /// steep tail of real retention distributions, and the reason random
    /// patterns miss failures that only a true worst-case pattern triggers
    /// (paper Fig 13).
    pub margin_exponent: f64,
    /// Margin lost per doubling of the stress factor.
    pub kappa: f64,
}

impl Default for RetentionModel {
    fn default() -> Self {
        RetentionModel {
            reference_interval: Seconds(4.0),
            reference_temp: Celsius(45.0),
            margin_exponent: 3.5,
            kappa: 0.8,
        }
    }
}

impl RetentionModel {
    /// Combined stress factor of a refresh interval and temperature relative
    /// to the reference conditions. Doubles per +10 °C and scales linearly
    /// with the interval.
    pub fn stress_factor(&self, interval: Seconds, temp: Celsius) -> f64 {
        (interval.0 / self.reference_interval.0)
            * 2f64.powf((temp.0 - self.reference_temp.0) / 10.0)
    }

    /// Reference-condition margin of a coupling cell whose worst-case
    /// interference is `i_max`, for a unit draw `u ∈ [0, 1)`. The result is
    /// in `(0, i_max]`, concentrated near `i_max` (cells that barely fail
    /// under the full worst-case pattern dominate).
    pub fn theta_ref(&self, u: f64, i_max: f64) -> f64 {
        i_max * (1.0 - u.powf(self.margin_exponent))
    }

    /// Effective margin of a cell with reference margin `theta_ref` at the
    /// given operating conditions.
    pub fn theta_at(&self, theta_ref: f64, interval: Seconds, temp: Celsius) -> f64 {
        theta_ref - self.kappa * self.stress_factor(interval, temp).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn margin_drops_with_temperature() {
        let m = RetentionModel::default();
        let theta45 = m.theta_at(1.0, Seconds(4.0), Celsius(45.0));
        let theta55 = m.theta_at(1.0, Seconds(4.0), Celsius(55.0));
        assert!(theta55 < theta45);
        assert!(
            (theta45 - theta55 - m.kappa).abs() < 1e-9,
            "one doubling = κ"
        );
    }

    #[test]
    fn margin_drops_with_interval() {
        let m = RetentionModel::default();
        let t4 = m.theta_at(1.0, Seconds(4.0), Celsius(45.0));
        let t8 = m.theta_at(1.0, Seconds(8.0), Celsius(45.0));
        assert!(t8 < t4);
    }

    #[test]
    fn reference_conditions_are_neutral() {
        let m = RetentionModel::default();
        assert_eq!(m.theta_at(0.7, m.reference_interval, m.reference_temp), 0.7);
    }

    #[test]
    fn paper_equivalence_4s_at_45c_vs_328ms_at_85c() {
        // The paper notes 4 s @ 45 °C corresponds to ~328 ms @ 85 °C
        // (retention halves per 10 °C: 4 s / 2^4 = 250 ms; their number uses
        // a slightly gentler slope). Our model should put these within ~35 %.
        let m = RetentionModel::default();
        let a = m.stress_factor(Seconds(4.0), Celsius(45.0));
        let b = m.stress_factor(Seconds(0.328), Celsius(85.0));
        assert!((a - b).abs() / a < 0.35, "a={a} b={b}");
    }

    #[test]
    fn theta_ref_concentrates_near_worst_case() {
        let m = RetentionModel::default();
        // u = 0 gives the full worst-case margin; u = 1 gives zero.
        assert!((m.theta_ref(0.0, 3.0) - 3.0).abs() < 1e-12);
        assert!(m.theta_ref(0.9999, 3.0) < 0.01);
        // Steep shaping: half the cells lie in the top ~11 % of the
        // margin range.
        assert!(m.theta_ref(0.5, 4.0) > 3.5);
    }
}
