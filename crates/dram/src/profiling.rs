//! RAIDR-style retention profiling: bin rows by the longest refresh
//! interval they survive.
//!
//! Retention-aware refresh schemes (RAIDR [46], and the paper's DC-REF on
//! top of it) need to know which rows tolerate a relaxed refresh interval.
//! The profiler sweeps a ladder of intervals, testing the rows with a set
//! of data patterns at each rung; a row's *bin* is the first interval at
//! which any of its bits fails. The paper's related work (§3) warns that
//! profiling with simple patterns misclassifies data-dependent rows — a
//! claim [`RetentionProfiler`] lets you reproduce by profiling with
//! different pattern families (see the crate tests).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::chip::DramChip;
use crate::config::Seconds;
use crate::pattern::PatternKind;
use parbor_hal::DramError;
use parbor_hal::RowId;

/// Result of profiling a set of rows over an interval ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetentionProfile {
    intervals: Vec<Seconds>,
    /// Bin index per row: the first ladder rung at which the row failed;
    /// rows absent from the map survived every rung.
    bins: HashMap<RowId, usize>,
    rows_profiled: usize,
}

impl RetentionProfile {
    /// The interval ladder the profile was taken over.
    pub fn intervals(&self) -> &[Seconds] {
        &self.intervals
    }

    /// The bin of one row: `Some(i)` = first failed at `intervals()[i]`;
    /// `None` = survived every profiled interval.
    pub fn bin_of(&self, row: RowId) -> Option<usize> {
        self.bins.get(&row).copied()
    }

    /// Number of rows profiled.
    pub fn rows_profiled(&self) -> usize {
        self.rows_profiled
    }

    /// Fraction of rows failing at or below each ladder rung (cumulative).
    pub fn cumulative_fail_fractions(&self) -> Vec<f64> {
        let mut counts = vec![0usize; self.intervals.len()];
        for &bin in self.bins.values() {
            counts[bin] += 1;
        }
        let mut acc = 0usize;
        counts
            .iter()
            .map(|&c| {
                acc += c;
                acc as f64 / self.rows_profiled.max(1) as f64
            })
            .collect()
    }

    /// Fraction of rows that need refreshing at the base (first) interval —
    /// RAIDR's "weak rows".
    pub fn weak_row_fraction(&self) -> f64 {
        self.cumulative_fail_fractions()
            .first()
            .copied()
            .unwrap_or(0.0)
    }
}

/// Sweeps rows over an ascending refresh-interval ladder.
#[derive(Debug, Clone)]
pub struct RetentionProfiler {
    intervals: Vec<Seconds>,
    patterns: Vec<PatternKind>,
}

impl RetentionProfiler {
    /// Creates a profiler over an ascending ladder of refresh intervals,
    /// testing each rung with the given patterns (each plus its inverse).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] when the ladder is empty, not
    /// strictly ascending, or the pattern list is empty.
    pub fn new(intervals: Vec<Seconds>, patterns: Vec<PatternKind>) -> Result<Self, DramError> {
        if intervals.is_empty() || patterns.is_empty() {
            return Err(DramError::InvalidConfig(
                "profiler needs at least one interval and one pattern".into(),
            ));
        }
        if intervals.windows(2).any(|w| w[1].0 <= w[0].0) {
            return Err(DramError::InvalidConfig(
                "interval ladder must be strictly ascending".into(),
            ));
        }
        Ok(RetentionProfiler {
            intervals,
            patterns,
        })
    }

    /// RAIDR's ladder relative to a base interval: 1×, 2×, 4× the base
    /// (64 / 128 / 256 ms bins in the paper's Table 2), probed with the
    /// discovery pattern family.
    ///
    /// # Errors
    ///
    /// See [`RetentionProfiler::new`].
    pub fn raidr(base: Seconds, seed: u64) -> Result<Self, DramError> {
        Self::new(
            vec![base, Seconds(base.0 * 2.0), Seconds(base.0 * 4.0)],
            crate::pattern::PatternSet::discovery(seed)
                .patterns()
                .to_vec(),
        )
    }

    /// Profiles the rows. The chip's refresh interval is swept up the
    /// ladder (its temperature is left untouched) and restored afterwards
    /// is **not** attempted — profiling is a characterization pass; set the
    /// chip's conditions again afterwards if you continue using it.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn profile(
        &self,
        chip: &mut DramChip,
        rows: &[RowId],
        temperature: crate::config::Celsius,
    ) -> Result<RetentionProfile, DramError> {
        let width = chip.geometry().cols_per_row as usize;
        let mut bins: HashMap<RowId, usize> = HashMap::new();
        for (idx, &interval) in self.intervals.iter().enumerate() {
            chip.set_conditions(temperature, interval);
            for pattern in &self.patterns {
                for invert in [false, true] {
                    let writes: Vec<_> = rows
                        .iter()
                        .filter(|r| !bins.contains_key(r)) // already binned
                        .map(|&row| {
                            let data = if invert {
                                pattern.inverse().row_bits(row.row, width)
                            } else {
                                pattern.row_bits(row.row, width)
                            };
                            (row, data)
                        })
                        .collect();
                    if writes.is_empty() {
                        continue;
                    }
                    for flip in chip.run_round(writes)? {
                        bins.entry(flip.addr.row()).or_insert(idx);
                    }
                }
            }
        }
        Ok(RetentionProfile {
            intervals: self.intervals.clone(),
            bins,
            rows_profiled: rows.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Celsius;
    use crate::pattern::PatternSet;
    use crate::vendor::Vendor;
    use parbor_hal::ChipGeometry;

    fn chip(seed: u64) -> DramChip {
        DramChip::new(ChipGeometry::new(1, 64, 8192).unwrap(), Vendor::A, seed).unwrap()
    }

    fn rows() -> Vec<RowId> {
        (0..64).map(|r| RowId::new(0, r)).collect()
    }

    #[test]
    fn ladder_validation() {
        let p = vec![PatternKind::Solid(false)];
        assert!(RetentionProfiler::new(vec![], p.clone()).is_err());
        assert!(RetentionProfiler::new(vec![Seconds(1.0)], vec![]).is_err());
        assert!(
            RetentionProfiler::new(vec![Seconds(2.0), Seconds(1.0)], p.clone()).is_err(),
            "descending ladder must be rejected"
        );
        assert!(RetentionProfiler::new(vec![Seconds(1.0), Seconds(2.0)], p).is_ok());
    }

    #[test]
    fn cumulative_fractions_are_monotone() {
        let profiler = RetentionProfiler::raidr(Seconds(2.0), 1).unwrap();
        let mut c = chip(5);
        let profile = profiler.profile(&mut c, &rows(), Celsius(45.0)).unwrap();
        let fracs = profile.cumulative_fail_fractions();
        assert_eq!(fracs.len(), 3);
        assert!(fracs.windows(2).all(|w| w[1] >= w[0]), "{fracs:?}");
        // Longer intervals expose strictly more rows in this population.
        assert!(fracs[2] > fracs[0], "{fracs:?}");
    }

    #[test]
    fn bins_are_first_failing_interval() {
        let profiler = RetentionProfiler::raidr(Seconds(2.0), 1).unwrap();
        let mut c = chip(6);
        let profile = profiler.profile(&mut c, &rows(), Celsius(45.0)).unwrap();
        // Every binned row's bin index is within the ladder.
        for row in rows() {
            if let Some(bin) = profile.bin_of(row) {
                assert!(bin < 3);
            }
        }
        assert_eq!(profile.rows_profiled(), 64);
    }

    #[test]
    fn richer_patterns_catch_more_weak_rows() {
        // Profiling with only solid patterns misses data-dependent rows —
        // the paper's core critique of naive retention profiling.
        let mut c1 = chip(7);
        let solid = RetentionProfiler::new(vec![Seconds(4.0)], vec![PatternKind::Solid(false)])
            .unwrap()
            .profile(&mut c1, &rows(), Celsius(45.0))
            .unwrap();
        let mut c2 = chip(7);
        let diverse = RetentionProfiler::new(
            vec![Seconds(4.0)],
            PatternSet::discovery(3).patterns().to_vec(),
        )
        .unwrap()
        .profile(&mut c2, &rows(), Celsius(45.0))
        .unwrap();
        assert!(
            diverse.weak_row_fraction() > solid.weak_row_fraction(),
            "diverse {} vs solid {}",
            diverse.weak_row_fraction(),
            solid.weak_row_fraction()
        );
    }
}
