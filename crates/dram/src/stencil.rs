//! The compiled, word-parallel coupling kernel.
//!
//! [`RowFaultMap::coupling_fail_indices`] walks every coupling entry with
//! per-bit `RowBits::get` calls, an `Option` branch per neighbor, and a float
//! accumulation per victim — all of it re-derived on every evaluation even
//! though the fault map and margin shift are fixed across thousands of reads.
//! [`CouplingStencil`] moves that work to compile time:
//!
//! * **Gather planes.** The victims' system columns and polarities, and the
//!   left/right neighbors' columns/polarities/existence, are packed into
//!   parallel arrays with one *bit lane per victim* (64 victims per `u64`
//!   word). Evaluation gathers three data bits per victim and then resolves
//!   charge state, neighbor opposition, and neighbor existence with pure
//!   AND/XOR word operations — no branches, no `Option`s, no floats.
//! * **Threshold buckets.** For each victim there are only four possible
//!   immediate-neighbor outcomes (left/right opposite or not) and at most
//!   `window.len() + 1` possible window counts. The compiler evaluates the
//!   *exact* scalar interference expression for every such combination once
//!   and stores the verdicts as bitmasks: an `all_fail` plane per combo
//!   (victim fails at any window count — no window gather needed), a
//!   `window_need` plane per combo (outcome depends on the count), and a
//!   per-victim per-combo mask with bit *c* set iff a count of exactly *c*
//!   opposite window cells fails. Evaluation classifies 64 victims per word
//!   and only touches window cells for the (rare) `window_need` lanes.
//!
//! Because every threshold is derived by running the identical float
//! expression the scalar kernel would run — same accumulation order, same
//! `max`/division semantics, including edge cases like empty or truncated
//! windows — the stencil's output is bit-identical to the reference kernel
//! for every possible row content, not just statistically equivalent. That
//! equivalence is pinned by unit tests here and proptests in the suite.

use parbor_hal::RowBits;

use crate::cell::{FaultKind, RowFaultMap};

/// Sentinel in the neighbor gather arrays for "no neighbor on this side".
const NO_NEIGHBOR: u32 = u32::MAX;
/// High bit of a packed window reference marks an anti-cell.
const WINDOW_ANTI: u32 = 1 << 31;

/// A fault map's coupling entries compiled against a fixed margin shift.
///
/// Built once per `(row fault map, theta_shift)` by
/// [`CouplingStencil::compile`] and evaluated against arbitrary row contents
/// with [`CouplingStencil::eval`], which returns exactly what
/// [`RowFaultMap::coupling_fail_indices`] would. See the module docs for the
/// plane layout.
#[derive(Debug, Clone, PartialEq)]
pub struct CouplingStencil {
    /// Number of coupling entries (one bit lane each).
    slots: usize,
    /// `entries` index of each lane, ascending.
    entry_idx: Vec<u32>,
    /// Per-lane victim system column.
    victim_sys: Vec<u32>,
    /// Lane-packed victim polarity (bit set = anti-cell).
    victim_anti: Vec<u64>,
    /// Per-lane left-neighbor system column ([`NO_NEIGHBOR`] when absent).
    left_sys: Vec<u32>,
    /// Lane-packed left-neighbor polarity.
    left_anti: Vec<u64>,
    /// Lane-packed left-neighbor existence.
    left_exists: Vec<u64>,
    /// Per-lane right-neighbor system column ([`NO_NEIGHBOR`] when absent).
    right_sys: Vec<u32>,
    /// Lane-packed right-neighbor polarity.
    right_anti: Vec<u64>,
    /// Lane-packed right-neighbor existence.
    right_exists: Vec<u64>,
    /// Per neighbor combo (bit 0 = left opposite, bit 1 = right opposite):
    /// lanes that fail regardless of the window count.
    all_fail: [Vec<u64>; 4],
    /// Per combo: lanes whose outcome depends on the window count.
    window_need: [Vec<u64>; 4],
    /// Per lane, per combo: bit `c` set iff exactly `c` opposite window
    /// cells fail the victim. Windows hold at most 62 cells
    /// (`window_radius ≤ 32`, enforced by `FaultRates::validate`).
    count_fail: Vec<[u64; 4]>,
    /// CSR offsets into `window_refs`, length `slots + 1`.
    window_off: Vec<u32>,
    /// Packed window cells: low 31 bits system column, high bit anti flag.
    window_refs: Vec<u32>,
}

impl CouplingStencil {
    /// Compiles the map's coupling entries against a fixed margin shift.
    ///
    /// Cost is proportional to the number of coupling entries (typically a
    /// few per row), so compiling piggybacks cheaply on fault-map builds.
    pub fn compile(map: &RowFaultMap, theta_shift: f64) -> CouplingStencil {
        let lanes: Vec<(usize, &crate::cell::CellFault)> = map
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e.kind, FaultKind::Coupling(_)))
            .collect();
        let slots = lanes.len();
        let words = slots.div_ceil(64);
        let mut st = CouplingStencil {
            slots,
            entry_idx: Vec::with_capacity(slots),
            victim_sys: Vec::with_capacity(slots),
            victim_anti: vec![0; words],
            left_sys: Vec::with_capacity(slots),
            left_anti: vec![0; words],
            left_exists: vec![0; words],
            right_sys: Vec::with_capacity(slots),
            right_anti: vec![0; words],
            right_exists: vec![0; words],
            all_fail: std::array::from_fn(|_| vec![0; words]),
            window_need: std::array::from_fn(|_| vec![0; words]),
            count_fail: Vec::with_capacity(slots),
            window_off: Vec::with_capacity(slots + 1),
            window_refs: Vec::new(),
        };
        for (slot, (idx, e)) in lanes.into_iter().enumerate() {
            let FaultKind::Coupling(p) = &e.kind else {
                unreachable!("filtered to coupling entries");
            };
            let (w, bit) = (slot / 64, 1u64 << (slot % 64));
            st.entry_idx.push(idx as u32);
            st.victim_sys.push(e.sys);
            if e.anti {
                st.victim_anti[w] |= bit;
            }
            match &p.left {
                Some(l) => {
                    st.left_sys.push(l.sys);
                    st.left_exists[w] |= bit;
                    if l.anti {
                        st.left_anti[w] |= bit;
                    }
                }
                None => st.left_sys.push(NO_NEIGHBOR),
            }
            match &p.right {
                Some(r) => {
                    st.right_sys.push(r.sys);
                    st.right_exists[w] |= bit;
                    if r.anti {
                        st.right_anti[w] |= bit;
                    }
                }
                None => st.right_sys.push(NO_NEIGHBOR),
            }
            st.window_off.push(st.window_refs.len() as u32);
            for c in &p.window {
                debug_assert_eq!(c.sys & WINDOW_ANTI, 0, "system column overflows packing");
                st.window_refs
                    .push(c.sys | if c.anti { WINDOW_ANTI } else { 0 });
            }

            // Threshold buckets: run the exact scalar expression for every
            // reachable (neighbor combo, window count) pair. A combo with an
            // absent neighbor can never be selected at eval time (the
            // existence mask zeroes its opposition bit), so its verdicts are
            // computed but never consulted.
            let theta = p.theta_ref - theta_shift;
            let wlen = p.window.len();
            debug_assert!(wlen < 64, "window too wide for count mask");
            let mut masks = [0u64; 4];
            for (combo, mask) in masks.iter_mut().enumerate() {
                let mut base = 0.0;
                if p.left.is_some() && combo & 1 != 0 {
                    base += p.w_left;
                }
                if p.right.is_some() && combo & 2 != 0 {
                    base += p.w_right;
                }
                if wlen == 0 {
                    // The scalar kernel skips the window term entirely for
                    // empty windows; replicate that exact expression.
                    if base >= theta {
                        *mask = 1;
                    }
                } else {
                    for cnt in 0..=wlen {
                        let frac = cnt as f64 / p.window_full as f64;
                        let interference = base + p.window_weight * ((frac - 0.5).max(0.0) * 2.0);
                        if interference >= theta {
                            *mask |= 1u64 << cnt;
                        }
                    }
                }
                let full: u64 = if wlen == 0 {
                    1
                } else {
                    (1u64 << (wlen + 1)) - 1
                };
                if *mask == full {
                    st.all_fail[combo][w] |= bit;
                } else if *mask != 0 {
                    st.window_need[combo][w] |= bit;
                }
            }
            st.count_fail.push(masks);
        }
        st.window_off.push(st.window_refs.len() as u32);
        st
    }

    /// Number of coupling entries compiled into the stencil.
    pub fn lanes(&self) -> usize {
        self.slots
    }

    /// Evaluates the stencil against one row image.
    ///
    /// Returns exactly the failing-entry indices (ascending) that
    /// [`RowFaultMap::coupling_fail_indices`] returns for the same map,
    /// content, and margin shift.
    pub fn eval(&self, data: &RowBits) -> Vec<u32> {
        let mut out = Vec::new();
        self.eval_into(data, &mut out);
        out
    }

    /// [`eval`](CouplingStencil::eval) into a caller-supplied buffer
    /// (cleared first) — the arena-pooled form the chip's hot path uses.
    pub fn eval_into(&self, data: &RowBits, out: &mut Vec<u32>) {
        out.clear();
        for w in 0..self.victim_anti.len() {
            let lo = w * 64;
            let hi = (lo + 64).min(self.slots);
            // Gather the three data bits of each lane into word lanes.
            let (mut v, mut l, mut r) = (0u64, 0u64, 0u64);
            for j in lo..hi {
                let bit = 1u64 << (j - lo);
                if data.get(self.victim_sys[j] as usize) {
                    v |= bit;
                }
                let ls = self.left_sys[j];
                if ls != NO_NEIGHBOR && data.get(ls as usize) {
                    l |= bit;
                }
                let rs = self.right_sys[j];
                if rs != NO_NEIGHBOR && data.get(rs as usize) {
                    r |= bit;
                }
            }
            // Word-parallel classification: charge state, opposition, combo.
            let charged = v ^ self.victim_anti[w];
            let lop = !(l ^ self.left_anti[w]) & self.left_exists[w];
            let rop = !(r ^ self.right_anti[w]) & self.right_exists[w];
            let combos = [!lop & !rop, lop & !rop, !lop & rop, lop & rop];
            let mut fail = 0u64;
            let mut need = 0u64;
            for (c, &combo) in combos.iter().enumerate() {
                fail |= combo & self.all_fail[c][w];
                need |= combo & self.window_need[c][w];
            }
            fail &= charged;
            need &= charged;
            // Only count-dependent lanes gather their window cells.
            while need != 0 {
                let b = need.trailing_zeros() as usize;
                need &= need - 1;
                let j = lo + b;
                let combo = (((lop >> b) & 1) | (((rop >> b) & 1) << 1)) as usize;
                let (s, e) = (self.window_off[j] as usize, self.window_off[j + 1] as usize);
                let mut cnt = 0usize;
                for &wref in &self.window_refs[s..e] {
                    let anti = wref & WINDOW_ANTI != 0;
                    // Opposite means discharged: stored bit equals polarity.
                    if data.get((wref & !WINDOW_ANTI) as usize) == anti {
                        cnt += 1;
                    }
                }
                if (self.count_fail[j][combo] >> cnt) & 1 == 1 {
                    fail |= 1u64 << b;
                }
            }
            // Emit in ascending lane order = ascending entry order.
            while fail != 0 {
                let b = fail.trailing_zeros() as usize;
                fail &= fail - 1;
                out.push(self.entry_idx[lo + b]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{FaultRates, RowFaultMap};
    use crate::pattern::PatternKind;
    use crate::retention::RetentionModel;
    use crate::vendor::Vendor;
    use parbor_hal::RowId;

    fn dense_map(vendor: Vendor, seed: u64, row: u32) -> RowFaultMap {
        let s = vendor.scrambler(8192);
        RowFaultMap::build(
            seed,
            RowId::new(0, row),
            &*s,
            &FaultRates {
                interesting: 0.02,
                ..FaultRates::default()
            },
            &RetentionModel::default(),
        )
    }

    #[test]
    fn stencil_matches_scalar_reference() {
        for vendor in Vendor::ALL {
            for row in 0..8u32 {
                let map = dense_map(vendor, 11, row);
                for shift in [0.0, 0.4, -0.6] {
                    let st = CouplingStencil::compile(&map, shift);
                    for seed in 0..6u64 {
                        let data = PatternKind::Random { seed }.row_bits(row, 8192);
                        assert_eq!(
                            st.eval(&data),
                            map.coupling_fail_indices(&data, shift),
                            "{vendor:?} row {row} shift {shift} seed {seed}"
                        );
                    }
                    for pattern in [
                        PatternKind::Solid(true),
                        PatternKind::Solid(false),
                        PatternKind::ColStripe { period: 1 },
                        PatternKind::Checkerboard,
                    ] {
                        let data = pattern.row_bits(row, 8192);
                        assert_eq!(st.eval(&data), map.coupling_fail_indices(&data, shift));
                    }
                }
            }
        }
    }

    #[test]
    fn stencil_on_empty_map_returns_nothing() {
        let st = CouplingStencil::compile(&RowFaultMap::default(), 0.0);
        assert_eq!(st.lanes(), 0);
        assert!(st.eval(&RowBits::ones(8192)).is_empty());
    }

    #[test]
    fn stencil_covers_more_than_64_lanes() {
        // A dense population forces multiple lane words, exercising the
        // word-boundary paths of the gather and emit loops.
        let s = Vendor::B.scrambler(8192);
        let map = RowFaultMap::build(
            5,
            RowId::new(0, 3),
            &*s,
            &FaultRates {
                interesting: 0.05,
                ..FaultRates::default()
            },
            &RetentionModel::default(),
        );
        let st = CouplingStencil::compile(&map, 0.0);
        assert!(st.lanes() > 64, "lanes = {}", st.lanes());
        for seed in 0..4u64 {
            let data = PatternKind::Random { seed }.row_bits(3, 8192);
            assert_eq!(st.eval(&data), map.coupling_fail_indices(&data, 0.0));
        }
    }
}
