//! The three vendor families evaluated in the paper.
//!
//! The paper tests 18 modules (144 chips) from three anonymized major vendors
//! **A**, **B**, **C** and reports the neighbor-distance set PARBOR discovers
//! for each (Fig 11):
//!
//! | Vendor | distances | recursion tests (Table 1) |
//! |--------|-----------|---------------------------|
//! | A      | {±8, ±16, ±48}  | 90 |
//! | B      | {±1, ±64}       | 66 |
//! | C      | {±16, ±33, ±49} | 90 |
//!
//! Each vendor here is a [`TileWalkScrambler`] hand-constructed so its
//! observable distance set equals the paper's, plus per-vendor fault-rate
//! calibration (vendor C is the most vulnerable in the paper's Fig 12).

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::cell::FaultRates;
use crate::scrambler::{Scrambler, TileWalkScrambler};

/// One of the paper's three anonymized DRAM vendors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Vendor {
    /// Vendor A: neighbor distances {±8, ±16, ±48}.
    A,
    /// Vendor B: neighbor distances {±1, ±64}.
    B,
    /// Vendor C: neighbor distances {±16, ±33, ±49}.
    C,
}

impl Vendor {
    /// All three vendors, in paper order.
    pub const ALL: [Vendor; 3] = [Vendor::A, Vendor::B, Vendor::C];

    /// The vendor's address scrambler for a row of `row_bits` columns.
    ///
    /// # Panics
    ///
    /// Panics if `row_bits` is smaller than the vendor's tile span
    /// (1024 for A, 128 for B and C).
    pub fn scrambler(self, row_bits: usize) -> Arc<dyn Scrambler> {
        let s = match self {
            Vendor::A => TileWalkScrambler::with_segments(row_bits, 1024, 8, vendor_a_walk(), 16),
            Vendor::B => TileWalkScrambler::with_segments(row_bits, 512, 1, vendor_b_walk(), 16),
            Vendor::C => TileWalkScrambler::new(row_bits, 128, 1, vendor_c_walk()),
        };
        Arc::new(s.expect("built-in vendor walk is valid"))
    }

    /// Ground-truth signed neighbor distances for this vendor (paper Fig 11,
    /// level 5).
    pub fn paper_distances(self) -> &'static [i64] {
        match self {
            Vendor::A => &[-48, -16, -8, 8, 16, 48],
            Vendor::B => &[-64, -1, 1, 64],
            Vendor::C => &[-49, -33, -16, 16, 33, 49],
        }
    }

    /// Per-vendor fault-rate calibration.
    ///
    /// Rates are chosen so that whole-module failure counts land in the
    /// paper's reported ranges (Fig 12: 1 K–45 K extra failures per module,
    /// vendor C most vulnerable, B least).
    pub fn default_rates(self) -> FaultRates {
        match self {
            Vendor::A => FaultRates {
                interesting: 2.0e-3,
                soft_per_bit_per_round: 2.0e-8,
                ..FaultRates::default()
            },
            Vendor::B => FaultRates {
                interesting: 8.0e-4,
                // B modules are noisier: the paper's B1 shows ~5 % of
                // failures found only by the random test, attributed to
                // randomly-occurring failures.
                soft_per_bit_per_round: 2.5e-7,
                ..FaultRates::default()
            },
            Vendor::C => FaultRates {
                interesting: 5.0e-3,
                soft_per_bit_per_round: 1.5e-8,
                ..FaultRates::default()
            },
        }
    }

    /// Number of modules of this vendor in the paper's 18-module population.
    pub fn paper_module_count(self) -> usize {
        6
    }
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Vendor::A => write!(f, "A"),
            Vendor::B => write!(f, "B"),
            Vendor::C => write!(f, "C"),
        }
    }
}

/// Vendor A walk: physical islands of 16 cells over spans of 1024 system
/// offsets with stride 8. Each island holds 16 consecutive stride-units in
/// the order `[2,0,1,3,9,7,8,6,12,14,15,13,11,5,4,10]` (plus the island
/// base), so every step magnitude is in {1, 2, 6} stride-units — the
/// distance set {±8, ±16, ±48} with shares ≈ 27 % / 47 % / 27 % and nearly
/// half the adjacencies straddling an 8-unit (64-bit) region boundary,
/// which is what makes the ±1 regions *frequent* at recursion level 3
/// (paper Fig 11a).
fn vendor_a_walk() -> Vec<usize> {
    const SEQ: [usize; 16] = [2, 0, 1, 3, 9, 7, 8, 6, 12, 14, 15, 13, 11, 5, 4, 10];
    let mut walk = Vec::with_capacity(128);
    for block in 0..8 {
        for s in SEQ {
            walk.push(block * 16 + s);
        }
    }
    walk
}

/// Vendor B walk: 32 physical islands of 16 cells per 512-offset span.
/// Island `k` chains the pairs `(64j + 2k, 64j + 2k + 1)` for `j = 0..8`,
/// entering even pairs low-first and odd pairs high-first
/// (steps +1, +64, -1, +64, +1, ...), giving the distance set {±1, ±64}.
/// This mirrors the paper's Figure 5 example, where burst pairs land in
/// different arrays and get swapped; crucially, every ±1 adjacency starts at
/// an even offset, so ±1 neighbors never straddle an 8-bit region boundary
/// (Fig 11b: vendor B's level-4 regions are only {0, ±8}).
fn vendor_b_walk() -> Vec<usize> {
    let mut walk = Vec::with_capacity(512);
    for k in 0..32 {
        for j in 0..8 {
            let base = 64 * j + 2 * k;
            if j % 2 == 0 {
                walk.push(base);
                walk.push(base + 1);
            } else {
                walk.push(base + 1);
                walk.push(base);
            }
        }
    }
    walk
}

/// Vendor C walk: one tile of 128 cells per span, with every step magnitude
/// in {16, 33, 49}. Found by randomized Hamiltonian-path search (see
/// [`hamiltonian_walk`](crate::hamiltonian_walk)) and fixed here so the step
/// shares are balanced (≈ 35 % / 34 % / 31 %), making all three distances
/// *frequent* — which PARBOR's ranking requires to keep them (paper Fig 14).
fn vendor_c_walk() -> Vec<usize> {
    const WALK: [usize; 128] = [
        34, 1, 17, 50, 83, 116, 100, 67, 18, 2, 51, 35, 84, 117, 68, 101, 52, 19, 3, 36, 85, 118,
        69, 20, 4, 53, 102, 86, 119, 103, 70, 37, 21, 5, 54, 38, 87, 120, 104, 71, 22, 6, 55, 39,
        88, 121, 105, 72, 23, 7, 56, 40, 89, 122, 106, 73, 24, 8, 57, 90, 123, 107, 74, 41, 25, 9,
        58, 42, 91, 124, 75, 26, 10, 59, 108, 92, 125, 109, 76, 43, 27, 11, 60, 44, 93, 126, 110,
        77, 28, 12, 61, 45, 94, 127, 78, 29, 13, 62, 111, 95, 46, 79, 112, 96, 63, 30, 14, 47, 31,
        15, 48, 32, 16, 0, 33, 66, 99, 115, 82, 49, 98, 114, 65, 81, 97, 64, 113, 80,
    ];
    WALK.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::walk_distance_set;

    #[test]
    fn vendor_a_walk_steps() {
        // The raw walk includes inter-island hops (8); the scrambler's
        // 16-cell segments exclude them from physical adjacency.
        assert_eq!(walk_distance_set(&vendor_a_walk()), vec![1, 2, 6, 8]);
        let s = Vendor::A.scrambler(8192);
        assert_eq!(s.distance_set(), vec![-48, -16, -8, 8, 16, 48]);
    }

    #[test]
    fn vendor_b_walk_steps() {
        // The raw walk includes the inter-island hops (446); the scrambler's
        // 16-cell segments exclude them from physical adjacency.
        assert_eq!(walk_distance_set(&vendor_b_walk()), vec![1, 64, 446]);
        let s = Vendor::B.scrambler(8192);
        assert_eq!(s.distance_set(), vec![-64, -1, 1, 64]);
    }

    #[test]
    fn vendor_c_walk_steps() {
        assert_eq!(walk_distance_set(&vendor_c_walk()), vec![16, 33, 49]);
    }

    #[test]
    fn scrambler_distances_match_paper_table() {
        for v in Vendor::ALL {
            let observed = v.scrambler(8192).distance_set();
            for d in v.paper_distances() {
                assert!(observed.contains(d), "vendor {v}: missing distance {d}");
            }
        }
    }

    #[test]
    fn vendor_c_is_most_vulnerable() {
        let a = Vendor::A.default_rates().interesting;
        let b = Vendor::B.default_rates().interesting;
        let c = Vendor::C.default_rates().interesting;
        assert!(c > a && a > b);
    }

    #[test]
    fn display_is_single_letter() {
        assert_eq!(Vendor::A.to_string(), "A");
        assert_eq!(Vendor::C.to_string(), "C");
    }
}
