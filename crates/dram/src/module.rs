//! A DRAM module: several chips behind one test port.
//!
//! The paper's modules have one rank of eight x8 chips; the host writes
//! arbitrary bytes, so each chip's 8192-bit row slice is independently
//! controllable. [`DramModule`] exposes that as *units*: unit `u` is chip
//! `u`'s row address space.

use std::fmt;
use std::sync::Arc;

use parbor_obs::metrics;
use parbor_obs::RecorderHandle;
use serde::{Deserialize, Serialize};

use parbor_hal::{
    BitFlip, ChipGeometry, DramError, Flip, KernelMode, ParallelMode, RoundArena, RoundPlan,
    RowBits, RowId, RowWrite, TestPort,
};

use crate::cell::FaultRates;
use crate::chip::DramChip;
use crate::config::{Celsius, Seconds};
use crate::hash::mix64;
use crate::pattern::PatternKind;
use crate::retention::RetentionModel;
use crate::scrambler::Scrambler;
use crate::vendor::Vendor;
use parbor_hal::FailureMechanism;

/// Identifier of a module within an experiment population (e.g. the paper's
/// A₁ is vendor A, module index 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ModuleId(pub u32);

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

// The simulator side of the HAL contract: [`parbor_hal::TestPort`] is
// implemented here (rather than in `parbor-hal`) because the trait and the
// backend now live in different crates, with the backend depending on the
// interface.
impl TestPort for DramChip {
    fn geometry(&self) -> ChipGeometry {
        DramChip::geometry(self)
    }

    fn units(&self) -> u32 {
        1
    }

    fn run_round(&mut self, writes: Vec<RowWrite>) -> Result<Vec<Flip>, DramError> {
        let mut plain = Vec::with_capacity(writes.len());
        for w in writes {
            if w.unit != 0 {
                return Err(DramError::AddressOutOfRange {
                    what: format!("unit {}", w.unit),
                    limit: "1 unit".into(),
                });
            }
            plain.push((w.row, w.data));
        }
        let n_writes = plain.len();
        let flips: Vec<Flip> = DramChip::run_round(self, plain)?
            .into_iter()
            .map(|flip| Flip { unit: 0, flip })
            .collect();
        let rec = self.recorder();
        rec.incr(metrics::dram::PORT_ROUNDS, 1);
        rec.observe(metrics::dram::PORT_ROUND_WRITES, n_writes as u64);
        rec.observe(metrics::dram::PORT_ROUND_FLIPS, flips.len() as u64);
        Ok(flips)
    }

    fn rounds_run(&self) -> u64 {
        DramChip::rounds_run(self)
    }

    fn fast_forward(&mut self, rounds: u64) {
        DramChip::fast_forward(self, rounds);
    }

    fn set_kernel_mode(&mut self, mode: KernelMode) {
        DramChip::set_kernel_mode(self, mode);
    }

    fn set_recorder(&mut self, rec: RecorderHandle) {
        DramChip::set_recorder(self, rec);
    }

    fn set_arena(&mut self, arena: RoundArena) {
        DramChip::set_arena(self, arena);
    }
}

/// Runs one chip's slice of a round batch: each round either writes + waits +
/// reads back, or — when the chip is untouched that round — just waits, so
/// module time stays coherent across chips. `row_threads > 1` additionally
/// splits each round's read set across scoped threads inside the chip.
fn chip_rounds(
    chip: &mut DramChip,
    rounds: Vec<Vec<(RowId, RowBits)>>,
    row_threads: usize,
) -> Result<Vec<Vec<BitFlip>>, DramError> {
    rounds
        .into_iter()
        .map(|writes| {
            if writes.is_empty() {
                chip.advance_round();
                Ok(Vec::new())
            } else {
                chip.run_round_split(writes, row_threads)
            }
        })
        .collect()
}

/// A DRAM module: a population of chips of one vendor, sharing geometry and
/// scrambler but with independent fault seeds (process variation).
///
/// Because the chips are independent (separate fault seeds, separate row
/// contents), the module executes them on scoped threads by default; results
/// are bit-identical to serial execution, since every fault is drawn by
/// stateless per-cell hashing. Use [`set_parallel`](DramModule::set_parallel)
/// to force the serial path.
///
/// # Examples
///
/// ```
/// use parbor_dram::{ModuleConfig, Vendor, ChipGeometry, PatternKind, RowId};
/// use parbor_hal::TestPort;
///
/// # fn main() -> Result<(), parbor_dram::DramError> {
/// let mut m = ModuleConfig::new(Vendor::A)
///     .geometry(ChipGeometry::tiny())
///     .seed(3)
///     .build()?;
/// let rows: Vec<RowId> = (0..8).map(|r| RowId::new(0, r)).collect();
/// let flips = m.test_round_uniform(&rows, &PatternKind::Solid(false))?;
/// assert_eq!(m.rounds_run(), 1);
/// # drop(flips);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DramModule {
    id: ModuleId,
    vendor: Vendor,
    geometry: ChipGeometry,
    chips: Vec<DramChip>,
    rounds: u64,
    parallel: ParallelMode,
    kernel: KernelMode,
    rec: RecorderHandle,
}

impl DramModule {
    /// Assembles a module; called by [`ModuleConfig::build`](crate::ModuleConfig::build).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        id: ModuleId,
        vendor: Vendor,
        geometry: ChipGeometry,
        chips: usize,
        seed: u64,
        rates: FaultRates,
        retention: RetentionModel,
        temperature: Celsius,
        refresh_interval: Seconds,
        scrambler: Arc<dyn Scrambler>,
    ) -> Result<Self, DramError> {
        let chips = (0..chips)
            .map(|i| {
                DramChip::with_parts(
                    geometry,
                    Arc::clone(&scrambler),
                    mix64(seed ^ (i as u64).wrapping_mul(0xA5A5_5A5A)),
                    rates,
                    retention,
                    temperature,
                    refresh_interval,
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(DramModule {
            id,
            vendor,
            geometry,
            chips,
            rounds: 0,
            parallel: ParallelMode::Auto,
            kernel: KernelMode::default(),
            rec: RecorderHandle::null(),
        })
    }

    /// Attaches a metrics recorder to the module and all its chips.
    pub fn with_recorder(mut self, rec: RecorderHandle) -> Self {
        self.set_recorder(rec);
        self
    }

    /// Replaces the metrics recorder of the module and all its chips.
    pub fn set_recorder(&mut self, rec: RecorderHandle) {
        for chip in &mut self.chips {
            chip.set_recorder(rec.clone());
        }
        self.rec = rec;
    }

    /// The module identifier.
    pub fn id(&self) -> ModuleId {
        self.id
    }

    /// The module's vendor.
    pub fn vendor(&self) -> Vendor {
        self.vendor
    }

    /// Human-readable module name in the paper's style (e.g. `A1`).
    pub fn name(&self) -> String {
        format!("{}{}", self.vendor, self.id.0)
    }

    /// The chips of the module.
    pub fn chips(&self) -> &[DramChip] {
        &self.chips
    }

    /// Mutable access to the chips (for oracle queries in experiments).
    pub fn chips_mut(&mut self) -> &mut [DramChip] {
        &mut self.chips
    }

    /// Whether rounds may execute the chips on scoped threads.
    pub fn parallel(&self) -> bool {
        self.parallel != ParallelMode::Never
    }

    /// The current chip-scheduling mode.
    pub fn parallel_mode(&self) -> ParallelMode {
        self.parallel
    }

    /// Enables ([`ParallelMode::Auto`]) or disables ([`ParallelMode::Never`])
    /// parallel per-chip round execution. Results are bit-identical either
    /// way; the serial path exists for measurement and for single-core
    /// environments.
    pub fn set_parallel(&mut self, parallel: bool) {
        self.parallel = if parallel {
            ParallelMode::Auto
        } else {
            ParallelMode::Never
        };
    }

    /// Sets the chip-scheduling mode explicitly.
    pub fn set_parallel_mode(&mut self, mode: ParallelMode) {
        self.parallel = mode;
    }

    /// Changes the operating conditions of every chip.
    pub fn set_conditions(&mut self, temperature: Celsius, refresh_interval: Seconds) {
        for c in &mut self.chips {
            c.set_conditions(temperature, refresh_interval);
        }
    }

    /// Installs the same extra-mechanism stack on every chip (shared
    /// handles — mechanisms are stateless, seeded by cell coordinates, so
    /// chips distinguish themselves by bank/row addressing, not by
    /// mechanism instance).
    pub fn set_mechanisms(&mut self, mechanisms: Vec<Arc<dyn FailureMechanism>>) {
        for c in &mut self.chips {
            c.set_mechanisms(mechanisms.clone());
        }
    }

    /// The extra-mechanism stack (every chip holds the same one).
    pub fn mechanisms(&self) -> &[Arc<dyn FailureMechanism>] {
        self.chips.first().map_or(&[], |c| c.mechanisms())
    }

    /// The coupling kernel the module's chips evaluate reads with.
    pub fn kernel_mode(&self) -> KernelMode {
        self.kernel
    }

    /// Switches every chip between the compiled stencil kernel (default) and
    /// the retained scalar reference kernel. Results are bit-identical in
    /// both modes; `Reference` exists as the measurement baseline.
    pub fn set_kernel_mode(&mut self, mode: KernelMode) {
        self.kernel = mode;
        for c in &mut self.chips {
            c.set_kernel_mode(mode);
        }
    }

    /// Hands every chip the same buffer pool; the arena handle is
    /// thread-safe, so chips recycling on scoped threads share it with the
    /// stage building the next round.
    pub fn set_arena(&mut self, arena: RoundArena) {
        for c in &mut self.chips {
            c.set_arena(arena.clone());
        }
    }

    /// Advances every chip's round clock by `rounds` refresh intervals
    /// without running any test rounds — the resume hook for checkpointed
    /// scans (see [`DramChip::fast_forward`]).
    ///
    /// A module rebuilt from its spec and fast-forwarded by the number of
    /// port rounds a previous process ran behaves, for all future rounds,
    /// bit-identically to the module that process held in memory.
    pub fn fast_forward(&mut self, rounds: u64) {
        for c in &mut self.chips {
            c.fast_forward(rounds);
        }
        self.rounds += rounds;
    }

    /// Convenience round: writes the same pattern to the given rows of every
    /// chip, waits, reads back, and returns all flips.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range rows.
    pub fn test_round_uniform(
        &mut self,
        rows: &[RowId],
        pattern: &PatternKind,
    ) -> Result<Vec<Flip>, DramError> {
        let width = self.geometry.cols_per_row as usize;
        let units = self.chips.len() as u32;
        let plan = RoundPlan::broadcast(units, rows, |row| pattern.row_bits(row.row, width));
        TestPort::run_round(self, plan.into_writes())
    }

    /// Shared core of [`TestPort::run_round`] and [`TestPort::run_rounds`]:
    /// splits each plan's writes per chip, executes every chip's slice of
    /// the batch (on scoped threads when parallelism is enabled), and merges
    /// flips back in unit order per round.
    fn execute_rounds(&mut self, plans: Vec<RoundPlan>) -> Result<Vec<Vec<Flip>>, DramError> {
        let n_rounds = plans.len();
        if n_rounds == 0 {
            return Ok(Vec::new());
        }
        let n_chips = self.chips.len();
        let mut per_chip: Vec<Vec<Vec<(RowId, RowBits)>>> = (0..n_chips)
            .map(|_| (0..n_rounds).map(|_| Vec::new()).collect())
            .collect();
        let mut write_counts = vec![0u64; n_rounds];
        for (round, plan) in plans.into_iter().enumerate() {
            for w in plan.into_writes() {
                let unit = w.unit as usize;
                if unit >= n_chips {
                    return Err(DramError::AddressOutOfRange {
                        what: format!("unit {}", w.unit),
                        limit: format!("{n_chips} units"),
                    });
                }
                write_counts[round] += 1;
                per_chip[unit][round].push((w.row, w.data));
            }
        }
        // Two parallelism levels share the hardware-thread budget: one
        // scoped thread per chip, and within each chip a split of the
        // round's read set across `row_threads` more scoped threads (row
        // evaluation is pure; see `DramChip::run_round_split`). In Auto mode
        // threads only pay off when the host can actually run them
        // concurrently; on a single hardware thread the serial path wins
        // (the bit-identical results make the choice invisible).
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        let (use_threads, row_threads) = match self.parallel {
            ParallelMode::Never => (false, 1),
            // Always forces both levels on, so tests exercise the threaded
            // merge paths even on single-core hosts.
            ParallelMode::Always => (n_chips > 1, (hw / n_chips.max(1)).max(2)),
            ParallelMode::Auto => {
                if hw > 1 {
                    (n_chips > 1, (hw / n_chips.max(1)).max(1))
                } else {
                    (false, 1)
                }
            }
        };
        let results: Vec<Result<Vec<Vec<BitFlip>>, DramError>> = if use_threads {
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .chips
                    .iter_mut()
                    .zip(per_chip)
                    .map(|(chip, work)| scope.spawn(move |_| chip_rounds(chip, work, row_threads)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("chip round thread panicked"))
                    .collect()
            })
            .expect("scoped execution cannot fail to join")
        } else {
            self.chips
                .iter_mut()
                .zip(per_chip)
                .map(|(chip, work)| chip_rounds(chip, work, row_threads))
                .collect()
        };
        let mut merged: Vec<Vec<Flip>> = (0..n_rounds).map(|_| Vec::new()).collect();
        for (unit, chip_result) in results.into_iter().enumerate() {
            // On error, report the lowest failing unit (matching the old
            // serial order); completed chips keep their state.
            for (round, flips) in chip_result?.into_iter().enumerate() {
                merged[round].extend(flips.into_iter().map(|flip| Flip {
                    unit: unit as u32,
                    flip,
                }));
            }
        }
        self.rounds += n_rounds as u64;
        for (&writes, flips) in write_counts.iter().zip(&merged) {
            self.rec.incr(metrics::dram::PORT_ROUNDS, 1);
            self.rec.observe(metrics::dram::PORT_ROUND_WRITES, writes);
            self.rec
                .observe(metrics::dram::PORT_ROUND_FLIPS, flips.len() as u64);
        }
        Ok(merged)
    }
}

impl TestPort for DramModule {
    fn geometry(&self) -> ChipGeometry {
        self.geometry
    }

    fn units(&self) -> u32 {
        self.chips.len() as u32
    }

    fn run_round(&mut self, writes: Vec<RowWrite>) -> Result<Vec<Flip>, DramError> {
        let mut rounds = self.execute_rounds(vec![RoundPlan::from_writes(writes)])?;
        Ok(rounds.pop().expect("one plan yields one round"))
    }

    fn run_rounds(&mut self, plans: Vec<RoundPlan>) -> Result<Vec<Vec<Flip>>, DramError> {
        self.execute_rounds(plans)
    }

    fn rounds_run(&self) -> u64 {
        self.rounds
    }

    fn fast_forward(&mut self, rounds: u64) {
        DramModule::fast_forward(self, rounds);
    }

    fn set_parallel_mode(&mut self, mode: ParallelMode) {
        DramModule::set_parallel_mode(self, mode);
    }

    fn set_kernel_mode(&mut self, mode: KernelMode) {
        DramModule::set_kernel_mode(self, mode);
    }

    fn set_recorder(&mut self, rec: RecorderHandle) {
        DramModule::set_recorder(self, rec);
    }

    fn set_arena(&mut self, arena: RoundArena) {
        DramModule::set_arena(self, arena);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModuleConfig;
    use parbor_hal::RoundPlan;

    fn small_module(seed: u64) -> DramModule {
        ModuleConfig::new(Vendor::A)
            .geometry(ChipGeometry::new(1, 16, 8192).unwrap())
            .chips(2)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn chips_have_distinct_seeds() {
        let m = small_module(1);
        assert_ne!(m.chips()[0].seed(), m.chips()[1].seed());
    }

    #[test]
    fn per_unit_writes_are_independent() {
        let mut m = small_module(1);
        let width = 8192;
        let writes = vec![
            RowWrite {
                unit: 0,
                row: RowId::new(0, 0),
                data: RowBits::ones(width),
            },
            RowWrite {
                unit: 1,
                row: RowId::new(0, 0),
                data: RowBits::zeros(width),
            },
        ];
        m.run_round(writes).unwrap();
        assert_eq!(
            m.chips()[0]
                .written_row(RowId::new(0, 0))
                .unwrap()
                .count_ones(),
            width
        );
        assert_eq!(
            m.chips()[1]
                .written_row(RowId::new(0, 0))
                .unwrap()
                .count_ones(),
            0
        );
    }

    #[test]
    fn invalid_unit_rejected() {
        let mut m = small_module(1);
        let err = m
            .run_round(vec![RowWrite {
                unit: 9,
                row: RowId::new(0, 0),
                data: RowBits::zeros(8192),
            }])
            .unwrap_err();
        assert!(matches!(err, DramError::AddressOutOfRange { .. }));
    }

    #[test]
    fn rounds_counted_per_module() {
        let mut m = small_module(1);
        let rows = [RowId::new(0, 0)];
        m.test_round_uniform(&rows, &PatternKind::Solid(true))
            .unwrap();
        m.test_round_uniform(&rows, &PatternKind::Solid(false))
            .unwrap();
        assert_eq!(m.rounds_run(), 2);
        // Chip rounds advance in lockstep.
        assert_eq!(DramChip::rounds_run(&m.chips()[0]), 2);
        assert_eq!(DramChip::rounds_run(&m.chips()[1]), 2);
    }

    #[test]
    fn module_name_matches_paper_style() {
        let m = ModuleConfig::new(Vendor::B)
            .geometry(ChipGeometry::tiny())
            .module_id(ModuleId(1))
            .build()
            .unwrap();
        assert_eq!(m.name(), "B1");
    }

    #[test]
    fn chip_as_test_port() {
        let mut chip = DramChip::new(ChipGeometry::tiny(), Vendor::B, 1).unwrap();
        let flips = TestPort::run_round(
            &mut chip,
            vec![RowWrite {
                unit: 0,
                row: RowId::new(0, 0),
                data: RowBits::zeros(1024),
            }],
        )
        .unwrap();
        for f in flips {
            assert_eq!(f.unit, 0);
        }
        assert_eq!(TestPort::units(&chip), 1);
    }

    fn stripe_plans(chips: u32, rounds: u64) -> Vec<RoundPlan> {
        (0..rounds)
            .map(|r| {
                let mut plan = RoundPlan::new();
                for unit in 0..chips {
                    for row in 0..16 {
                        plan.write(
                            unit,
                            RowId::new(0, row),
                            PatternKind::Random {
                                seed: r ^ u64::from(unit) << 8,
                            }
                            .row_bits(row, 8192),
                        );
                    }
                }
                plan
            })
            .collect()
    }

    #[test]
    fn parallel_rounds_bit_identical_to_serial() {
        let mut par = small_module(7);
        let mut ser = small_module(7);
        // Always-threads, so this exercises the threaded merge path even on
        // single-core CI hosts where Auto would degrade to serial.
        par.set_parallel_mode(ParallelMode::Always);
        ser.set_parallel(false);
        assert!(par.parallel());
        assert!(!ser.parallel());
        assert_eq!(ser.parallel_mode(), ParallelMode::Never);
        let plans = stripe_plans(2, 4);
        let a = par.run_rounds(plans.clone()).unwrap();
        let b = ser.run_rounds(plans).unwrap();
        assert_eq!(a, b);
        assert_eq!(par.rounds_run(), 4);
        assert_eq!(ser.rounds_run(), 4);
    }

    #[test]
    fn batched_rounds_match_one_at_a_time() {
        let mut batched = small_module(3);
        let mut looped = small_module(3);
        let plans = stripe_plans(2, 3);
        let a = batched.run_rounds(plans.clone()).unwrap();
        let b: Vec<Vec<Flip>> = plans
            .into_iter()
            .map(|p| looped.run_round(p.into_writes()).unwrap())
            .collect();
        assert_eq!(a, b);
        assert_eq!(batched.rounds_run(), looped.rounds_run());
    }

    #[test]
    fn untouched_chips_advance_in_batches() {
        let mut m = small_module(5);
        // Only unit 0 is written; unit 1 must still advance both rounds.
        let mut plan = RoundPlan::new();
        plan.write(0, RowId::new(0, 0), RowBits::zeros(8192));
        m.run_rounds(vec![plan.clone(), plan]).unwrap();
        assert_eq!(DramChip::rounds_run(&m.chips()[0]), 2);
        assert_eq!(DramChip::rounds_run(&m.chips()[1]), 2);
    }
}
