//! A DRAM module: several chips behind one test port.
//!
//! The paper's modules have one rank of eight x8 chips; the host writes
//! arbitrary bytes, so each chip's 8192-bit row slice is independently
//! controllable. [`DramModule`] exposes that as *units*: unit `u` is chip
//! `u`'s row address space.

use std::fmt;
use std::sync::Arc;

use parbor_obs::RecorderHandle;
use serde::{Deserialize, Serialize};

use crate::bits::RowBits;
use crate::cell::FaultRates;
use crate::chip::{BitFlip, DramChip};
use crate::config::{Celsius, Seconds};
use crate::error::DramError;
use crate::geometry::{ChipGeometry, RowId};
use crate::hash::mix64;
use crate::pattern::PatternKind;
use crate::retention::RetentionModel;
use crate::scrambler::Scrambler;
use crate::vendor::Vendor;

/// Identifier of a module within an experiment population (e.g. the paper's
/// A₁ is vendor A, module index 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ModuleId(pub u32);

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A write of one row image into one unit (chip) of a test port.
#[derive(Debug, Clone)]
pub struct RowWrite {
    /// Unit (chip) index.
    pub unit: u32,
    /// Target row.
    pub row: RowId,
    /// Row image in system bit order.
    pub data: RowBits,
}

/// A bit flip observed through a test port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Flip {
    /// Unit (chip) index the flip occurred in.
    pub unit: u32,
    /// The flipped bit.
    pub flip: BitFlip,
}

/// The system-level testing interface: write rows, wait one refresh
/// interval, read back, observe flips.
///
/// Implemented by [`DramChip`] (one unit) and [`DramModule`] (one unit per
/// chip). PARBOR is written against this trait, mirroring the paper's
/// host-side test harness talking to the memory controller.
pub trait TestPort {
    /// Per-unit chip geometry.
    fn geometry(&self) -> ChipGeometry;

    /// Number of independently writable units (chips).
    fn units(&self) -> u32;

    /// Executes one test round: writes everything in `writes`, waits one
    /// refresh interval, reads the written rows back, and returns all flips.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range units/rows or width mismatches.
    fn run_round(&mut self, writes: &[RowWrite]) -> Result<Vec<Flip>, DramError>;

    /// Number of rounds executed so far (the paper's test-count metric).
    fn rounds_run(&self) -> u64;
}

impl TestPort for DramChip {
    fn geometry(&self) -> ChipGeometry {
        DramChip::geometry(self)
    }

    fn units(&self) -> u32 {
        1
    }

    fn run_round(&mut self, writes: &[RowWrite]) -> Result<Vec<Flip>, DramError> {
        for w in writes {
            if w.unit != 0 {
                return Err(DramError::AddressOutOfRange {
                    what: format!("unit {}", w.unit),
                    limit: "1 unit".into(),
                });
            }
        }
        let plain: Vec<_> = writes.iter().map(|w| (w.row, w.data.clone())).collect();
        let flips: Vec<Flip> = DramChip::run_round(self, &plain)?
            .into_iter()
            .map(|flip| Flip { unit: 0, flip })
            .collect();
        let rec = self.recorder();
        rec.incr("dram.port_rounds", 1);
        rec.observe("dram.port_round_writes", writes.len() as u64);
        rec.observe("dram.port_round_flips", flips.len() as u64);
        Ok(flips)
    }

    fn rounds_run(&self) -> u64 {
        DramChip::rounds_run(self)
    }
}

/// A DRAM module: a population of chips of one vendor, sharing geometry and
/// scrambler but with independent fault seeds (process variation).
///
/// # Examples
///
/// ```
/// use parbor_dram::{ModuleConfig, Vendor, ChipGeometry, PatternKind, RowId, TestPort};
///
/// # fn main() -> Result<(), parbor_dram::DramError> {
/// let mut m = ModuleConfig::new(Vendor::A)
///     .geometry(ChipGeometry::tiny())
///     .seed(3)
///     .build()?;
/// let rows: Vec<RowId> = (0..8).map(|r| RowId::new(0, r)).collect();
/// let flips = m.test_round_uniform(&rows, &PatternKind::Solid(false))?;
/// assert_eq!(m.rounds_run(), 1);
/// # drop(flips);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DramModule {
    id: ModuleId,
    vendor: Vendor,
    geometry: ChipGeometry,
    chips: Vec<DramChip>,
    rounds: u64,
    rec: RecorderHandle,
}

impl DramModule {
    /// Assembles a module; called by [`ModuleConfig::build`](crate::ModuleConfig::build).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        id: ModuleId,
        vendor: Vendor,
        geometry: ChipGeometry,
        chips: usize,
        seed: u64,
        rates: FaultRates,
        retention: RetentionModel,
        temperature: Celsius,
        refresh_interval: Seconds,
        scrambler: Arc<dyn Scrambler>,
    ) -> Result<Self, DramError> {
        let chips = (0..chips)
            .map(|i| {
                DramChip::with_parts(
                    geometry,
                    Arc::clone(&scrambler),
                    mix64(seed ^ (i as u64).wrapping_mul(0xA5A5_5A5A)),
                    rates,
                    retention,
                    temperature,
                    refresh_interval,
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(DramModule {
            id,
            vendor,
            geometry,
            chips,
            rounds: 0,
            rec: RecorderHandle::null(),
        })
    }

    /// Attaches a metrics recorder to the module and all its chips.
    pub fn with_recorder(mut self, rec: RecorderHandle) -> Self {
        self.set_recorder(rec);
        self
    }

    /// Replaces the metrics recorder of the module and all its chips.
    pub fn set_recorder(&mut self, rec: RecorderHandle) {
        for chip in &mut self.chips {
            chip.set_recorder(rec.clone());
        }
        self.rec = rec;
    }

    /// The module identifier.
    pub fn id(&self) -> ModuleId {
        self.id
    }

    /// The module's vendor.
    pub fn vendor(&self) -> Vendor {
        self.vendor
    }

    /// Human-readable module name in the paper's style (e.g. `A1`).
    pub fn name(&self) -> String {
        format!("{}{}", self.vendor, self.id.0)
    }

    /// The chips of the module.
    pub fn chips(&self) -> &[DramChip] {
        &self.chips
    }

    /// Mutable access to the chips (for oracle queries in experiments).
    pub fn chips_mut(&mut self) -> &mut [DramChip] {
        &mut self.chips
    }

    /// Changes the operating conditions of every chip.
    pub fn set_conditions(&mut self, temperature: Celsius, refresh_interval: Seconds) {
        for c in &mut self.chips {
            c.set_conditions(temperature, refresh_interval);
        }
    }

    /// Convenience round: writes the same pattern to the given rows of every
    /// chip, waits, reads back, and returns all flips.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range rows.
    pub fn test_round_uniform(
        &mut self,
        rows: &[RowId],
        pattern: &PatternKind,
    ) -> Result<Vec<Flip>, DramError> {
        let width = self.geometry.cols_per_row as usize;
        let mut writes = Vec::with_capacity(rows.len() * self.chips.len());
        for unit in 0..self.chips.len() as u32 {
            for &row in rows {
                writes.push(RowWrite {
                    unit,
                    row,
                    data: pattern.row_bits(row.row, width),
                });
            }
        }
        TestPort::run_round(self, &writes)
    }
}

impl TestPort for DramModule {
    fn geometry(&self) -> ChipGeometry {
        self.geometry
    }

    fn units(&self) -> u32 {
        self.chips.len() as u32
    }

    fn run_round(&mut self, writes: &[RowWrite]) -> Result<Vec<Flip>, DramError> {
        // Group writes per chip, execute one chip round each, merge flips.
        let mut per_chip: Vec<Vec<(RowId, RowBits)>> = vec![Vec::new(); self.chips.len()];
        for w in writes {
            let unit = w.unit as usize;
            if unit >= self.chips.len() {
                return Err(DramError::AddressOutOfRange {
                    what: format!("unit {}", w.unit),
                    limit: format!("{} units", self.chips.len()),
                });
            }
            per_chip[unit].push((w.row, w.data.clone()));
        }
        let mut flips = Vec::new();
        for (unit, chip_writes) in per_chip.iter().enumerate() {
            // Every chip advances its round even when untouched this round,
            // keeping module time coherent.
            if chip_writes.is_empty() {
                self.chips[unit].advance_round();
                continue;
            }
            for f in self.chips[unit].run_round(chip_writes)? {
                flips.push(Flip {
                    unit: unit as u32,
                    flip: f,
                });
            }
        }
        self.rounds += 1;
        self.rec.incr("dram.port_rounds", 1);
        self.rec
            .observe("dram.port_round_writes", writes.len() as u64);
        self.rec
            .observe("dram.port_round_flips", flips.len() as u64);
        Ok(flips)
    }

    fn rounds_run(&self) -> u64 {
        self.rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModuleConfig;

    fn small_module(seed: u64) -> DramModule {
        ModuleConfig::new(Vendor::A)
            .geometry(ChipGeometry::new(1, 16, 8192).unwrap())
            .chips(2)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn chips_have_distinct_seeds() {
        let m = small_module(1);
        assert_ne!(m.chips()[0].seed(), m.chips()[1].seed());
    }

    #[test]
    fn per_unit_writes_are_independent() {
        let mut m = small_module(1);
        let width = 8192;
        let writes = vec![
            RowWrite {
                unit: 0,
                row: RowId::new(0, 0),
                data: RowBits::ones(width),
            },
            RowWrite {
                unit: 1,
                row: RowId::new(0, 0),
                data: RowBits::zeros(width),
            },
        ];
        m.run_round(&writes).unwrap();
        assert_eq!(
            m.chips()[0]
                .written_row(RowId::new(0, 0))
                .unwrap()
                .count_ones(),
            width
        );
        assert_eq!(
            m.chips()[1]
                .written_row(RowId::new(0, 0))
                .unwrap()
                .count_ones(),
            0
        );
    }

    #[test]
    fn invalid_unit_rejected() {
        let mut m = small_module(1);
        let err = m
            .run_round(&[RowWrite {
                unit: 9,
                row: RowId::new(0, 0),
                data: RowBits::zeros(8192),
            }])
            .unwrap_err();
        assert!(matches!(err, DramError::AddressOutOfRange { .. }));
    }

    #[test]
    fn rounds_counted_per_module() {
        let mut m = small_module(1);
        let rows = [RowId::new(0, 0)];
        m.test_round_uniform(&rows, &PatternKind::Solid(true))
            .unwrap();
        m.test_round_uniform(&rows, &PatternKind::Solid(false))
            .unwrap();
        assert_eq!(m.rounds_run(), 2);
        // Chip rounds advance in lockstep.
        assert_eq!(DramChip::rounds_run(&m.chips()[0]), 2);
        assert_eq!(DramChip::rounds_run(&m.chips()[1]), 2);
    }

    #[test]
    fn module_name_matches_paper_style() {
        let m = ModuleConfig::new(Vendor::B)
            .geometry(ChipGeometry::tiny())
            .module_id(ModuleId(1))
            .build()
            .unwrap();
        assert_eq!(m.name(), "B1");
    }

    #[test]
    fn chip_as_test_port() {
        let mut chip = DramChip::new(ChipGeometry::tiny(), Vendor::B, 1).unwrap();
        let flips = TestPort::run_round(
            &mut chip,
            &[RowWrite {
                unit: 0,
                row: RowId::new(0, 0),
                data: RowBits::zeros(1024),
            }],
        )
        .unwrap();
        for f in flips {
            assert_eq!(f.unit, 0);
        }
        assert_eq!(TestPort::units(&chip), 1);
    }
}
