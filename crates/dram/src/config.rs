//! Configuration types and the module builder.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

use crate::cell::FaultRates;
use crate::module::{DramModule, ModuleId};
use crate::retention::RetentionModel;
use crate::scrambler::Scrambler;
use crate::vendor::Vendor;
use parbor_hal::ChipGeometry;
use parbor_hal::DramError;
use parbor_hal::MechanismSpec;

/// A temperature in degrees Celsius.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Celsius(pub f64);

impl fmt::Display for Celsius {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} °C", self.0)
    }
}

/// A duration in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Seconds(pub f64);

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} s", self.0)
    }
}

/// Builder for a simulated DRAM module.
///
/// Defaults mirror the paper's experimental setup: 8 chips per module,
/// vendor-calibrated fault rates, 45 °C, and a 4 s refresh interval (the
/// stress condition the paper tests under).
///
/// # Examples
///
/// ```
/// use parbor_dram::{ModuleConfig, Vendor, ChipGeometry, Celsius, Seconds};
///
/// # fn main() -> Result<(), parbor_dram::DramError> {
/// let module = ModuleConfig::new(Vendor::C)
///     .geometry(ChipGeometry::experiment_slice())
///     .chips(8)
///     .seed(0xC0FFEE)
///     .temperature(Celsius(45.0))
///     .refresh_interval(Seconds(4.0))
///     .build()?;
/// assert_eq!(module.chips().len(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ModuleConfig {
    vendor: Vendor,
    geometry: ChipGeometry,
    chips: usize,
    seed: u64,
    module_id: ModuleId,
    rates: Option<FaultRates>,
    retention: RetentionModel,
    temperature: Celsius,
    refresh_interval: Seconds,
    scrambler: Option<Arc<dyn Scrambler>>,
    mechanisms: Vec<MechanismSpec>,
}

impl ModuleConfig {
    /// Starts a configuration for a module of the given vendor.
    pub fn new(vendor: Vendor) -> Self {
        ModuleConfig {
            vendor,
            geometry: ChipGeometry::experiment_slice(),
            chips: 8,
            seed: 1,
            module_id: ModuleId(0),
            rates: None,
            retention: RetentionModel::default(),
            temperature: Celsius(45.0),
            refresh_interval: Seconds(4.0),
            scrambler: None,
            mechanisms: Vec::new(),
        }
    }

    /// Sets the per-chip geometry.
    pub fn geometry(mut self, geometry: ChipGeometry) -> Self {
        self.geometry = geometry;
        self
    }

    /// Sets the number of chips in the module (the paper's modules have 8).
    pub fn chips(mut self, chips: usize) -> Self {
        self.chips = chips;
        self
    }

    /// Sets the module's fault seed; chips derive their seeds from it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the module identifier used in reports (e.g. A₁ is module 1 of
    /// vendor A).
    pub fn module_id(mut self, id: ModuleId) -> Self {
        self.module_id = id;
        self
    }

    /// Overrides the vendor's default fault rates.
    pub fn fault_rates(mut self, rates: FaultRates) -> Self {
        self.rates = Some(rates);
        self
    }

    /// Overrides the retention/margin model.
    pub fn retention(mut self, retention: RetentionModel) -> Self {
        self.retention = retention;
        self
    }

    /// Sets the operating temperature (paper default 45 °C).
    pub fn temperature(mut self, t: Celsius) -> Self {
        self.temperature = t;
        self
    }

    /// Sets the refresh interval used between write and read of each test
    /// round (paper default 4 s).
    pub fn refresh_interval(mut self, s: Seconds) -> Self {
        self.refresh_interval = s;
        self
    }

    /// Overrides the vendor scrambler with a custom one (e.g. an
    /// [`IdentityScrambler`](crate::IdentityScrambler) control, or a custom
    /// walk built with [`hamiltonian_walk`](crate::hamiltonian_walk)).
    pub fn scrambler(mut self, s: Arc<dyn Scrambler>) -> Self {
        self.scrambler = Some(s);
        self
    }

    /// Composes extra failure mechanisms (RowHammer, RowPress, retention
    /// drift, …) on top of the vendor's coupling model. Every chip gets the
    /// same stack; an empty stack (the default) leaves the simulator
    /// bit-identical to a mechanism-free build.
    pub fn mechanisms(mut self, specs: Vec<MechanismSpec>) -> Self {
        self.mechanisms = specs;
        self
    }

    /// Builds the module.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] if the chip count is zero, the
    /// fault rates are out of range, or the scrambler width does not match
    /// the geometry.
    pub fn build(self) -> Result<DramModule, DramError> {
        if self.chips == 0 {
            return Err(DramError::InvalidConfig(
                "module needs at least one chip".into(),
            ));
        }
        let rates = self.rates.unwrap_or_else(|| self.vendor.default_rates());
        rates.validate()?;
        let scrambler = self
            .scrambler
            .unwrap_or_else(|| self.vendor.scrambler(self.geometry.cols_per_row as usize));
        if scrambler.row_bits() != self.geometry.cols_per_row as usize {
            return Err(DramError::InvalidConfig(format!(
                "scrambler width {} does not match geometry cols {}",
                scrambler.row_bits(),
                self.geometry.cols_per_row
            )));
        }
        let mut module = DramModule::assemble(
            self.module_id,
            self.vendor,
            self.geometry,
            self.chips,
            self.seed,
            rates,
            self.retention,
            self.temperature,
            self.refresh_interval,
            scrambler,
        )?;
        if !self.mechanisms.is_empty() {
            module.set_mechanisms(MechanismSpec::build_stack(&self.mechanisms));
        }
        Ok(module)
    }
}

/// A serializable description of a module — everything [`ModuleConfig`]
/// needs to rebuild the *same* simulated device in another process.
///
/// Module behavior is a pure function of this spec plus the round counter,
/// so a checkpointed scan can persist the spec, rebuild the module later
/// with [`ModuleSpec::build`], and fast-forward it with
/// [`DramModule::fast_forward`] to resume bit-identically. The vendor's
/// default scrambler is always used (custom scramblers are runtime objects
/// and are not spec-addressable).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleSpec {
    /// Chip vendor (selects default rates and the scrambler).
    pub vendor: Vendor,
    /// Per-chip geometry.
    pub geometry: ChipGeometry,
    /// Number of chips in the module.
    pub chips: usize,
    /// Module fault seed; chips derive their seeds from it.
    pub seed: u64,
    /// Module identifier used in reports.
    pub module_id: u32,
    /// Fault-rate override; `None` uses the vendor defaults.
    pub rates: Option<FaultRates>,
    /// Retention/margin model override; `None` uses the default model.
    pub retention: Option<RetentionModel>,
    /// Operating temperature.
    pub temperature: Celsius,
    /// Refresh interval between write and read of each round.
    pub refresh_interval: Seconds,
    /// Extra failure mechanisms composed on top of the coupling model.
    /// `None` (and the missing-field form older journals serialized)
    /// means none.
    pub mechanisms: Option<Vec<MechanismSpec>>,
}

impl ModuleSpec {
    /// A spec with the same defaults as [`ModuleConfig::new`].
    pub fn new(vendor: Vendor) -> Self {
        ModuleSpec {
            vendor,
            geometry: ChipGeometry::experiment_slice(),
            chips: 8,
            seed: 1,
            module_id: 0,
            rates: None,
            retention: None,
            temperature: Celsius(45.0),
            refresh_interval: Seconds(4.0),
            mechanisms: None,
        }
    }

    /// Builds the module this spec describes.
    ///
    /// # Errors
    ///
    /// Same as [`ModuleConfig::build`].
    pub fn build(&self) -> Result<DramModule, DramError> {
        let mut config = ModuleConfig::new(self.vendor)
            .geometry(self.geometry)
            .chips(self.chips)
            .seed(self.seed)
            .module_id(ModuleId(self.module_id))
            .temperature(self.temperature)
            .refresh_interval(self.refresh_interval);
        if let Some(rates) = self.rates {
            config = config.fault_rates(rates);
        }
        if let Some(retention) = self.retention {
            config = config.retention(retention);
        }
        if let Some(mechanisms) = &self.mechanisms {
            config = config.mechanisms(mechanisms.clone());
        }
        config.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_paper() {
        let m = ModuleConfig::new(Vendor::A)
            .geometry(ChipGeometry::tiny())
            .build()
            .unwrap();
        assert_eq!(m.chips().len(), 8);
        assert_eq!(m.vendor(), Vendor::A);
    }

    #[test]
    fn zero_chips_rejected() {
        let err = ModuleConfig::new(Vendor::A).chips(0).build().unwrap_err();
        assert!(matches!(err, DramError::InvalidConfig(_)));
    }

    #[test]
    fn mismatched_scrambler_rejected() {
        use crate::scrambler::IdentityScrambler;
        let err = ModuleConfig::new(Vendor::A)
            .geometry(ChipGeometry::tiny())
            .scrambler(Arc::new(IdentityScrambler::new(100)))
            .build()
            .unwrap_err();
        assert!(matches!(err, DramError::InvalidConfig(_)));
    }

    #[test]
    fn newtypes_display() {
        assert_eq!(Celsius(45.0).to_string(), "45 °C");
        assert_eq!(Seconds(4.0).to_string(), "4 s");
    }
}
