//! Deterministic, stateless hashing used for all per-cell and per-round draws.
//!
//! Every stochastic property of the simulated device (cell class, retention
//! time, coupling penalties, marginal/VRT behaviour, soft errors) is a pure
//! function of a seed and the cell coordinates, computed with the SplitMix64
//! finalizer. This keeps the device stateless and perfectly reproducible: two
//! reads of the same cell in the same round observe the same world.

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Combine a sequence of words into one hash value.
#[inline]
pub(crate) fn hash_words(words: &[u64]) -> u64 {
    let mut acc = 0x51ab_dead_beef_0001u64;
    for &w in words {
        acc = mix64(acc ^ w);
    }
    acc
}

/// Hash of a cell coordinate plus a stream tag, as a `u64`.
#[inline]
pub(crate) fn cell_hash(seed: u64, bank: u64, row: u64, col: u64, tag: u64) -> u64 {
    hash_words(&[seed, bank, row, col, tag])
}

/// Hash mapped to the unit interval `[0, 1)`.
#[inline]
pub(crate) fn hash01(h: u64) -> f64 {
    // 53 significant bits, like rand's standard float conversion.
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convenience: unit-interval hash of a cell coordinate.
#[inline]
pub(crate) fn cell_hash01(seed: u64, bank: u64, row: u64, col: u64, tag: u64) -> f64 {
    hash01(cell_hash(seed, bank, row, col, tag))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(42), mix64(43));
    }

    #[test]
    fn hash01_in_unit_interval() {
        for i in 0..10_000u64 {
            let v = hash01(mix64(i));
            assert!((0.0..1.0).contains(&v), "hash01({i}) = {v} out of range");
        }
    }

    #[test]
    fn hash01_roughly_uniform() {
        // Mean of many draws should be close to 0.5.
        let n = 100_000u64;
        let sum: f64 = (0..n).map(|i| hash01(mix64(i))).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn cell_hash_varies_with_every_coordinate() {
        let base = cell_hash(1, 2, 3, 4, 5);
        assert_ne!(base, cell_hash(9, 2, 3, 4, 5));
        assert_ne!(base, cell_hash(1, 9, 3, 4, 5));
        assert_ne!(base, cell_hash(1, 2, 9, 4, 5));
        assert_ne!(base, cell_hash(1, 2, 3, 9, 5));
        assert_ne!(base, cell_hash(1, 2, 3, 4, 9));
    }

    #[test]
    fn hash_words_sensitive_to_order() {
        assert_ne!(hash_words(&[1, 2]), hash_words(&[2, 1]));
    }
}
