//! Deterministic, stateless hashing used for all per-cell and per-round draws.
//!
//! Every stochastic property of the simulated device (cell class, retention
//! time, coupling penalties, marginal/VRT behaviour, soft errors) is a pure
//! function of a seed and the cell coordinates, computed with the SplitMix64
//! finalizer. This keeps the device stateless and perfectly reproducible: two
//! reads of the same cell in the same round observe the same world.

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Combine a sequence of words into one hash value.
#[inline]
pub(crate) fn hash_words(words: &[u64]) -> u64 {
    let mut acc = 0x51ab_dead_beef_0001u64;
    for &w in words {
        acc = mix64(acc ^ w);
    }
    acc
}

/// Hash of a cell coordinate plus a stream tag, as a `u64`.
#[inline]
pub(crate) fn cell_hash(seed: u64, bank: u64, row: u64, col: u64, tag: u64) -> u64 {
    hash_words(&[seed, bank, row, col, tag])
}

/// Hash mapped to the unit interval `[0, 1)`.
#[inline]
pub(crate) fn hash01(h: u64) -> f64 {
    // 53 significant bits, like rand's standard float conversion.
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convenience: unit-interval hash of a cell coordinate.
#[inline]
pub(crate) fn cell_hash01(seed: u64, bank: u64, row: u64, col: u64, tag: u64) -> f64 {
    hash01(cell_hash(seed, bank, row, col, tag))
}

/// Partial [`hash_words`] fold of `[seed, bank, row]` — the accumulator state
/// shared by every per-cell stream of one row.
///
/// [`cell_hash`] folds five words (five `mix64` calls); factoring the
/// row-constant prefix out means completing any `(col, tag)` stream costs two
/// more calls ([`prefix_col`] + [`finish_tag`]), and all tag streams of one
/// column share the [`prefix_col`] result. The fault-map sampler leans on
/// this: per physical position it pays 1 + one call per screened stream
/// instead of 5 per stream, bit-identical by construction.
#[inline]
pub(crate) fn stream_prefix(seed: u64, bank: u64, row: u64) -> u64 {
    hash_words(&[seed, bank, row])
}

/// Folds a column into a [`stream_prefix`]; shared by all tag streams of the
/// cell.
#[inline]
pub(crate) fn prefix_col(prefix: u64, col: u64) -> u64 {
    mix64(prefix ^ col)
}

/// Completes a per-cell stream: `finish_tag(prefix_col(p, col), tag)` equals
/// `cell_hash(seed, bank, row, col, tag)` exactly.
#[inline]
pub(crate) fn finish_tag(mid: u64, tag: u64) -> u64 {
    mix64(mid ^ tag)
}

/// Exact integer form of the Bernoulli screen `hash01(h) < rate`: returns the
/// unique `t` with `hash01(h) < rate  ⟺  (h >> 11) < t`.
///
/// `hash01` maps `k = h >> 11` (at most 53 bits) to `k · 2⁻⁵³`; every such
/// value is exactly representable in an `f64` (53-bit mantissa, power-of-two
/// scale), so the float comparison partitions the `k` axis at one integer
/// boundary. The fixup loops locate that boundary starting from a truncation
/// of `rate · 2⁵³`, letting samplers replace three float conversions and
/// compares per cell with shift-and-compare on the raw hash words.
pub(crate) fn unit_threshold(rate: f64) -> u64 {
    const ONE: u64 = 1u64 << 53;
    const INV: f64 = 1.0 / ONE as f64;
    if rate.is_nan() || rate <= 0.0 {
        return 0;
    }
    if rate >= 1.0 {
        return ONE;
    }
    let mut t = ((rate * ONE as f64) as u64).min(ONE);
    while t < ONE && (t as f64 * INV) < rate {
        t += 1;
    }
    while t > 0 && ((t - 1) as f64 * INV) >= rate {
        t -= 1;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(42), mix64(43));
    }

    #[test]
    fn hash01_in_unit_interval() {
        for i in 0..10_000u64 {
            let v = hash01(mix64(i));
            assert!((0.0..1.0).contains(&v), "hash01({i}) = {v} out of range");
        }
    }

    #[test]
    fn hash01_roughly_uniform() {
        // Mean of many draws should be close to 0.5.
        let n = 100_000u64;
        let sum: f64 = (0..n).map(|i| hash01(mix64(i))).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn cell_hash_varies_with_every_coordinate() {
        let base = cell_hash(1, 2, 3, 4, 5);
        assert_ne!(base, cell_hash(9, 2, 3, 4, 5));
        assert_ne!(base, cell_hash(1, 9, 3, 4, 5));
        assert_ne!(base, cell_hash(1, 2, 9, 4, 5));
        assert_ne!(base, cell_hash(1, 2, 3, 9, 5));
        assert_ne!(base, cell_hash(1, 2, 3, 4, 9));
    }

    #[test]
    fn hash_words_sensitive_to_order() {
        assert_ne!(hash_words(&[1, 2]), hash_words(&[2, 1]));
    }

    #[test]
    fn prefix_decomposition_matches_cell_hash() {
        for (seed, bank, row, col, tag) in [
            (1u64, 0u64, 0u64, 0u64, 1u64),
            (42, 3, 8191, 511, 8),
            (u64::MAX, 7, 123, 4096, 5),
        ] {
            let prefix = stream_prefix(seed, bank, row);
            let mid = prefix_col(prefix, col);
            assert_eq!(finish_tag(mid, tag), cell_hash(seed, bank, row, col, tag));
        }
    }

    #[test]
    fn unit_threshold_is_exact_boundary() {
        let rates = [
            0.0,
            1.0,
            2.0e-3,
            4.0e-5,
            1.5e-5,
            0.12,
            0.3,
            0.5,
            1.0e-9,
            f64::NAN,
            -0.5,
            2.0,
        ];
        for rate in rates {
            let t = unit_threshold(rate);
            // The boundary property itself: k < t ⟺ hash01 value < rate.
            for k in [t.wrapping_sub(2), t.wrapping_sub(1), t, t + 1] {
                if k > (1u64 << 53) - 1 {
                    continue;
                }
                let v = hash01(k << 11); // hash01 keeps exactly the top 53 bits
                assert_eq!(v < rate, k < t, "rate {rate}, k {k}, t {t}");
            }
        }
        // Exhaustive agreement on real hash outputs for the default rates.
        for rate in [2.0e-3, 4.0e-5, 1.5e-5] {
            let t = unit_threshold(rate);
            for i in 0..50_000u64 {
                let h = mix64(i);
                assert_eq!(hash01(h) < rate, (h >> 11) < t, "rate {rate}, i {i}");
            }
        }
    }
}
