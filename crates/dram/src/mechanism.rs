//! The bitline-coupling failure model as a composable [`FailureMechanism`].
//!
//! PARBOR's device model — seeded per-cell coupling profiles, scrambled
//! neighborhoods, retention-margin physics — used to live spread across
//! [`DramChip`](crate::DramChip)'s fields. [`CouplingMechanism`] gathers
//! that state (seed, scrambler + compiled LUT, fault rates, retention
//! model, derived margin shift) behind one struct so the chip composes it
//! like any other mechanism, and so efficacy harnesses can ask it the same
//! questions they ask a [`HammerMechanism`](parbor_hal::HammerMechanism):
//! "what flips do you emit?" and "which cells *can* you fail?".
//!
//! The chip still evaluates coupling through its own cached fast path
//! (fault maps, compiled stencils, memoized evaluations) — the trait's
//! [`flips`](FailureMechanism::flips) here is the uncached reference route,
//! used by harnesses that evaluate mechanisms standalone. Both routes build
//! the same [`RowFaultMap`], so they agree bit for bit.

use std::sync::Arc;

use parbor_hal::{BitAddr, BitFlip, DramError, FailureMechanism, KernelMode, RowId, RowView};

use crate::cell::{CellClass, FaultKind, FaultRates, RowFaultMap};
use crate::config::{Celsius, Seconds};
use crate::retention::RetentionModel;
use crate::scrambler::{Scrambler, ScramblerLut};
use crate::stencil::CouplingStencil;

/// The paper's data-dependent failure model, packaged as one mechanism.
///
/// Owns everything coupling evaluation needs and nothing else: the fault
/// seed, the vendor scrambler (plus the LUT it compiles to), the fault-rate
/// knobs, the retention model, and the margin shift derived from operating
/// conditions. Fault maps are pure in `(seed, row, scrambler, rates,
/// retention)`; the margin shift folds temperature and refresh interval in
/// at evaluation time.
#[derive(Debug, Clone)]
pub struct CouplingMechanism {
    seed: u64,
    scrambler: Arc<dyn Scrambler>,
    // The scrambler compiled into dense tables at construction; the stencil
    // (shipped) kernel builds fault maps through it, the reference kernel
    // keeps the arithmetic path as the measurement baseline.
    lut: Arc<ScramblerLut>,
    rates: FaultRates,
    retention: RetentionModel,
    theta_shift: f64,
}

impl CouplingMechanism {
    /// Builds the mechanism, validating the rates and deriving the margin
    /// shift from the operating conditions.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] when the rates are invalid.
    pub fn new(
        seed: u64,
        scrambler: Arc<dyn Scrambler>,
        rates: FaultRates,
        retention: RetentionModel,
        temperature: Celsius,
        refresh_interval: Seconds,
    ) -> Result<Self, DramError> {
        rates.validate()?;
        let lut = Arc::new(ScramblerLut::build(&*scrambler));
        let theta_shift = theta_shift_for(&retention, temperature, refresh_interval);
        Ok(CouplingMechanism {
            seed,
            scrambler,
            lut,
            rates,
            retention,
            theta_shift,
        })
    }

    /// The fault seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The vendor scrambler (shared, read-only).
    pub fn scrambler(&self) -> &Arc<dyn Scrambler> {
        &self.scrambler
    }

    /// The scrambler compiled into dense lookup tables at construction.
    pub fn lut(&self) -> &Arc<ScramblerLut> {
        &self.lut
    }

    /// The fault-rate knobs.
    pub fn rates(&self) -> &FaultRates {
        &self.rates
    }

    /// The retention model.
    pub fn retention(&self) -> &RetentionModel {
        &self.retention
    }

    /// Current effective margin shift (`κ · log2(stress factor)`).
    pub fn theta_shift(&self) -> f64 {
        self.theta_shift
    }

    /// Re-derives the margin shift for new operating conditions. Fault maps
    /// are shift-independent and stay valid; anything compiled against the
    /// shift (stencils, memoized evaluations) must be invalidated by the
    /// caller.
    pub fn set_conditions(&mut self, temperature: Celsius, refresh_interval: Seconds) {
        self.theta_shift = theta_shift_for(&self.retention, temperature, refresh_interval);
    }

    /// Builds a row's fault map with the sampler matching the kernel mode.
    /// Pure (`&self`): safe to run for many rows on concurrent threads.
    ///
    /// The stencil (shipped) path translates through the compiled LUT —
    /// indexed loads instead of the div/mod chains — while the reference
    /// path keeps the arithmetic scrambler as the measurement baseline.
    /// Both produce identical maps: the LUT's tables are filled from the
    /// same scrambler.
    pub fn build_fault_map(&self, row: RowId, kernel: KernelMode) -> RowFaultMap {
        match kernel {
            KernelMode::Stencil => {
                RowFaultMap::build(self.seed, row, &*self.lut, &self.rates, &self.retention)
            }
            KernelMode::Reference => RowFaultMap::build_reference(
                self.seed,
                row,
                &*self.scrambler,
                &self.rates,
                &self.retention,
            ),
        }
    }

    /// Compiles a fresh [`CouplingStencil`] for a row at the current margin
    /// shift, bypassing any caches.
    pub fn compile_stencil(&self, row: RowId) -> CouplingStencil {
        let map = RowFaultMap::build(self.seed, row, &*self.lut, &self.rates, &self.retention);
        CouplingStencil::compile(&map, self.theta_shift)
    }
}

/// The margin shift operating conditions induce: `κ · log2(stress factor)`.
fn theta_shift_for(
    retention: &RetentionModel,
    temperature: Celsius,
    refresh_interval: Seconds,
) -> f64 {
    retention.kappa
        * retention
            .stress_factor(refresh_interval, temperature)
            .log2()
}

/// Ground-truth oracle for one fault map: every data-dependent cell with
/// its class at margin shift `theta_shift`. For validation and coverage
/// accounting only — PARBOR itself never calls this.
pub fn oracle_cells(map: &RowFaultMap, theta_shift: f64) -> Vec<(u32, CellClass)> {
    map.entries
        .iter()
        .filter_map(|e| match &e.kind {
            FaultKind::Coupling(p) => {
                let c = p.classify(theta_shift);
                c.is_data_dependent().then_some((e.sys, c))
            }
            _ => None,
        })
        .collect()
}

impl FailureMechanism for CouplingMechanism {
    fn name(&self) -> &'static str {
        "coupling"
    }

    /// The uncached reference route: build the row's fault map and evaluate
    /// the coupling population against the row content. Deliberately limited
    /// to the *data-dependent* kinds — marginal, VRT, and soft-noise draws
    /// key on a round clock this standalone view does not model.
    fn flips(&self, view: &RowView<'_>) -> Vec<BitFlip> {
        let map = self.build_fault_map(view.row, KernelMode::Stencil);
        let coupled = map.coupling_fail_indices(view.data, self.theta_shift);
        let mut flips = Vec::with_capacity(coupled.len());
        let mut ci = 0usize;
        for (idx, e) in map.entries.iter().enumerate() {
            if !matches!(e.kind, FaultKind::Coupling(_)) {
                continue;
            }
            if coupled.get(ci) == Some(&(idx as u32)) {
                ci += 1;
                flips.push(BitFlip {
                    addr: BitAddr::new(view.row.bank, view.row.row, e.sys),
                    expected: view.data.get(e.sys as usize),
                });
            }
        }
        flips
    }

    /// Every coupling cell that can fail at the current margin shift under
    /// *some* content — the data-dependent classes plus retention-weak cells
    /// (which fail whenever charged). A superset of
    /// [`oracle_cells`], which keeps only the data-dependent classes.
    fn truth(&self, bank: u32, row: u32, _cols: u32) -> Vec<u32> {
        let map = self.build_fault_map(RowId::new(bank, row), KernelMode::Stencil);
        map.entries
            .iter()
            .filter_map(|e| match &e.kind {
                FaultKind::Coupling(p) => {
                    (p.classify(self.theta_shift) != CellClass::Robust).then_some(e.sys)
                }
                _ => None,
            })
            .collect()
    }

    fn is_inert(&self) -> bool {
        self.rates.interesting <= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternKind;
    use crate::vendor::Vendor;
    use parbor_hal::{ChipGeometry, RowBits};

    fn mech(seed: u64) -> CouplingMechanism {
        let geometry = ChipGeometry::new(1, 16, 8192).unwrap();
        CouplingMechanism::new(
            seed,
            Vendor::A.scrambler(geometry.cols_per_row as usize),
            Vendor::A.default_rates(),
            RetentionModel::default(),
            Celsius(45.0),
            Seconds(4.0),
        )
        .unwrap()
    }

    fn view<'a>(row: RowId, data: &'a RowBits) -> RowView<'a> {
        RowView {
            unit: 0,
            row,
            data,
            activations: 1,
            open_ns: 0.0,
            round: 0,
            elapsed_s: 4.0,
            left: None,
            right: None,
        }
    }

    #[test]
    fn standalone_flips_match_fault_map_eval() {
        let m = mech(11);
        let mut seen = 0usize;
        for r in 0..16u32 {
            let row = RowId::new(0, r);
            let data = PatternKind::ColStripe { period: 1 }.row_bits(r, 8192);
            let flips = m.flips(&view(row, &data));
            let map = m.build_fault_map(row, KernelMode::Stencil);
            let direct = map.coupling_fail_indices(&data, m.theta_shift());
            assert_eq!(flips.len(), direct.len(), "row {r}");
            seen += flips.len();
        }
        assert!(seen > 0, "no coupling flips across 16 striped rows");
    }

    #[test]
    fn truth_contains_every_emitted_flip() {
        let m = mech(7);
        for r in 0..8u32 {
            let row = RowId::new(0, r);
            let data = PatternKind::ColStripe { period: 1 }.row_bits(r, 8192);
            let truth: std::collections::HashSet<u32> = m.truth(0, r, 8192).into_iter().collect();
            for f in m.flips(&view(row, &data)) {
                assert!(
                    truth.contains(&f.addr.col),
                    "flip at col {} outside truth set",
                    f.addr.col
                );
            }
        }
    }

    #[test]
    fn kernel_modes_build_identical_maps() {
        let m = mech(3);
        for r in 0..4u32 {
            let row = RowId::new(0, r);
            assert_eq!(
                m.build_fault_map(row, KernelMode::Stencil),
                m.build_fault_map(row, KernelMode::Reference)
            );
        }
    }

    #[test]
    fn conditions_move_the_margin_shift() {
        let mut m = mech(5);
        let base = m.theta_shift();
        m.set_conditions(Celsius(75.0), Seconds(4.0));
        assert!(m.theta_shift() > base, "hotter must raise the shift");
    }

    #[test]
    fn inert_only_at_zero_interesting_rate() {
        let m = mech(1);
        assert!(!m.is_inert());
        let zero = CouplingMechanism::new(
            1,
            Vendor::A.scrambler(8192),
            FaultRates {
                interesting: 0.0,
                ..Vendor::A.default_rates()
            },
            RetentionModel::default(),
            Celsius(45.0),
            Seconds(4.0),
        )
        .unwrap();
        assert!(zero.is_inert());
    }
}
