//! Bus-level addressing: how module bytes spread over chips, beats, and DQ
//! lanes (paper §2.1 and Figure 5).
//!
//! A rank of eight x8 chips drives a 64-bit bus; a 64-byte cache line
//! transfers in 8 beats, each chip contributing 8 bits per beat. An 8 KB
//! module row is therefore 1024 beats, and each chip holds an 8192-bit
//! slice of it. The tester-facing crates work in per-chip column space;
//! this module provides the exact conversions to and from module-level bit
//! and byte addresses — the view software actually has.

use serde::{Deserialize, Serialize};

use parbor_hal::DramError;
use parbor_hal::RowBits;

/// Chips per rank (x8 devices on a 64-bit bus).
pub const CHIPS_PER_RANK: u32 = 8;
/// DQ lanes per chip.
pub const LANES_PER_CHIP: u32 = 8;
/// Bits transferred per beat (the bus width).
pub const BUS_BITS: u32 = CHIPS_PER_RANK * LANES_PER_CHIP;
/// Bits of one chip's row slice.
pub const CHIP_ROW_BITS: u32 = 8192;
/// Bits of one module row (8 KB).
pub const MODULE_ROW_BITS: u32 = CHIP_ROW_BITS * CHIPS_PER_RANK;

/// Position of one bit on the bus: which beat of the row transfer, and
/// which of the 64 bus lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BurstCoord {
    /// Beat index within the row transfer (0..1024 for an 8 KB row).
    pub beat: u32,
    /// Bus lane (0..64); lane `l` belongs to chip `l / 8`, DQ pin `l % 8`.
    pub lane: u32,
}

impl BurstCoord {
    /// The chip driving this lane.
    pub fn chip(&self) -> u32 {
        self.lane / LANES_PER_CHIP
    }

    /// The DQ pin within the chip.
    pub fn dq(&self) -> u32 {
        self.lane % LANES_PER_CHIP
    }

    /// The per-chip column this coordinate maps to.
    pub fn chip_col(&self) -> u32 {
        self.beat * LANES_PER_CHIP + self.dq()
    }
}

/// Decomposes a module-level bit address (0..65536) into its bus position.
///
/// # Errors
///
/// Returns [`DramError::AddressOutOfRange`] past the module row.
pub fn module_bit_to_burst(bit: u32) -> Result<BurstCoord, DramError> {
    if bit >= MODULE_ROW_BITS {
        return Err(DramError::AddressOutOfRange {
            what: format!("module bit {bit}"),
            limit: format!("{MODULE_ROW_BITS} bits per row"),
        });
    }
    Ok(BurstCoord {
        beat: bit / BUS_BITS,
        lane: bit % BUS_BITS,
    })
}

/// Recomposes a bus position into the module-level bit address.
pub fn burst_to_module_bit(coord: BurstCoord) -> u32 {
    coord.beat * BUS_BITS + coord.lane
}

/// The (chip, per-chip column) holding a module-level bit address.
///
/// # Errors
///
/// Returns [`DramError::AddressOutOfRange`] past the module row.
pub fn module_bit_to_chip(bit: u32) -> Result<(u32, u32), DramError> {
    let coord = module_bit_to_burst(bit)?;
    Ok((coord.chip(), coord.chip_col()))
}

/// The module-level bit address of a (chip, per-chip column) pair.
///
/// # Errors
///
/// Returns [`DramError::AddressOutOfRange`] when either index is out of
/// range.
pub fn chip_to_module_bit(chip: u32, col: u32) -> Result<u32, DramError> {
    if chip >= CHIPS_PER_RANK || col >= CHIP_ROW_BITS {
        return Err(DramError::AddressOutOfRange {
            what: format!("chip {chip} col {col}"),
            limit: format!("{CHIPS_PER_RANK} chips x {CHIP_ROW_BITS} cols"),
        });
    }
    let beat = col / LANES_PER_CHIP;
    let dq = col % LANES_PER_CHIP;
    Ok(burst_to_module_bit(BurstCoord {
        beat,
        lane: chip * LANES_PER_CHIP + dq,
    }))
}

/// A full 8 KB module row as software sees it, convertible to and from the
/// eight per-chip slices the tester crates operate on.
///
/// # Examples
///
/// ```
/// use parbor_dram::burst::ModuleRowImage;
///
/// # fn main() -> Result<(), parbor_dram::DramError> {
/// let mut image = ModuleRowImage::zeros();
/// image.set_byte(0, 0xFF)?; // first bus byte -> chip 0, beat 0
/// let slices = image.to_chip_slices();
/// assert_eq!(slices[0].count_ones(), 8);
/// assert_eq!(ModuleRowImage::from_chip_slices(&slices)?, image);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleRowImage {
    bits: RowBits,
}

impl ModuleRowImage {
    /// An all-zero module row.
    pub fn zeros() -> Self {
        ModuleRowImage {
            bits: RowBits::zeros(MODULE_ROW_BITS as usize),
        }
    }

    /// Reads one module-level bit.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::AddressOutOfRange`] past the row.
    pub fn get(&self, bit: u32) -> Result<bool, DramError> {
        module_bit_to_burst(bit)?;
        Ok(self.bits.get(bit as usize))
    }

    /// Writes one module-level bit.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::AddressOutOfRange`] past the row.
    pub fn set(&mut self, bit: u32, v: bool) -> Result<(), DramError> {
        module_bit_to_burst(bit)?;
        self.bits.set(bit as usize, v);
        Ok(())
    }

    /// Writes one byte at a module byte offset (0..8192).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::AddressOutOfRange`] past the row.
    pub fn set_byte(&mut self, byte: u32, value: u8) -> Result<(), DramError> {
        for i in 0..8 {
            self.set(byte * 8 + i, value & (1 << i) != 0)?;
        }
        Ok(())
    }

    /// Splits the module row into the eight per-chip 8192-bit slices.
    pub fn to_chip_slices(&self) -> Vec<RowBits> {
        let mut slices = vec![RowBits::zeros(CHIP_ROW_BITS as usize); CHIPS_PER_RANK as usize];
        for bit in 0..MODULE_ROW_BITS {
            if self.bits.get(bit as usize) {
                let (chip, col) = module_bit_to_chip(bit).expect("bit in range");
                slices[chip as usize].set(col as usize, true);
            }
        }
        slices
    }

    /// Reassembles a module row from eight per-chip slices.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::WidthMismatch`] unless exactly eight 8192-bit
    /// slices are supplied.
    pub fn from_chip_slices(slices: &[RowBits]) -> Result<Self, DramError> {
        if slices.len() != CHIPS_PER_RANK as usize {
            return Err(DramError::WidthMismatch {
                got: slices.len(),
                expected: CHIPS_PER_RANK as usize,
            });
        }
        let mut image = Self::zeros();
        for (chip, slice) in slices.iter().enumerate() {
            if slice.len() != CHIP_ROW_BITS as usize {
                return Err(DramError::WidthMismatch {
                    got: slice.len(),
                    expected: CHIP_ROW_BITS as usize,
                });
            }
            for col in 0..CHIP_ROW_BITS {
                if slice.get(col as usize) {
                    let bit = chip_to_module_bit(chip as u32, col)?;
                    image.bits.set(bit as usize, true);
                }
            }
        }
        Ok(image)
    }
}

impl Default for ModuleRowImage {
    fn default() -> Self {
        Self::zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_round_trips_through_burst_coords() {
        for bit in (0..MODULE_ROW_BITS).step_by(97) {
            let coord = module_bit_to_burst(bit).unwrap();
            assert_eq!(burst_to_module_bit(coord), bit);
            let (chip, col) = module_bit_to_chip(bit).unwrap();
            assert_eq!(chip_to_module_bit(chip, col).unwrap(), bit);
        }
    }

    #[test]
    fn consecutive_module_bits_within_a_byte_share_a_chip() {
        // Bus lanes 0..8 are chip 0: byte 0 of each beat goes to chip 0.
        for i in 0..8 {
            let (chip, _) = module_bit_to_chip(i).unwrap();
            assert_eq!(chip, 0);
        }
        let (chip, _) = module_bit_to_chip(8).unwrap();
        assert_eq!(chip, 1);
    }

    #[test]
    fn chip_slice_is_beat_major() {
        // Chip 0's column c sits at beat c/8, dq c%8.
        let bit = chip_to_module_bit(0, 9).unwrap();
        let coord = module_bit_to_burst(bit).unwrap();
        assert_eq!(coord.beat, 1);
        assert_eq!(coord.dq(), 1);
        assert_eq!(coord.chip(), 0);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(module_bit_to_burst(MODULE_ROW_BITS).is_err());
        assert!(chip_to_module_bit(8, 0).is_err());
        assert!(chip_to_module_bit(0, CHIP_ROW_BITS).is_err());
    }

    #[test]
    fn image_round_trips_through_slices() {
        let mut image = ModuleRowImage::zeros();
        for bit in (0..MODULE_ROW_BITS).step_by(311) {
            image.set(bit, true).unwrap();
        }
        let slices = image.to_chip_slices();
        assert_eq!(ModuleRowImage::from_chip_slices(&slices).unwrap(), image);
    }

    #[test]
    fn byte_write_lands_on_one_chip() {
        let mut image = ModuleRowImage::zeros();
        image.set_byte(3, 0xA5).unwrap(); // byte 3 of beat 0 -> chip 3
        let slices = image.to_chip_slices();
        for (chip, slice) in slices.iter().enumerate() {
            let expected = if chip == 3 { 4 } else { 0 }; // 0xA5 has 4 ones
            assert_eq!(slice.count_ones(), expected, "chip {chip}");
        }
    }

    #[test]
    fn from_slices_validates_shape() {
        let slices = vec![RowBits::zeros(CHIP_ROW_BITS as usize); 7];
        assert!(ModuleRowImage::from_chip_slices(&slices).is_err());
        let bad_width = vec![RowBits::zeros(100); 8];
        assert!(ModuleRowImage::from_chip_slices(&bad_width).is_err());
    }
}
