//! Per-cell fault population: coupling-vulnerable cells, retention-weak
//! cells, marginal cells, and VRT cells.
//!
//! The model follows the paper's taxonomy (§2.3, §5.2.1, §5.2.4):
//!
//! * **Data-dependent (coupling) failures** — a charged victim is disturbed
//!   by discharged physical neighbors through bitline coupling. We model the
//!   total interference on a victim as
//!   `I = w_l·opp_l + w_r·opp_r + w_win·max(0, 2·(frac_opp(window) − ½))`,
//!   where `opp_*` indicate immediate physical neighbors in the opposite
//!   charge state and the *window* term captures weaker second-order
//!   coupling from nearby bitlines — it only contributes once the window is
//!   majority-opposite (balanced windows cancel). The victim flips when
//!   `I ≥ θ`, its
//!   per-cell interference margin. Process variation (random `w_l`, `w_r`,
//!   `θ`) yields the paper's cell classes organically: *strongly coupled*
//!   cells (`θ ≤ max(w_l, w_r)`) fail from one neighbor alone, *weakly
//!   coupled* cells need both, and *deep* cells additionally need a biased
//!   window — the population only a neighbor-aware worst-case pattern finds
//!   reliably (the paper's Fig 13 "only PARBOR" slice).
//! * **Retention-weak** cells (`θ ≤ 0`) fail whenever charged, regardless of
//!   neighbors.
//! * **Marginal** cells fail intermittently with a fixed probability.
//! * **VRT** cells toggle between a leaky and a healthy state across epochs.
//!
//! All populations are drawn statelessly by hashing `(seed, bank, row,
//! physical column)`, so fault maps can be rebuilt at any time and are
//! identical across runs.

use serde::{Deserialize, Serialize};

use crate::hash::{
    cell_hash01, finish_tag, hash01, mix64, prefix_col, stream_prefix, unit_threshold,
};
use crate::retention::RetentionModel;
use crate::scrambler::Scrambler;
use parbor_hal::DramError;
use parbor_hal::RowBits;
use parbor_hal::RowId;

// Hash stream tags. Each independent per-cell draw uses its own tag.
const TAG_INTERESTING: u64 = 1;
const TAG_THETA: u64 = 2;
const TAG_WL: u64 = 3;
const TAG_WR: u64 = 4;
const TAG_MARGINAL: u64 = 5;
const TAG_VRT: u64 = 6;
const TAG_ANTI: u64 = 7;
const TAG_WEAK: u64 = 8;

/// Population rates and shape parameters of the fault model.
///
/// The defaults are calibrated so an [`experiment_slice`] module produces
/// failure counts with the paper's Fig 12 shape; vendors override
/// `interesting` (see [`Vendor::default_rates`](crate::Vendor::default_rates)).
///
/// [`experiment_slice`]: crate::ChipGeometry::experiment_slice
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRates {
    /// Probability that a cell is retention-marginal enough to participate
    /// in the coupling model at all ("interesting").
    pub interesting: f64,
    /// Fraction of interesting cells that are retention-weak (fail whenever
    /// charged, with no neighbor help).
    pub weak_share: f64,
    /// Probability that a cell is marginal (intermittent failure).
    pub marginal: f64,
    /// Per-round failure probability of a charged marginal cell.
    pub marginal_fail_prob: f64,
    /// Probability that a cell exhibits variable retention time.
    pub vrt: f64,
    /// Number of test rounds per VRT epoch (the leaky/healthy state is
    /// redrawn each epoch).
    pub vrt_epoch_rounds: u64,
    /// Soft-error probability per bit per round.
    pub soft_per_bit_per_round: f64,
    /// Width (physical columns) of the true-/anti-cell polarity blocks.
    pub anti_block: usize,
    /// Half-width of the second-order coupling window (physical cells at
    /// distance `2..=window_radius` on each side contribute).
    pub window_radius: usize,
    /// Maximum interference contributed by a fully opposite window.
    pub window_weight: f64,
}

impl Default for FaultRates {
    fn default() -> Self {
        FaultRates {
            interesting: 2.0e-3,
            weak_share: 0.12,
            marginal: 4.0e-5,
            marginal_fail_prob: 0.3,
            vrt: 1.5e-5,
            vrt_epoch_rounds: 5,
            soft_per_bit_per_round: 1.0e-9,
            anti_block: 512,
            window_radius: 4,
            window_weight: 0.6,
        }
    }
}

impl FaultRates {
    /// Validates that all probabilities are in `[0, 1]` and shape parameters
    /// are sane.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] describing the first offending
    /// field.
    pub fn validate(&self) -> Result<(), DramError> {
        for (name, p) in [
            ("interesting", self.interesting),
            ("weak_share", self.weak_share),
            ("marginal", self.marginal),
            ("marginal_fail_prob", self.marginal_fail_prob),
            ("vrt", self.vrt),
            ("soft_per_bit_per_round", self.soft_per_bit_per_round),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(DramError::InvalidConfig(format!(
                    "rate {name} = {p} outside [0, 1]"
                )));
            }
        }
        if self.anti_block == 0 {
            return Err(DramError::InvalidConfig(
                "anti_block must be nonzero".into(),
            ));
        }
        if self.window_radius < 2 {
            return Err(DramError::InvalidConfig(
                "window_radius must be at least 2".into(),
            ));
        }
        if self.window_radius > 32 {
            // Keeps the full window (2·(radius−1) cells) under 64, so the
            // compiled coupling stencil can hold a per-count failure mask in
            // one word (see `CouplingStencil`).
            return Err(DramError::InvalidConfig(
                "window_radius must be at most 32".into(),
            ));
        }
        if self.vrt_epoch_rounds == 0 {
            return Err(DramError::InvalidConfig(
                "vrt_epoch_rounds must be nonzero".into(),
            ));
        }
        Ok(())
    }
}

/// Whether a cell stores logical `1` as the discharged state (anti-cell)
/// rather than the charged state (true cell). Drawn per polarity block.
pub(crate) fn is_anti(seed: u64, bank: u32, phys: usize, anti_block: usize) -> bool {
    let block = (phys / anti_block) as u64;
    cell_hash01(seed, u64::from(bank), 0, block, TAG_ANTI) < 0.5
}

/// A cell referenced by a coupling profile: its system column and polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellRef {
    /// System column of the referenced cell.
    pub sys: u32,
    /// `true` if the cell is an anti-cell (stores `1` discharged).
    pub anti: bool,
}

/// The coupling-failure profile of one interesting cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellProfile {
    /// Reference-condition interference margin; effective margin is
    /// `theta_ref - theta_shift` (see [`RetentionModel::theta_at`]).
    pub theta_ref: f64,
    /// Interference weight of the left physical neighbor.
    pub w_left: f64,
    /// Interference weight of the right physical neighbor.
    pub w_right: f64,
    /// Left physical neighbor (absent at tile edges).
    pub left: Option<CellRef>,
    /// Right physical neighbor (absent at tile edges).
    pub right: Option<CellRef>,
    /// Second-order window cells (physical distance `2..=window_radius`).
    pub window: Vec<CellRef>,
    /// Maximum interference a fully opposite window can contribute.
    pub window_weight: f64,
    /// Size of a full (non-edge) window; the opposite-fraction denominator.
    pub window_full: usize,
}

impl CellProfile {
    /// The largest interference the cell's (possibly edge-truncated) window
    /// can contribute.
    pub fn max_window_interference(&self) -> f64 {
        if self.window_full == 0 {
            return 0.0;
        }
        let frac = self.window.len() as f64 / self.window_full as f64;
        self.window_weight * ((frac - 0.5).max(0.0) * 2.0)
    }

    /// Classifies the cell at an effective margin `θ = theta_ref − shift`.
    pub fn classify(&self, theta_shift: f64) -> CellClass {
        let theta = self.theta_ref - theta_shift;
        let wl = if self.left.is_some() {
            self.w_left
        } else {
            0.0
        };
        let wr = if self.right.is_some() {
            self.w_right
        } else {
            0.0
        };
        if theta <= 0.0 {
            CellClass::RetentionWeak
        } else if theta <= wl && theta <= wr {
            CellClass::StrongBoth
        } else if theta <= wl {
            CellClass::StrongLeft
        } else if theta <= wr {
            CellClass::StrongRight
        } else if theta <= wl + wr {
            CellClass::WeaklyCoupled
        } else if theta <= wl + wr + self.max_window_interference() {
            CellClass::DeepCoupled
        } else {
            CellClass::Robust
        }
    }
}

/// Coupling-sensitivity classes (paper §4.1, extended with the window-driven
/// `DeepCoupled` class and the non-data-dependent populations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellClass {
    /// Never fails at the operating conditions.
    Robust,
    /// Fails whenever charged, regardless of neighbors.
    RetentionWeak,
    /// Fails when the left physical neighbor alone is opposite.
    StrongLeft,
    /// Fails when the right physical neighbor alone is opposite.
    StrongRight,
    /// Fails when either neighbor alone is opposite.
    StrongBoth,
    /// Fails only when both immediate neighbors are opposite.
    WeaklyCoupled,
    /// Fails only when both neighbors *and* most of the surrounding window
    /// are opposite — reliably triggered only by worst-case patterns.
    DeepCoupled,
}

impl CellClass {
    /// Whether the class represents a data-dependent (coupling) failure.
    pub fn is_data_dependent(self) -> bool {
        matches!(
            self,
            CellClass::StrongLeft
                | CellClass::StrongRight
                | CellClass::StrongBoth
                | CellClass::WeaklyCoupled
                | CellClass::DeepCoupled
        )
    }
}

/// One faulty cell in a row's fault map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellFault {
    /// System column of the faulty cell.
    pub sys: u32,
    /// `true` if the cell is an anti-cell.
    pub anti: bool,
    /// The failure mechanism.
    pub kind: FaultKind,
}

/// Failure mechanisms attached to cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Data-dependent coupling (includes retention-weak as `θ ≤ 0`).
    Coupling(CellProfile),
    /// Intermittent failure with a fixed per-round probability.
    Marginal {
        /// Per-round failure probability when charged.
        fail_prob: f64,
    },
    /// Variable retention time: leaky during randomly drawn epochs.
    Vrt,
}

/// All faulty cells of one row, in ascending physical order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RowFaultMap {
    /// The faulty cells.
    pub entries: Vec<CellFault>,
}

impl RowFaultMap {
    /// Builds the fault map for one row by screening every physical position
    /// against the seeded Bernoulli streams.
    ///
    /// This is the sparse sampler: the three population screens (interesting,
    /// marginal, VRT) share one row-constant hash prefix and one per-column
    /// fold (`stream_prefix`/`prefix_col`), and each screen is a single
    /// integer compare against a precomputed `unit_threshold` — 4 `mix64`
    /// calls per position instead of the reference path's 15, with all float
    /// work deferred to the handful of positions that pass a screen. The
    /// drawn population is bit-identical to
    /// [`build_reference`](RowFaultMap::build_reference) (each stream is the
    /// same random-access hash, so cells stay independently addressable; a
    /// gap-skipping sampler would redefine the population and break every
    /// pinned figure).
    pub fn build(
        seed: u64,
        row: RowId,
        scrambler: &dyn Scrambler,
        rates: &FaultRates,
        retention: &RetentionModel,
    ) -> RowFaultMap {
        let n = scrambler.row_bits();
        let bank = u64::from(row.bank);
        let r = u64::from(row.row);
        let prefix = stream_prefix(seed, bank, r);
        let t_interesting = unit_threshold(rates.interesting);
        let t_marginal = unit_threshold(rates.marginal);
        let t_vrt = unit_threshold(rates.vrt);
        let mut entries = Vec::new();
        for phys in 0..n {
            let mid = prefix_col(prefix, phys as u64);
            let interesting = (finish_tag(mid, TAG_INTERESTING) >> 11) < t_interesting;
            let marginal = (finish_tag(mid, TAG_MARGINAL) >> 11) < t_marginal;
            let vrt = (finish_tag(mid, TAG_VRT) >> 11) < t_vrt;
            if !(interesting || marginal || vrt) {
                continue;
            }
            let sys = scrambler.physical_to_system(phys) as u32;
            let anti = is_anti(seed, row.bank, phys, rates.anti_block);
            if interesting {
                let w_left = 0.8 + hash01(finish_tag(mid, TAG_WL));
                let w_right = 0.8 + hash01(finish_tag(mid, TAG_WR));
                let (lo, hi) = scrambler.tile_bounds(phys);
                let cell_ref = |q: usize| CellRef {
                    sys: scrambler.physical_to_system(q) as u32,
                    anti: is_anti(seed, row.bank, q, rates.anti_block),
                };
                let left = (phys > lo).then(|| cell_ref(phys - 1));
                let right = (phys + 1 < hi).then(|| cell_ref(phys + 1));
                let mut window = Vec::new();
                for d in 2..=rates.window_radius {
                    if phys >= lo + d {
                        window.push(cell_ref(phys - d));
                    }
                    if phys + d < hi {
                        window.push(cell_ref(phys + d));
                    }
                }
                let mut profile = CellProfile {
                    theta_ref: 0.0,
                    w_left,
                    w_right,
                    left,
                    right,
                    window,
                    window_weight: rates.window_weight,
                    window_full: 2 * (rates.window_radius - 1),
                };
                // Margin draw: retention-weak cells fail unaided; the rest
                // sit between 0 and their worst-case interference maximum,
                // concentrated near the maximum (steep retention tail).
                profile.theta_ref = if hash01(finish_tag(mid, TAG_WEAK)) < rates.weak_share {
                    -0.1
                } else {
                    let wl = if profile.left.is_some() { w_left } else { 0.0 };
                    let wr = if profile.right.is_some() {
                        w_right
                    } else {
                        0.0
                    };
                    let i_max = wl + wr + profile.max_window_interference();
                    retention.theta_ref(hash01(finish_tag(mid, TAG_THETA)), i_max)
                };
                entries.push(CellFault {
                    sys,
                    anti,
                    kind: FaultKind::Coupling(profile),
                });
            }
            if marginal {
                entries.push(CellFault {
                    sys,
                    anti,
                    kind: FaultKind::Marginal {
                        fail_prob: rates.marginal_fail_prob,
                    },
                });
            }
            if vrt {
                entries.push(CellFault {
                    sys,
                    anti,
                    kind: FaultKind::Vrt,
                });
            }
        }
        RowFaultMap { entries }
    }

    /// The retained reference sampler: draws every stream with a full
    /// five-word `cell_hash01` and float compares, exactly as shipped
    /// before the sparse sampler existed.
    ///
    /// Kept as the correctness oracle for [`build`](RowFaultMap::build)
    /// (equivalence is pinned by unit tests and proptests) and as the
    /// baseline side of the fault-map benchmarks.
    pub fn build_reference(
        seed: u64,
        row: RowId,
        scrambler: &dyn Scrambler,
        rates: &FaultRates,
        retention: &RetentionModel,
    ) -> RowFaultMap {
        let n = scrambler.row_bits();
        let bank = u64::from(row.bank);
        let r = u64::from(row.row);
        let mut entries = Vec::new();
        for phys in 0..n {
            let p = phys as u64;
            let interesting = cell_hash01(seed, bank, r, p, TAG_INTERESTING) < rates.interesting;
            let marginal = cell_hash01(seed, bank, r, p, TAG_MARGINAL) < rates.marginal;
            let vrt = cell_hash01(seed, bank, r, p, TAG_VRT) < rates.vrt;
            if !(interesting || marginal || vrt) {
                continue;
            }
            let sys = scrambler.physical_to_system(phys) as u32;
            let anti = is_anti(seed, row.bank, phys, rates.anti_block);
            if interesting {
                let w_left = 0.8 + cell_hash01(seed, bank, r, p, TAG_WL);
                let w_right = 0.8 + cell_hash01(seed, bank, r, p, TAG_WR);
                let (lo, hi) = scrambler.tile_bounds(phys);
                let cell_ref = |q: usize| CellRef {
                    sys: scrambler.physical_to_system(q) as u32,
                    anti: is_anti(seed, row.bank, q, rates.anti_block),
                };
                let left = (phys > lo).then(|| cell_ref(phys - 1));
                let right = (phys + 1 < hi).then(|| cell_ref(phys + 1));
                let mut window = Vec::new();
                for d in 2..=rates.window_radius {
                    if phys >= lo + d {
                        window.push(cell_ref(phys - d));
                    }
                    if phys + d < hi {
                        window.push(cell_ref(phys + d));
                    }
                }
                let mut profile = CellProfile {
                    theta_ref: 0.0,
                    w_left,
                    w_right,
                    left,
                    right,
                    window,
                    window_weight: rates.window_weight,
                    window_full: 2 * (rates.window_radius - 1),
                };
                profile.theta_ref = if cell_hash01(seed, bank, r, p, TAG_WEAK) < rates.weak_share {
                    -0.1
                } else {
                    let wl = if profile.left.is_some() { w_left } else { 0.0 };
                    let wr = if profile.right.is_some() {
                        w_right
                    } else {
                        0.0
                    };
                    let i_max = wl + wr + profile.max_window_interference();
                    retention.theta_ref(cell_hash01(seed, bank, r, p, TAG_THETA), i_max)
                };
                entries.push(CellFault {
                    sys,
                    anti,
                    kind: FaultKind::Coupling(profile),
                });
            }
            if marginal {
                entries.push(CellFault {
                    sys,
                    anti,
                    kind: FaultKind::Marginal {
                        fail_prob: rates.marginal_fail_prob,
                    },
                });
            }
            if vrt {
                entries.push(CellFault {
                    sys,
                    anti,
                    kind: FaultKind::Vrt,
                });
            }
        }
        RowFaultMap { entries }
    }

    /// Scalar reference evaluation of the coupling model: indices (into
    /// `entries`) of the coupling entries that fail for this exact row
    /// content at this margin shift.
    ///
    /// Coupling outcomes are pure in `(row data, margin shift)` — unlike the
    /// marginal/VRT/soft kinds they do not depend on the round counter —
    /// which is what makes them memoizable across repeated writes of the
    /// same data. The shipped hot path is the compiled
    /// [`CouplingStencil`](crate::CouplingStencil); this per-entry loop is
    /// retained as its correctness oracle and benchmark baseline.
    pub fn coupling_fail_indices(&self, data: &RowBits, theta_shift: f64) -> Vec<u32> {
        let charged = |r: &CellRef| (data.get(r.sys as usize)) != r.anti;
        let mut out = Vec::new();
        for (idx, e) in self.entries.iter().enumerate() {
            let FaultKind::Coupling(p) = &e.kind else {
                continue;
            };
            let victim_charged = data.get(e.sys as usize) != e.anti;
            if !victim_charged {
                continue;
            }
            let theta = p.theta_ref - theta_shift;
            let mut interference = 0.0;
            if let Some(l) = &p.left {
                if !charged(l) {
                    interference += p.w_left;
                }
            }
            if let Some(rr) = &p.right {
                if !charged(rr) {
                    interference += p.w_right;
                }
            }
            if !p.window.is_empty() {
                // Second-order coupling only matters when the window is
                // substantially biased against the victim: below
                // half-opposite the contributions cancel. The denominator is
                // the *full* window size, so cells at tile edges (fewer
                // aggressors) feel less coupling.
                let frac =
                    p.window.iter().filter(|c| !charged(c)).count() as f64 / p.window_full as f64;
                interference += p.window_weight * ((frac - 0.5).max(0.0) * 2.0);
            }
            if interference >= theta {
                out.push(idx as u32);
            }
        }
        out
    }

    /// Number of faulty cells (entries) in the row.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the row has no faulty cells.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Histogram of cell classes at the given margin shift.
    pub fn class_counts(&self, theta_shift: f64) -> Vec<(CellClass, usize)> {
        use std::collections::BTreeMap;
        let mut counts: BTreeMap<&'static str, (CellClass, usize)> = BTreeMap::new();
        for e in &self.entries {
            if let FaultKind::Coupling(p) = &e.kind {
                let c = p.classify(theta_shift);
                let key = class_name(c);
                counts.entry(key).or_insert((c, 0)).1 += 1;
            }
        }
        counts.into_values().collect()
    }
}

fn class_name(c: CellClass) -> &'static str {
    match c {
        CellClass::Robust => "robust",
        CellClass::RetentionWeak => "retention-weak",
        CellClass::StrongLeft => "strong-left",
        CellClass::StrongRight => "strong-right",
        CellClass::StrongBoth => "strong-both",
        CellClass::WeaklyCoupled => "weakly-coupled",
        CellClass::DeepCoupled => "deep-coupled",
    }
}

/// Per-round VRT epoch state: `true` if the cell is in its leaky state.
pub(crate) fn vrt_leaky(seed: u64, row: RowId, sys: u32, round: u64, epoch_rounds: u64) -> bool {
    let epoch = round / epoch_rounds;
    cell_hash01(
        seed,
        u64::from(row.bank),
        u64::from(row.row),
        u64::from(sys),
        mix64(epoch ^ 0xE70C),
    ) < 0.5
}

/// Per-round marginal draw: `true` if a marginal cell fails this round.
pub(crate) fn marginal_fails(seed: u64, row: RowId, sys: u32, round: u64, fail_prob: f64) -> bool {
    cell_hash01(
        seed,
        u64::from(row.bank),
        u64::from(row.row),
        u64::from(sys),
        mix64(round ^ 0x3A26),
    ) < fail_prob
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrambler::IdentityScrambler;
    use crate::vendor::Vendor;

    fn build_map(rate: f64) -> RowFaultMap {
        let s = IdentityScrambler::new(4096);
        RowFaultMap::build(
            42,
            RowId::new(0, 0),
            &s,
            &FaultRates {
                interesting: rate,
                ..FaultRates::default()
            },
            &RetentionModel::default(),
        )
    }

    #[test]
    fn fault_map_is_deterministic() {
        assert_eq!(build_map(0.01).entries, build_map(0.01).entries);
    }

    #[test]
    fn sparse_build_matches_reference_build() {
        let retention = RetentionModel::default();
        for vendor in Vendor::ALL {
            let s = vendor.scrambler(8192);
            for seed in [0u64, 1, 42, u64::MAX] {
                for row in [RowId::new(0, 0), RowId::new(3, 17), RowId::new(1, 8191)] {
                    for rates in [
                        FaultRates::default(),
                        FaultRates {
                            interesting: 0.0,
                            marginal: 0.0,
                            vrt: 0.0,
                            ..FaultRates::default()
                        },
                        FaultRates {
                            interesting: 1.0,
                            weak_share: 0.5,
                            ..FaultRates::default()
                        },
                        FaultRates {
                            interesting: 0.05,
                            marginal: 0.5,
                            vrt: 0.5,
                            window_radius: 2,
                            ..FaultRates::default()
                        },
                    ] {
                        let fast = RowFaultMap::build(seed, row, &*s, &rates, &retention);
                        let reference =
                            RowFaultMap::build_reference(seed, row, &*s, &rates, &retention);
                        assert_eq!(fast, reference, "{vendor:?} seed {seed} row {row:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn fault_map_density_tracks_rate() {
        let map = build_map(0.05);
        let coupling = map
            .entries
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Coupling(_)))
            .count();
        // Expected 4096 × 0.05 ≈ 205; allow generous slack.
        assert!((100..350).contains(&coupling), "count = {coupling}");
    }

    #[test]
    fn classification_thresholds() {
        let wref = CellRef {
            sys: 9,
            anti: false,
        };
        let profile = CellProfile {
            theta_ref: 0.9,
            w_left: 1.0,
            w_right: 0.7,
            left: Some(CellRef {
                sys: 0,
                anti: false,
            }),
            right: Some(CellRef {
                sys: 2,
                anti: false,
            }),
            window: vec![wref; 10],
            window_weight: 0.6,
            window_full: 10,
        };
        assert_eq!(profile.classify(0.0), CellClass::StrongLeft);
        assert_eq!(profile.classify(-0.2), CellClass::WeaklyCoupled); // θ = 1.1
        assert_eq!(profile.classify(-1.0), CellClass::DeepCoupled); // θ = 1.9
        assert_eq!(profile.classify(-1.5), CellClass::Robust); // θ = 2.4
        assert_eq!(profile.classify(1.0), CellClass::RetentionWeak); // θ = -0.1
        assert_eq!(profile.classify(0.3), CellClass::StrongBoth); // θ = 0.6
    }

    #[test]
    fn classify_handles_missing_neighbors() {
        let profile = CellProfile {
            theta_ref: 0.9,
            w_left: 1.5,
            w_right: 1.5,
            left: None,
            right: None,
            window: vec![],
            window_weight: 0.6,
            window_full: 10,
        };
        // No neighbors exist, so no interference can reach θ = 0.9 > 0.6.
        assert_eq!(profile.classify(0.0), CellClass::Robust);
    }

    #[test]
    fn all_classes_appear_in_large_population() {
        use std::collections::HashSet;
        let s = Vendor::A.scrambler(8192);
        let mut seen = HashSet::new();
        for r in 0..64 {
            let map = RowFaultMap::build(
                7,
                RowId::new(0, r),
                &*s,
                &FaultRates {
                    interesting: 0.02,
                    ..FaultRates::default()
                },
                &RetentionModel::default(),
            );
            for (class, _) in map.class_counts(0.0) {
                seen.insert(class);
            }
        }
        for c in [
            CellClass::RetentionWeak,
            CellClass::StrongLeft,
            CellClass::StrongRight,
            CellClass::WeaklyCoupled,
            CellClass::DeepCoupled,
        ] {
            assert!(seen.contains(&c), "class {c:?} never drawn");
        }
        // Robust is unreachable at reference stress (every interesting cell
        // fails under its own full worst case by construction), but appears
        // once the stress drops (shorter interval / lower temperature).
        let map = RowFaultMap::build(
            7,
            RowId::new(0, 0),
            &*s,
            &FaultRates {
                interesting: 0.02,
                ..FaultRates::default()
            },
            &RetentionModel::default(),
        );
        let relaxed = map.class_counts(-0.5);
        assert!(
            relaxed
                .iter()
                .any(|&(c, n)| c == CellClass::Robust && n > 0),
            "no Robust cells even at relaxed stress"
        );
    }

    #[test]
    fn validate_rejects_bad_rates() {
        let bad = [
            FaultRates {
                interesting: 1.5,
                ..FaultRates::default()
            },
            FaultRates {
                anti_block: 0,
                ..FaultRates::default()
            },
            FaultRates {
                window_radius: 1,
                ..FaultRates::default()
            },
        ];
        for r in bad {
            assert!(r.validate().is_err(), "{r:?} should be invalid");
        }
        assert!(FaultRates::default().validate().is_ok());
    }

    #[test]
    fn vrt_state_changes_across_epochs() {
        let row = RowId::new(0, 0);
        let mut states = HashSetLike::default();
        for round in 0..100 {
            states.observe(vrt_leaky(1, row, 5, round, 5));
        }
        assert!(states.saw_true && states.saw_false, "VRT never toggled");
    }

    #[derive(Default)]
    struct HashSetLike {
        saw_true: bool,
        saw_false: bool,
    }
    impl HashSetLike {
        fn observe(&mut self, v: bool) {
            if v {
                self.saw_true = true;
            } else {
                self.saw_false = true;
            }
        }
    }

    #[test]
    fn is_data_dependent_matches_taxonomy() {
        assert!(CellClass::StrongLeft.is_data_dependent());
        assert!(CellClass::DeepCoupled.is_data_dependent());
        assert!(!CellClass::RetentionWeak.is_data_dependent());
        assert!(!CellClass::Robust.is_data_dependent());
    }
}
