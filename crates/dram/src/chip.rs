//! One simulated DRAM chip: persistent row contents plus fault evaluation.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use parbor_obs::metrics;
use parbor_obs::RecorderHandle;

use crate::cell::{marginal_fails, vrt_leaky, CellClass, FaultKind, FaultRates, RowFaultMap};
use crate::config::{Celsius, Seconds};
use crate::mechanism::CouplingMechanism;
use crate::noise::NoiseModel;
use crate::retention::RetentionModel;
use crate::scrambler::{Scrambler, ScramblerLut};
use parbor_hal::{unit_stack_flips, FailureMechanism};
use parbor_hal::{BitAddr, BitFlip, ChipGeometry, DramError, RowBits, RowId};
use parbor_hal::{KernelMode, RoundArena};

use crate::stencil::CouplingStencil;

/// Default bound on the per-chip fault-map cache (entries, i.e. rows).
///
/// A fault map costs one scrambler translation per column to build and is
/// fully deterministic, so eviction only trades CPU for memory; 8192 rows
/// covers an entire bank of the paper-scale geometry.
pub const DEFAULT_FAULT_MAP_CAPACITY: usize = 8192;

/// Default bound on the per-chip `(row, data)` evaluation cache (entries).
///
/// Test rounds re-write the same few patterns into the same rows over and
/// over (discovery runs each pattern twice, chip-wide rounds repeat
/// per-polarity), so a small cache captures nearly all repeats.
pub const DEFAULT_EVAL_CACHE_CAPACITY: usize = 512;

/// One simulated DRAM chip.
///
/// A chip owns its written row contents (system bit order) and evaluates the
/// fault model on read-after-wait. The canonical test primitive is
/// [`run_round`](DramChip::run_round): write a set of rows, wait one refresh
/// interval, read them back, and report every flipped bit — exactly what a
/// system-level tester can do through the memory controller.
///
/// Both internal caches are bounded: fault maps (deterministic, rebuildable)
/// are evicted FIFO past [`DEFAULT_FAULT_MAP_CAPACITY`], and memoized
/// coupling evaluations past [`DEFAULT_EVAL_CACHE_CAPACITY`]. Cache sizes are
/// published as the `dram.fault_map_cache` / `dram.eval_cache` gauges.
///
/// # Examples
///
/// ```
/// use parbor_dram::{DramChip, ChipGeometry, Vendor, RowId, PatternKind};
///
/// # fn main() -> Result<(), parbor_dram::DramError> {
/// let mut chip = DramChip::new(ChipGeometry::tiny(), Vendor::B, 42)?;
/// let pattern = PatternKind::Checkerboard;
/// let writes: Vec<_> = (0..8)
///     .map(|r| (RowId::new(0, r), pattern.row_bits(r, 1024)))
///     .collect();
/// let flips = chip.run_round(writes)?;
/// // Flips (if any) are inside the written region.
/// for f in &flips {
///     assert!(f.addr.col < 1024);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DramChip {
    geometry: ChipGeometry,
    // The paper's data-dependent failure model (seed, scrambler + LUT,
    // fault rates, retention physics) as one composable mechanism. The
    // chip's cached fast path (fault maps, stencils, eval memoization)
    // evaluates through it.
    coupling: CouplingMechanism,
    // Additional mechanisms (RowHammer, RowPress, retention drift, …)
    // composed on top of the coupling model; evaluated once per round over
    // the round's write set, after the base model.
    extras: Vec<Arc<dyn FailureMechanism>>,
    temperature: Celsius,
    refresh_interval: Seconds,
    noise: NoiseModel,
    rows: HashMap<RowId, RowBits>,
    fault_maps: HashMap<RowId, RowFaultMap>,
    fault_map_order: VecDeque<RowId>,
    fault_map_cap: usize,
    // Compiled per-row coupling stencils; populated lazily in Stencil mode,
    // invalidated with their fault maps and on margin-shift changes.
    stencils: HashMap<RowId, CouplingStencil>,
    eval_cache: HashMap<(RowId, u64), (RowBits, Vec<u32>)>,
    eval_order: VecDeque<(RowId, u64)>,
    eval_cap: usize,
    kernel: KernelMode,
    round: u64,
    rec: RecorderHandle,
    // Buffer pool closing the round cycle: replaced row images and evicted
    // eval-cache entries go back in, pooled clones come out. Swapped for a
    // shared handle by `set_arena`.
    arena: RoundArena,
}

impl DramChip {
    /// Creates a chip with the vendor's default scrambler and fault rates at
    /// the paper's reference conditions (45 °C, 4 s refresh interval).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] if the vendor scrambler cannot be
    /// built for the geometry's row width.
    pub fn new(
        geometry: ChipGeometry,
        vendor: crate::Vendor,
        seed: u64,
    ) -> Result<Self, DramError> {
        let scrambler = vendor.scrambler(geometry.cols_per_row as usize);
        Self::with_parts(
            geometry,
            scrambler,
            seed,
            vendor.default_rates(),
            RetentionModel::default(),
            Celsius(45.0),
            Seconds(4.0),
        )
    }

    /// Creates a chip from explicit parts. Used by
    /// [`ModuleConfig`](crate::ModuleConfig); exposed for custom setups.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] when the scrambler width does not
    /// match the geometry or the rates are invalid.
    pub fn with_parts(
        geometry: ChipGeometry,
        scrambler: Arc<dyn Scrambler>,
        seed: u64,
        rates: FaultRates,
        retention: RetentionModel,
        temperature: Celsius,
        refresh_interval: Seconds,
    ) -> Result<Self, DramError> {
        if scrambler.row_bits() != geometry.cols_per_row as usize {
            return Err(DramError::InvalidConfig(format!(
                "scrambler width {} != geometry cols {}",
                scrambler.row_bits(),
                geometry.cols_per_row
            )));
        }
        let coupling = CouplingMechanism::new(
            seed,
            scrambler,
            rates,
            retention,
            temperature,
            refresh_interval,
        )?;
        let noise = NoiseModel::new(rates.soft_per_bit_per_round);
        Ok(DramChip {
            geometry,
            coupling,
            extras: Vec::new(),
            temperature,
            refresh_interval,
            noise,
            rows: HashMap::new(),
            fault_maps: HashMap::new(),
            fault_map_order: VecDeque::new(),
            fault_map_cap: DEFAULT_FAULT_MAP_CAPACITY,
            stencils: HashMap::new(),
            eval_cache: HashMap::new(),
            eval_order: VecDeque::new(),
            eval_cap: DEFAULT_EVAL_CACHE_CAPACITY,
            kernel: KernelMode::default(),
            round: 0,
            rec: RecorderHandle::null(),
            arena: RoundArena::new(),
        })
    }

    /// Attaches a metrics recorder (`dram.*` counters). The default is the
    /// null recorder, which observes nothing.
    pub fn with_recorder(mut self, rec: RecorderHandle) -> Self {
        self.rec = rec;
        self
    }

    /// Replaces the metrics recorder in place.
    pub fn set_recorder(&mut self, rec: RecorderHandle) {
        self.rec = rec;
    }

    /// The attached metrics recorder.
    pub fn recorder(&self) -> &RecorderHandle {
        &self.rec
    }

    /// The chip geometry.
    pub fn geometry(&self) -> ChipGeometry {
        self.geometry
    }

    /// The chip's scrambler (shared, read-only).
    pub fn scrambler(&self) -> &Arc<dyn Scrambler> {
        self.coupling.scrambler()
    }

    /// The scrambler compiled into dense lookup tables at construction.
    pub fn scrambler_lut(&self) -> &Arc<ScramblerLut> {
        self.coupling.lut()
    }

    /// The chip's base failure model as a mechanism.
    pub fn coupling(&self) -> &CouplingMechanism {
        &self.coupling
    }

    /// The extra mechanisms composed on top of the coupling model.
    pub fn mechanisms(&self) -> &[Arc<dyn FailureMechanism>] {
        &self.extras
    }

    /// Replaces the extra-mechanism stack. Mechanisms observe each round's
    /// write set (activations, open time, neighbor content) and add their
    /// flips after the base model; inert mechanisms are kept but never
    /// consulted on the hot path.
    pub fn set_mechanisms(&mut self, mechanisms: Vec<Arc<dyn FailureMechanism>>) {
        self.extras = mechanisms;
    }

    /// Replaces the chip's buffer pool with a shared handle, so row images
    /// recycled here serve the stage that builds the next round's plan.
    /// Purely a performance hook: results are identical with any arena.
    pub fn set_arena(&mut self, arena: RoundArena) {
        self.arena = arena;
    }

    /// The chip's buffer pool.
    pub fn arena(&self) -> &RoundArena {
        &self.arena
    }

    /// The fault seed.
    pub fn seed(&self) -> u64 {
        self.coupling.seed()
    }

    /// Number of refresh-interval waits executed so far.
    pub fn rounds_run(&self) -> u64 {
        self.round
    }

    /// Current effective margin shift (`κ · log2(stress factor)`).
    pub fn theta_shift(&self) -> f64 {
        self.coupling.theta_shift()
    }

    /// The coupling kernel the chip evaluates reads with.
    pub fn kernel_mode(&self) -> KernelMode {
        self.kernel
    }

    /// Switches between the compiled stencil kernel (default) and the
    /// retained scalar reference kernel. Results are bit-identical in both
    /// modes — this is a measurement/verification switch, not a behavior
    /// switch — so caches survive the change; only compiled stencils are
    /// dropped.
    pub fn set_kernel_mode(&mut self, mode: KernelMode) {
        if self.kernel != mode {
            self.kernel = mode;
            self.stencils.clear();
        }
    }

    /// Current number of cached fault maps (also the `dram.fault_map_cache`
    /// gauge).
    pub fn fault_map_cache_len(&self) -> usize {
        self.fault_maps.len()
    }

    /// Bounds the fault-map cache to `cap` rows (clamped to ≥ 1), evicting
    /// oldest-built maps immediately if over. Fault maps are deterministic,
    /// so eviction never changes results — only rebuild cost.
    pub fn set_fault_map_capacity(&mut self, cap: usize) {
        self.fault_map_cap = cap.max(1);
        self.evict_fault_maps();
    }

    /// Current number of memoized `(row, data)` coupling evaluations (also
    /// the `dram.eval_cache` gauge).
    pub fn eval_cache_len(&self) -> usize {
        self.eval_cache.len()
    }

    /// Bounds the coupling-evaluation cache to `cap` entries; `0` disables
    /// memoization entirely. Entries are verified against the full row
    /// content on every hit, so results never depend on the cache.
    pub fn set_eval_cache_capacity(&mut self, cap: usize) {
        self.eval_cap = cap;
        if cap == 0 {
            self.eval_cache.clear();
            self.eval_order.clear();
        } else {
            while self.eval_cache.len() > cap {
                if let Some(old) = self.eval_order.pop_front() {
                    self.eval_cache.remove(&old);
                } else {
                    break;
                }
            }
        }
        self.rec
            .gauge(metrics::dram::EVAL_CACHE, self.eval_cache.len() as i64);
    }

    /// Changes operating temperature and refresh interval. Fault maps are
    /// seeded, not stateful, so only the margin shift changes — which
    /// invalidates the memoized coupling evaluations.
    pub fn set_conditions(&mut self, temperature: Celsius, refresh_interval: Seconds) {
        self.temperature = temperature;
        self.refresh_interval = refresh_interval;
        self.coupling.set_conditions(temperature, refresh_interval);
        self.eval_cache.clear();
        self.eval_order.clear();
        // Stencils are compiled against the margin shift, so they are stale
        // now; fault maps are shift-independent and survive.
        self.stencils.clear();
        self.rec.gauge(metrics::dram::EVAL_CACHE, 0);
    }

    /// Writes a full row (system bit order).
    ///
    /// # Errors
    ///
    /// Returns an error if the row is out of range or the data width does not
    /// match the geometry.
    pub fn write_row(&mut self, row: RowId, data: RowBits) -> Result<(), DramError> {
        self.geometry.check_row(row)?;
        if data.len() != self.geometry.cols_per_row as usize {
            return Err(DramError::WidthMismatch {
                got: data.len(),
                expected: self.geometry.cols_per_row as usize,
            });
        }
        if let Some(old) = self.rows.insert(row, data) {
            // The replaced image is the pool's main feed: every steady-state
            // round returns one buffer per rewritten row.
            self.arena.recycle_row(old);
        }
        self.rec.incr(metrics::dram::ROW_WRITES, 1);
        Ok(())
    }

    /// Advances time by one refresh interval (the "wait" between write and
    /// read of a test round).
    pub fn advance_round(&mut self) {
        self.round += 1;
        self.rec.incr(metrics::dram::ROUNDS, 1);
    }

    /// Advances the round clock by `rounds` refresh intervals without
    /// writing or reading anything — the resume hook for checkpointed scans.
    ///
    /// Every round-dependent fault population (marginal windows, VRT
    /// epochs, soft-error draws) keys on the chip seed and the round
    /// counter alone, so a chip rebuilt from its seed and fast-forwarded by
    /// the number of rounds a previous process ran is bit-identical, for
    /// all future rounds, to the chip that process held in memory.
    pub fn fast_forward(&mut self, rounds: u64) {
        self.round += rounds;
        self.rec.incr(metrics::dram::ROUNDS, rounds);
    }

    /// The last data written to a row, without fault effects.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowNeverWritten`] if the row has no content.
    pub fn written_row(&self, row: RowId) -> Result<&RowBits, DramError> {
        self.rows
            .get(&row)
            .ok_or_else(|| DramError::RowNeverWritten {
                row: row.to_string(),
            })
    }

    /// Reads a row after the waits executed so far, applying the fault model
    /// at the current round.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowNeverWritten`] if the row has no content, or
    /// an address error if the row is out of range.
    pub fn read_row(&mut self, row: RowId) -> Result<RowBits, DramError> {
        let flips = self.row_flips(row)?;
        let data = self.rows.get(&row).expect("checked by row_flips");
        let mut out = data.clone();
        for f in flips {
            out.flip(f.addr.col as usize);
        }
        Ok(out)
    }

    /// The canonical test primitive: write all `writes`, wait one refresh
    /// interval, read each written row back, and return every flipped bit.
    ///
    /// Writes are taken by value and moved straight into row storage — no
    /// per-row clone on the hot path.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range rows or width mismatches; no writes are rolled
    /// back on error.
    pub fn run_round(&mut self, writes: Vec<(RowId, RowBits)>) -> Result<Vec<BitFlip>, DramError> {
        self.run_round_split(writes, 1)
    }

    /// [`run_round`](DramChip::run_round) with the read-back evaluation split
    /// across `row_threads` scoped threads.
    ///
    /// Per-row evaluation is pure in the chip's immutable state (row
    /// contents, fault maps, stencils, round counter), so rows evaluate
    /// concurrently and only the cache insertions and counters are merged
    /// serially afterwards — in first-occurrence row order, exactly as the
    /// serial loop would produce them. Flips come back in write order, bit-
    /// identical to `row_threads == 1`.
    pub(crate) fn run_round_split(
        &mut self,
        writes: Vec<(RowId, RowBits)>,
        row_threads: usize,
    ) -> Result<Vec<BitFlip>, DramError> {
        let rows: Vec<RowId> = writes.iter().map(|(row, _)| *row).collect();
        for (row, data) in writes {
            self.write_row(row, data)?;
        }
        self.advance_round();
        let mut flips = if row_threads <= 1 || rows.len() <= 1 {
            let mut flips = Vec::new();
            for &row in &rows {
                flips.extend(self.row_flips(row)?);
            }
            flips
        } else {
            self.row_flips_batch(&rows, row_threads)?
        };
        // Extra mechanisms observe the round's write set as a whole (they
        // need neighbor activations, not just this row), so they evaluate
        // once per round after the base model — serially, in stack order,
        // identically under any `row_threads`.
        if !self.extras.is_empty() {
            self.merge_extra_flips(&mut flips, &rows);
        }
        Ok(flips)
    }

    /// Evaluates the extra-mechanism stack over the round's write set and
    /// merges its flips into the base model's, deduplicating by address
    /// (the base model wins; a mechanism re-flipping the same bit would
    /// cancel the observation, which no physical mechanism does).
    fn merge_extra_flips(&mut self, flips: &mut Vec<BitFlip>, rows: &[RowId]) {
        let extra = {
            let writes: Vec<(RowId, &RowBits)> =
                rows.iter().map(|&row| (row, &self.rows[&row])).collect();
            // `advance_round` already ran: `round - 1` is this round's
            // 0-based index, matching `MechanismInjectingPort`'s keying, and
            // the elapsed clock lands at the round's end.
            unit_stack_flips(
                &self.extras,
                &writes,
                0,
                self.round - 1,
                self.round as f64 * self.refresh_interval.0,
            )
        };
        self.rec.incr(metrics::mech::ROUNDS, 1);
        let mut added = 0u64;
        let mut suppressed = 0u64;
        for flip in extra {
            if flips.iter().any(|f| f.addr == flip.addr) {
                suppressed += 1;
            } else {
                flips.push(flip);
                added += 1;
            }
        }
        if added > 0 {
            self.rec.incr(metrics::mech::FLIPS, added);
        }
        if suppressed > 0 {
            self.rec.incr(metrics::mech::SUPPRESSED, suppressed);
        }
    }

    /// Evaluates a round's read set across scoped threads; see
    /// [`run_round_split`](DramChip::run_round_split) for the equivalence
    /// argument.
    fn row_flips_batch(
        &mut self,
        rows: &[RowId],
        row_threads: usize,
    ) -> Result<Vec<BitFlip>, DramError> {
        // Unique rows in first-occurrence order; duplicates re-read the same
        // final content and reuse the first occurrence's result.
        let mut unique: Vec<RowId> = Vec::with_capacity(rows.len());
        let mut seen: HashSet<RowId> = HashSet::with_capacity(rows.len());
        for &row in rows {
            if seen.insert(row) {
                unique.push(row);
            }
        }
        for &row in &unique {
            self.geometry.check_row(row)?;
            if !self.rows.contains_key(&row) {
                return Err(DramError::RowNeverWritten {
                    row: row.to_string(),
                });
            }
        }

        // Fault-map builds are pure too: build missing maps (and their
        // stencils) concurrently, then install serially in first-occurrence
        // order so FIFO eviction and counters match the serial path.
        let missing: Vec<RowId> = unique
            .iter()
            .copied()
            .filter(|r| !self.fault_maps.contains_key(r))
            .collect();
        if missing.len() > 1 {
            let this: &DramChip = self;
            let chunk = missing.len().div_ceil(row_threads);
            let built: Vec<(RowId, RowFaultMap, Option<CouplingStencil>)> =
                crossbeam::thread::scope(|scope| {
                    let handles: Vec<_> = missing
                        .chunks(chunk)
                        .map(|rows| {
                            scope.spawn(move |_| {
                                rows.iter()
                                    .map(|&row| {
                                        let map = this.build_fault_map(row);
                                        let st = (this.kernel == KernelMode::Stencil).then(|| {
                                            CouplingStencil::compile(
                                                &map,
                                                this.coupling.theta_shift(),
                                            )
                                        });
                                        (row, map, st)
                                    })
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("fault-map build thread panicked"))
                        .collect()
                })
                .expect("scoped execution cannot fail to join");
            for (row, map, st) in built {
                self.install_fault_map(row, map);
                if let Some(st) = st {
                    self.stencils.insert(row, st);
                }
            }
        }
        for &row in &unique {
            self.ensure_fault_map(row);
            self.ensure_stencil(row);
        }

        // Hit/miss is decided against the cache as of the round start (the
        // serial loop would decide identically for distinct rows).
        let jobs: Vec<((RowId, u64), bool)> = unique
            .iter()
            .map(|&row| {
                let data = &self.rows[&row];
                let key = (row, data.content_hash());
                let hit = self.eval_cap > 0
                    && self
                        .eval_cache
                        .get(&key)
                        .is_some_and(|(stored, _)| stored == data);
                (key, hit)
            })
            .collect();

        // Parallel pure phase: evaluate every unique row's flips.
        let results: Vec<(Vec<BitFlip>, Option<Vec<u32>>)> = {
            let this: &DramChip = self;
            let chunk = jobs.len().div_ceil(row_threads);
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = jobs
                    .chunks(chunk)
                    .map(|jobs| {
                        scope.spawn(move |_| {
                            jobs.iter()
                                .map(|&(key, hit)| this.eval_row_pure(key, hit))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("row eval thread panicked"))
                    .collect()
            })
            .expect("scoped execution cannot fail to join")
        };

        // Serial merge: counters and cache insertions in first-occurrence
        // order, flips in write order.
        self.rec.incr(metrics::dram::ROW_READS, rows.len() as u64);
        let mut per_row: HashMap<RowId, Vec<BitFlip>> = HashMap::with_capacity(unique.len());
        for (&(key, hit), (flips, computed)) in jobs.iter().zip(results) {
            if self.eval_cap > 0 {
                if hit {
                    self.rec.incr(metrics::dram::EVAL_CACHE_HITS, 1);
                } else {
                    self.rec.incr(metrics::dram::EVAL_CACHE_MISSES, 1);
                    let data = self.rows[&key.0].clone_into_words(self.arena.take_words());
                    self.insert_eval(key, data, computed.expect("miss was evaluated"));
                }
            } else if let Some(coupled) = computed {
                self.arena.recycle_indices(coupled);
            }
            per_row.insert(key.0, flips);
        }
        // Serially, every duplicate occurrence would hit the entry its first
        // occurrence just inserted.
        if self.eval_cap > 0 {
            let dup = (rows.len() - unique.len()) as u64;
            if dup > 0 {
                self.rec.incr(metrics::dram::EVAL_CACHE_HITS, dup);
            }
        }
        let mut out = Vec::new();
        for row in rows {
            out.extend(per_row[row].iter().copied());
        }
        Ok(out)
    }

    /// Pure per-row evaluation: flips plus (on a cache miss) the computed
    /// coupling indices for the serial merge to insert. Takes `&self` so a
    /// round's rows can evaluate on concurrent threads.
    fn eval_row_pure(&self, key: (RowId, u64), hit: bool) -> (Vec<BitFlip>, Option<Vec<u32>>) {
        let row = key.0;
        let data = &self.rows[&row];
        let map = &self.fault_maps[&row];
        if hit {
            let (_, indices) = &self.eval_cache[&key];
            (self.assemble_flips(map, data, indices, row), None)
        } else {
            let coupled = match self.kernel {
                KernelMode::Stencil => {
                    let mut out = self.arena.indices();
                    self.stencils[&row].eval_into(data, &mut out);
                    out
                }
                KernelMode::Reference => {
                    map.coupling_fail_indices(data, self.coupling.theta_shift())
                }
            };
            let flips = self.assemble_flips(map, data, &coupled, row);
            (flips, Some(coupled))
        }
    }

    /// Computes the flips a read of `row` would observe at the current round.
    fn row_flips(&mut self, row: RowId) -> Result<Vec<BitFlip>, DramError> {
        self.geometry.check_row(row)?;
        self.ensure_fault_map(row);
        self.ensure_stencil(row);
        self.rec.incr(metrics::dram::ROW_READS, 1);
        let data = self
            .rows
            .get(&row)
            .ok_or_else(|| DramError::RowNeverWritten {
                row: row.to_string(),
            })?;
        let map = self.fault_maps.get(&row).expect("just built");

        // Coupling outcomes are pure in (data, theta_shift); look them up by
        // content hash, verifying the stored row on a hit so hash collisions
        // can never change results. Round-dependent kinds (marginal, VRT,
        // soft noise) are re-evaluated every call below. The hit path
        // borrows the cached indices in place — no per-read allocation.
        let key = (row, data.content_hash());
        let cached: Option<&Vec<u32>> = if self.eval_cap > 0 {
            self.eval_cache
                .get(&key)
                .and_then(|(stored, indices)| (stored == data).then_some(indices))
        } else {
            None
        };
        let (flips, computed) = match cached {
            Some(indices) => {
                self.rec.incr(metrics::dram::EVAL_CACHE_HITS, 1);
                (self.assemble_flips(map, data, indices, row), None)
            }
            None => {
                let coupled = match self.kernel {
                    KernelMode::Stencil => {
                        let mut out = self.arena.indices();
                        self.stencils[&row].eval_into(data, &mut out);
                        out
                    }
                    KernelMode::Reference => {
                        map.coupling_fail_indices(data, self.coupling.theta_shift())
                    }
                };
                let flips = self.assemble_flips(map, data, &coupled, row);
                let copy = data.clone_into_words(self.arena.take_words());
                (flips, Some((coupled, copy)))
            }
        };
        if let Some((coupled, data)) = computed {
            if self.eval_cap > 0 {
                self.rec.incr(metrics::dram::EVAL_CACHE_MISSES, 1);
                self.insert_eval(key, data, coupled);
            } else {
                self.arena.recycle_row(data);
                self.arena.recycle_indices(coupled);
            }
        }
        Ok(flips)
    }

    /// Inserts a memoized coupling evaluation with FIFO eviction. Evicted
    /// entries feed their buffers back to the arena, so a churning cache
    /// stops allocating once warm.
    fn insert_eval(&mut self, key: (RowId, u64), data: RowBits, indices: Vec<u32>) {
        if !self.eval_cache.contains_key(&key) {
            self.eval_order.push_back(key);
        }
        if let Some((data, indices)) = self.eval_cache.insert(key, (data, indices)) {
            self.arena.recycle_row(data);
            self.arena.recycle_indices(indices);
        }
        while self.eval_cache.len() > self.eval_cap {
            if let Some(old) = self.eval_order.pop_front() {
                if let Some((data, indices)) = self.eval_cache.remove(&old) {
                    self.arena.recycle_row(data);
                    self.arena.recycle_indices(indices);
                }
            } else {
                break;
            }
        }
        self.rec
            .gauge(metrics::dram::EVAL_CACHE, self.eval_cache.len() as i64);
    }

    /// Expands failing coupling indices plus the round-dependent populations
    /// (marginal, VRT, soft noise) into the row's flip list.
    ///
    /// Single pass over the entries, walking the sorted failing-index list
    /// in lockstep, so flip order is identical to direct evaluation.
    fn assemble_flips(
        &self,
        map: &RowFaultMap,
        data: &RowBits,
        coupled: &[u32],
        row: RowId,
    ) -> Vec<BitFlip> {
        let mut flips = Vec::new();
        let mut ci = 0usize;
        for (idx, e) in map.entries.iter().enumerate() {
            let fails = match &e.kind {
                FaultKind::Coupling(_) => {
                    if coupled.get(ci) == Some(&(idx as u32)) {
                        ci += 1;
                        true
                    } else {
                        false
                    }
                }
                FaultKind::Marginal { fail_prob } => {
                    data.get(e.sys as usize) != e.anti
                        && marginal_fails(self.coupling.seed(), row, e.sys, self.round, *fail_prob)
                }
                FaultKind::Vrt => {
                    data.get(e.sys as usize) != e.anti
                        && vrt_leaky(
                            self.coupling.seed(),
                            row,
                            e.sys,
                            self.round,
                            self.coupling.rates().vrt_epoch_rounds,
                        )
                }
            };
            if fails {
                flips.push(BitFlip {
                    addr: BitAddr::new(row.bank, row.row, e.sys),
                    expected: data.get(e.sys as usize),
                });
            }
        }
        if let Some(col) = self.noise.soft_flip(
            self.coupling.seed(),
            row,
            self.round,
            self.geometry.cols_per_row as usize,
        ) {
            let addr = BitAddr::new(row.bank, row.row, col as u32);
            if !flips.iter().any(|f| f.addr == addr) {
                flips.push(BitFlip {
                    addr,
                    expected: data.get(col),
                });
            }
        }
        flips
    }

    /// The fault map of a row (built lazily, cached with FIFO eviction).
    pub fn fault_map(&mut self, row: RowId) -> &RowFaultMap {
        self.ensure_fault_map(row);
        self.fault_maps.get(&row).expect("just built")
    }

    /// Compiles a fresh [`CouplingStencil`] for a row, bypassing the chip's
    /// caches. Pure in `(seed, row, scrambler, rates, retention,
    /// theta_shift)` and `&self`, so snapshot builders (`parbor-serve`) can
    /// compile stencils for many rows without mutating the chip — and the
    /// result is bit-identical to the stencil the chip itself would serve
    /// from its cache for the same row at current conditions.
    pub fn compile_stencil(&self, row: RowId) -> CouplingStencil {
        self.coupling.compile_stencil(row)
    }

    /// Ground-truth oracle: every data-dependent cell of a row with its
    /// class at current conditions. For validation and coverage accounting
    /// only — PARBOR itself never calls this.
    pub fn oracle_data_dependent(&mut self, row: RowId) -> Vec<(u32, CellClass)> {
        let shift = self.coupling.theta_shift();
        crate::mechanism::oracle_cells(self.fault_map(row), shift)
    }

    fn ensure_fault_map(&mut self, row: RowId) {
        if self.fault_maps.contains_key(&row) {
            return;
        }
        let map = self.build_fault_map(row);
        self.install_fault_map(row, map);
    }

    /// Builds a row's fault map with the sampler matching the kernel mode.
    /// Pure (`&self`): safe to run for many rows on concurrent threads.
    ///
    /// The stencil (shipped) path translates through the compiled LUT —
    /// indexed loads instead of the div/mod chains — while the reference
    /// path keeps the arithmetic scrambler as the measurement baseline.
    /// Both produce identical maps: the LUT's tables are filled from the
    /// same scrambler.
    fn build_fault_map(&self, row: RowId) -> RowFaultMap {
        self.coupling.build_fault_map(row, self.kernel)
    }

    /// Caches a built fault map with FIFO eviction and build accounting.
    fn install_fault_map(&mut self, row: RowId, map: RowFaultMap) {
        // Building a fault map translates every system column once — through
        // the LUT on the stencil path, through the arithmetic scrambler on
        // the reference path. The split counters are what lets bench_report
        // show the per-call translations collapsing into table lookups.
        let translations = match self.kernel {
            KernelMode::Stencil => metrics::dram::SCRAMBLER_LUT_LOOKUPS,
            KernelMode::Reference => metrics::dram::SCRAMBLER_TRANSLATIONS,
        };
        self.rec
            .incr(translations, u64::from(self.geometry.cols_per_row));
        self.rec.incr(metrics::dram::FAULT_MAPS_BUILT, 1);
        self.fault_maps.insert(row, map);
        self.fault_map_order.push_back(row);
        self.evict_fault_maps();
        self.rec
            .gauge(metrics::dram::FAULT_MAP_CACHE, self.fault_maps.len() as i64);
    }

    /// Compiles the row's coupling stencil if the stencil kernel is active
    /// and none is cached. Requires the fault map to be present.
    fn ensure_stencil(&mut self, row: RowId) {
        if self.kernel != KernelMode::Stencil || self.stencils.contains_key(&row) {
            return;
        }
        let map = self.fault_maps.get(&row).expect("fault map built first");
        let st = CouplingStencil::compile(map, self.coupling.theta_shift());
        self.stencils.insert(row, st);
    }

    fn evict_fault_maps(&mut self) {
        while self.fault_maps.len() > self.fault_map_cap {
            if let Some(old) = self.fault_map_order.pop_front() {
                self.fault_maps.remove(&old);
                // A stencil is only valid alongside its fault map.
                self.stencils.remove(&old);
                self.rec.incr(metrics::dram::FAULT_MAPS_EVICTED, 1);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternKind;
    use crate::vendor::Vendor;
    use parbor_obs::InMemoryRecorder;

    fn test_chip(seed: u64) -> DramChip {
        DramChip::new(ChipGeometry::new(1, 16, 8192).unwrap(), Vendor::A, seed).unwrap()
    }

    fn stripe_writes(rows: u32) -> Vec<(RowId, RowBits)> {
        (0..rows)
            .map(|r| {
                (
                    RowId::new(0, r),
                    PatternKind::ColStripe { period: 1 }.row_bits(r, 8192),
                )
            })
            .collect()
    }

    #[test]
    fn read_before_write_errors() {
        let mut chip = test_chip(1);
        assert!(matches!(
            chip.read_row(RowId::new(0, 0)),
            Err(DramError::RowNeverWritten { .. })
        ));
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut chip = test_chip(1);
        let err = chip
            .write_row(RowId::new(0, 0), RowBits::zeros(100))
            .unwrap_err();
        assert!(matches!(err, DramError::WidthMismatch { .. }));
    }

    #[test]
    fn out_of_range_row_rejected() {
        let mut chip = test_chip(1);
        let err = chip
            .write_row(RowId::new(0, 99), RowBits::zeros(8192))
            .unwrap_err();
        assert!(matches!(err, DramError::AddressOutOfRange { .. }));
    }

    #[test]
    fn coupling_failures_are_data_dependent() {
        // With a high interesting rate, a striped pattern must produce some
        // coupling flips, and flips must change when the data changes.
        let mut chip = DramChip::with_parts(
            ChipGeometry::new(1, 32, 8192).unwrap(),
            Vendor::A.scrambler(8192),
            11,
            FaultRates {
                interesting: 0.02,
                marginal: 0.0,
                vrt: 0.0,
                soft_per_bit_per_round: 0.0,
                ..FaultRates::default()
            },
            RetentionModel::default(),
            Celsius(45.0),
            Seconds(4.0),
        )
        .unwrap();
        let rows: Vec<RowId> = (0..32).map(|r| RowId::new(0, r)).collect();
        let stripe: Vec<_> = rows
            .iter()
            .map(|&r| {
                (
                    r,
                    PatternKind::ColStripe { period: 1 }.row_bits(r.row, 8192),
                )
            })
            .collect();
        let solid: Vec<_> = rows
            .iter()
            .map(|&r| (r, PatternKind::Solid(true).row_bits(r.row, 8192)))
            .collect();
        let f_stripe = chip.run_round(stripe).unwrap();
        let f_solid = chip.run_round(solid).unwrap();
        assert!(!f_stripe.is_empty(), "stripe pattern found no failures");
        // Same cells should not all fail under both patterns: data dependence.
        let set_a: std::collections::HashSet<_> = f_stripe.iter().map(|f| f.addr).collect();
        let set_b: std::collections::HashSet<_> = f_solid.iter().map(|f| f.addr).collect();
        assert_ne!(set_a, set_b, "failure sets identical across patterns");
    }

    #[test]
    fn deterministic_across_identical_chips() {
        let mut a = test_chip(77);
        let mut b = test_chip(77);
        let writes: Vec<_> = (0..16)
            .map(|r| {
                (
                    RowId::new(0, r),
                    PatternKind::Random { seed: 3 }.row_bits(r, 8192),
                )
            })
            .collect();
        assert_eq!(
            a.run_round(writes.clone()).unwrap(),
            b.run_round(writes).unwrap()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = test_chip(1);
        let mut b = test_chip(2);
        assert_ne!(
            a.run_round(stripe_writes(16)).unwrap(),
            b.run_round(stripe_writes(16)).unwrap()
        );
    }

    #[test]
    fn read_row_reflects_flips() {
        let mut chip = test_chip(5);
        let row = RowId::new(0, 3);
        let data = PatternKind::ColStripe { period: 1 }.row_bits(3, 8192);
        chip.write_row(row, data.clone()).unwrap();
        chip.advance_round();
        let read = chip.read_row(row).unwrap();
        let diffs = data.diff_indices(&read);
        // Flips may be zero for this seed/row, but reading twice at the same
        // round must be stable.
        let read2 = chip.read_row(row).unwrap();
        assert_eq!(read, read2);
        for d in diffs {
            assert!(d < 8192);
        }
    }

    #[test]
    fn conditions_affect_failure_population() {
        let mut cold = test_chip(9);
        let mut hot = test_chip(9);
        hot.set_conditions(Celsius(75.0), Seconds(4.0));
        let f_cold = cold.run_round(stripe_writes(16)).unwrap().len();
        let f_hot = hot.run_round(stripe_writes(16)).unwrap().len();
        assert!(f_hot > f_cold, "hot {f_hot} should exceed cold {f_cold}");
    }

    #[test]
    fn oracle_reports_data_dependent_cells() {
        let mut chip = test_chip(123);
        let mut total = 0;
        for r in 0..16 {
            total += chip.oracle_data_dependent(RowId::new(0, r)).len();
        }
        assert!(total > 0, "no data-dependent cells in 16 rows");
    }

    #[test]
    fn eval_cache_hits_do_not_change_results() {
        let mut cached = test_chip(31);
        let mut direct = test_chip(31);
        direct.set_eval_cache_capacity(0);
        // Repeat the same writes: round 2+ hit the cache on the cached chip.
        let first_c = cached.run_round(stripe_writes(16)).unwrap();
        let first_d = direct.run_round(stripe_writes(16)).unwrap();
        assert_eq!(first_c, first_d);
        for _ in 0..3 {
            let c = cached.run_round(stripe_writes(16)).unwrap();
            let d = direct.run_round(stripe_writes(16)).unwrap();
            assert_eq!(c, d);
        }
        assert!(cached.eval_cache_len() > 0);
        assert_eq!(direct.eval_cache_len(), 0);
    }

    #[test]
    fn eval_cache_records_hits_and_misses() {
        let recorder = InMemoryRecorder::handle();
        let mut chip = test_chip(4).with_recorder(RecorderHandle::from(recorder.clone()));
        chip.run_round(stripe_writes(8)).unwrap();
        chip.run_round(stripe_writes(8)).unwrap();
        assert_eq!(recorder.counter("dram.eval_cache_misses"), 8);
        assert_eq!(recorder.counter("dram.eval_cache_hits"), 8);
        assert_eq!(recorder.gauge_value("dram.eval_cache"), Some(8));
    }

    #[test]
    fn eval_cache_invalidated_by_condition_change() {
        let mut chip = test_chip(9);
        let before = chip.run_round(stripe_writes(16)).unwrap();
        chip.set_conditions(Celsius(75.0), Seconds(4.0));
        assert_eq!(chip.eval_cache_len(), 0);
        let after = chip.run_round(stripe_writes(16)).unwrap();
        assert!(after.len() > before.len());
    }

    #[test]
    fn fault_map_cache_bounded_with_fifo_eviction() {
        let recorder = InMemoryRecorder::handle();
        let mut chip = test_chip(2).with_recorder(RecorderHandle::from(recorder.clone()));
        chip.set_fault_map_capacity(4);
        for r in 0..16 {
            chip.fault_map(RowId::new(0, r));
        }
        assert_eq!(chip.fault_map_cache_len(), 4);
        assert_eq!(recorder.counter("dram.fault_maps_evicted"), 12);
        assert_eq!(recorder.gauge_value("dram.fault_map_cache"), Some(4));
        // Rebuilding an evicted map is deterministic: results unchanged.
        let before: Vec<u32> = chip
            .fault_map(RowId::new(0, 0))
            .entries
            .iter()
            .map(|e| e.sys)
            .collect();
        chip.set_fault_map_capacity(1);
        chip.fault_map(RowId::new(0, 5));
        let after: Vec<u32> = chip
            .fault_map(RowId::new(0, 0))
            .entries
            .iter()
            .map(|e| e.sys)
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn kernel_modes_bit_identical_through_lut() {
        // The stencil path now builds fault maps through the compiled LUT;
        // the reference path keeps the arithmetic scrambler. Same rounds,
        // same flips — the LUT must be invisible in results.
        let mut lut_chip = test_chip(21);
        let mut ref_chip = test_chip(21);
        ref_chip.set_kernel_mode(KernelMode::Reference);
        for _ in 0..3 {
            let a = lut_chip.run_round(stripe_writes(16)).unwrap();
            let b = ref_chip.run_round(stripe_writes(16)).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn scrambler_counters_split_by_kernel_mode() {
        let lut_rec = InMemoryRecorder::handle();
        let mut chip = test_chip(6).with_recorder(RecorderHandle::from(lut_rec.clone()));
        chip.fault_map(RowId::new(0, 0));
        assert_eq!(lut_rec.counter("dram.scrambler_lut_lookups"), 8192);
        assert_eq!(lut_rec.counter("dram.scrambler_translations"), 0);

        let ref_rec = InMemoryRecorder::handle();
        let mut chip = test_chip(6).with_recorder(RecorderHandle::from(ref_rec.clone()));
        chip.set_kernel_mode(KernelMode::Reference);
        chip.fault_map(RowId::new(0, 0));
        assert_eq!(ref_rec.counter("dram.scrambler_lut_lookups"), 0);
        assert_eq!(ref_rec.counter("dram.scrambler_translations"), 8192);
    }

    #[test]
    fn arena_closes_the_round_buffer_cycle() {
        use parbor_hal::RoundArena;
        let arena = RoundArena::new();
        let mut chip = test_chip(13);
        chip.set_arena(arena.clone());
        // Round 1 inserts fresh rows (nothing replaced yet), round 2
        // replaces all 8 and must recycle every replaced image.
        chip.run_round(stripe_writes(8)).unwrap();
        let after_first = arena.recycled();
        chip.run_round(stripe_writes(8)).unwrap();
        assert!(
            arena.recycled() >= after_first + 8,
            "replaced row images were not recycled: {} -> {}",
            after_first,
            arena.recycled()
        );
        // Results stay identical to an arena-less chip.
        let mut plain = test_chip(13);
        plain.run_round(stripe_writes(8)).unwrap();
        let a = plain.run_round(stripe_writes(8)).unwrap();
        let mut pooled = test_chip(13);
        pooled.set_arena(RoundArena::new());
        pooled.run_round(stripe_writes(8)).unwrap();
        let b = pooled.run_round(stripe_writes(8)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fault_map_capacity_clamped_to_one() {
        let mut chip = test_chip(3);
        chip.set_fault_map_capacity(0);
        chip.fault_map(RowId::new(0, 7));
        // The just-built map must survive even at the minimum capacity.
        assert_eq!(chip.fault_map_cache_len(), 1);
    }
}
