//! One simulated DRAM chip: persistent row contents plus fault evaluation.

use std::collections::HashMap;
use std::sync::Arc;

use parbor_obs::RecorderHandle;

use crate::bits::RowBits;
use crate::cell::{
    marginal_fails, vrt_leaky, CellClass, CellRef, FaultKind, FaultRates, RowFaultMap,
};
use crate::config::{Celsius, Seconds};
use crate::error::DramError;
use crate::geometry::{BitAddr, ChipGeometry, RowId};
use crate::noise::NoiseModel;
use crate::retention::RetentionModel;
use crate::scrambler::Scrambler;

/// A bit that read back different from what was written.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitFlip {
    /// System address of the flipped bit.
    pub addr: BitAddr,
    /// The value that was written (the read value is its inverse).
    pub expected: bool,
}

/// One simulated DRAM chip.
///
/// A chip owns its written row contents (system bit order) and evaluates the
/// fault model on read-after-wait. The canonical test primitive is
/// [`run_round`](DramChip::run_round): write a set of rows, wait one refresh
/// interval, read them back, and report every flipped bit — exactly what a
/// system-level tester can do through the memory controller.
///
/// # Examples
///
/// ```
/// use parbor_dram::{DramChip, ChipGeometry, Vendor, RowId, PatternKind};
///
/// # fn main() -> Result<(), parbor_dram::DramError> {
/// let mut chip = DramChip::new(ChipGeometry::tiny(), Vendor::B, 42)?;
/// let pattern = PatternKind::Checkerboard;
/// let writes: Vec<_> = (0..8)
///     .map(|r| (RowId::new(0, r), pattern.row_bits(r, 1024)))
///     .collect();
/// let flips = chip.run_round(&writes)?;
/// // Flips (if any) are inside the written region.
/// for f in &flips {
///     assert!(f.addr.col < 1024);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DramChip {
    geometry: ChipGeometry,
    scrambler: Arc<dyn Scrambler>,
    seed: u64,
    rates: FaultRates,
    retention: RetentionModel,
    temperature: Celsius,
    refresh_interval: Seconds,
    theta_shift: f64,
    noise: NoiseModel,
    rows: HashMap<RowId, RowBits>,
    fault_maps: HashMap<RowId, RowFaultMap>,
    round: u64,
    rec: RecorderHandle,
}

impl DramChip {
    /// Creates a chip with the vendor's default scrambler and fault rates at
    /// the paper's reference conditions (45 °C, 4 s refresh interval).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] if the vendor scrambler cannot be
    /// built for the geometry's row width.
    pub fn new(
        geometry: ChipGeometry,
        vendor: crate::Vendor,
        seed: u64,
    ) -> Result<Self, DramError> {
        let scrambler = vendor.scrambler(geometry.cols_per_row as usize);
        Self::with_parts(
            geometry,
            scrambler,
            seed,
            vendor.default_rates(),
            RetentionModel::default(),
            Celsius(45.0),
            Seconds(4.0),
        )
    }

    /// Creates a chip from explicit parts. Used by
    /// [`ModuleConfig`](crate::ModuleConfig); exposed for custom setups.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] when the scrambler width does not
    /// match the geometry or the rates are invalid.
    pub fn with_parts(
        geometry: ChipGeometry,
        scrambler: Arc<dyn Scrambler>,
        seed: u64,
        rates: FaultRates,
        retention: RetentionModel,
        temperature: Celsius,
        refresh_interval: Seconds,
    ) -> Result<Self, DramError> {
        if scrambler.row_bits() != geometry.cols_per_row as usize {
            return Err(DramError::InvalidConfig(format!(
                "scrambler width {} != geometry cols {}",
                scrambler.row_bits(),
                geometry.cols_per_row
            )));
        }
        rates.validate()?;
        let theta_shift = retention.kappa
            * retention
                .stress_factor(refresh_interval, temperature)
                .log2();
        let noise = NoiseModel::new(rates.soft_per_bit_per_round);
        Ok(DramChip {
            geometry,
            scrambler,
            seed,
            rates,
            retention,
            temperature,
            refresh_interval,
            theta_shift,
            noise,
            rows: HashMap::new(),
            fault_maps: HashMap::new(),
            round: 0,
            rec: RecorderHandle::null(),
        })
    }

    /// Attaches a metrics recorder (`dram.*` counters). The default is the
    /// null recorder, which observes nothing.
    pub fn with_recorder(mut self, rec: RecorderHandle) -> Self {
        self.rec = rec;
        self
    }

    /// Replaces the metrics recorder in place.
    pub fn set_recorder(&mut self, rec: RecorderHandle) {
        self.rec = rec;
    }

    /// The attached metrics recorder.
    pub fn recorder(&self) -> &RecorderHandle {
        &self.rec
    }

    /// The chip geometry.
    pub fn geometry(&self) -> ChipGeometry {
        self.geometry
    }

    /// The chip's scrambler (shared, read-only).
    pub fn scrambler(&self) -> &Arc<dyn Scrambler> {
        &self.scrambler
    }

    /// The fault seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of refresh-interval waits executed so far.
    pub fn rounds_run(&self) -> u64 {
        self.round
    }

    /// Current effective margin shift (`κ · log2(stress factor)`).
    pub fn theta_shift(&self) -> f64 {
        self.theta_shift
    }

    /// Changes operating temperature and refresh interval. Fault maps are
    /// seeded, not stateful, so only the margin shift changes.
    pub fn set_conditions(&mut self, temperature: Celsius, refresh_interval: Seconds) {
        self.temperature = temperature;
        self.refresh_interval = refresh_interval;
        self.theta_shift = self.retention.kappa
            * self
                .retention
                .stress_factor(refresh_interval, temperature)
                .log2();
    }

    /// Writes a full row (system bit order).
    ///
    /// # Errors
    ///
    /// Returns an error if the row is out of range or the data width does not
    /// match the geometry.
    pub fn write_row(&mut self, row: RowId, data: RowBits) -> Result<(), DramError> {
        self.geometry.check_row(row)?;
        if data.len() != self.geometry.cols_per_row as usize {
            return Err(DramError::WidthMismatch {
                got: data.len(),
                expected: self.geometry.cols_per_row as usize,
            });
        }
        self.rows.insert(row, data);
        self.rec.incr("dram.row_writes", 1);
        Ok(())
    }

    /// Advances time by one refresh interval (the "wait" between write and
    /// read of a test round).
    pub fn advance_round(&mut self) {
        self.round += 1;
        self.rec.incr("dram.rounds", 1);
    }

    /// The last data written to a row, without fault effects.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowNeverWritten`] if the row has no content.
    pub fn written_row(&self, row: RowId) -> Result<&RowBits, DramError> {
        self.rows
            .get(&row)
            .ok_or_else(|| DramError::RowNeverWritten {
                row: row.to_string(),
            })
    }

    /// Reads a row after the waits executed so far, applying the fault model
    /// at the current round.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowNeverWritten`] if the row has no content, or
    /// an address error if the row is out of range.
    pub fn read_row(&mut self, row: RowId) -> Result<RowBits, DramError> {
        let flips = self.row_flips(row)?;
        let data = self.rows.get(&row).expect("checked by row_flips");
        let mut out = data.clone();
        for f in flips {
            out.flip(f.addr.col as usize);
        }
        Ok(out)
    }

    /// The canonical test primitive: write all `writes`, wait one refresh
    /// interval, read each written row back, and return every flipped bit.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range rows or width mismatches; no writes are rolled
    /// back on error.
    pub fn run_round(&mut self, writes: &[(RowId, RowBits)]) -> Result<Vec<BitFlip>, DramError> {
        for (row, data) in writes {
            self.write_row(*row, data.clone())?;
        }
        self.advance_round();
        let mut flips = Vec::new();
        for (row, _) in writes {
            flips.extend(self.row_flips(*row)?);
        }
        Ok(flips)
    }

    /// Computes the flips a read of `row` would observe at the current round.
    fn row_flips(&mut self, row: RowId) -> Result<Vec<BitFlip>, DramError> {
        self.geometry.check_row(row)?;
        self.ensure_fault_map(row);
        self.rec.incr("dram.row_reads", 1);
        let data = self
            .rows
            .get(&row)
            .ok_or_else(|| DramError::RowNeverWritten {
                row: row.to_string(),
            })?;
        let map = self.fault_maps.get(&row).expect("just built");
        let mut flips = Vec::new();
        let charged = |r: &CellRef| (data.get(r.sys as usize)) != r.anti;
        for e in &map.entries {
            let victim_charged = data.get(e.sys as usize) != e.anti;
            if !victim_charged {
                continue;
            }
            let fails = match &e.kind {
                FaultKind::Coupling(p) => {
                    let theta = p.theta_ref - self.theta_shift;
                    let mut interference = 0.0;
                    if let Some(l) = &p.left {
                        if !charged(l) {
                            interference += p.w_left;
                        }
                    }
                    if let Some(rr) = &p.right {
                        if !charged(rr) {
                            interference += p.w_right;
                        }
                    }
                    if !p.window.is_empty() {
                        // Second-order coupling only matters when the window
                        // is substantially biased against the victim: below
                        // half-opposite the contributions cancel. The
                        // denominator is the *full* window size, so cells at
                        // tile edges (fewer aggressors) feel less coupling.
                        let frac = p.window.iter().filter(|c| !charged(c)).count() as f64
                            / p.window_full as f64;
                        interference += p.window_weight * ((frac - 0.5).max(0.0) * 2.0);
                    }
                    interference >= theta
                }
                FaultKind::Marginal { fail_prob } => {
                    marginal_fails(self.seed, row, e.sys, self.round, *fail_prob)
                }
                FaultKind::Vrt => vrt_leaky(
                    self.seed,
                    row,
                    e.sys,
                    self.round,
                    self.rates.vrt_epoch_rounds,
                ),
            };
            if fails {
                flips.push(BitFlip {
                    addr: BitAddr::new(row.bank, row.row, e.sys),
                    expected: data.get(e.sys as usize),
                });
            }
        }
        if let Some(col) = self.noise.soft_flip(
            self.seed,
            row,
            self.round,
            self.geometry.cols_per_row as usize,
        ) {
            let addr = BitAddr::new(row.bank, row.row, col as u32);
            if !flips.iter().any(|f| f.addr == addr) {
                flips.push(BitFlip {
                    addr,
                    expected: data.get(col),
                });
            }
        }
        Ok(flips)
    }

    /// The fault map of a row (built lazily, cached).
    pub fn fault_map(&mut self, row: RowId) -> &RowFaultMap {
        self.ensure_fault_map(row);
        self.fault_maps.get(&row).expect("just built")
    }

    /// Ground-truth oracle: every data-dependent cell of a row with its
    /// class at current conditions. For validation and coverage accounting
    /// only — PARBOR itself never calls this.
    pub fn oracle_data_dependent(&mut self, row: RowId) -> Vec<(u32, CellClass)> {
        let shift = self.theta_shift;
        self.fault_map(row)
            .entries
            .iter()
            .filter_map(|e| match &e.kind {
                FaultKind::Coupling(p) => {
                    let c = p.classify(shift);
                    c.is_data_dependent().then_some((e.sys, c))
                }
                _ => None,
            })
            .collect()
    }

    fn ensure_fault_map(&mut self, row: RowId) {
        if !self.fault_maps.contains_key(&row) {
            let map = RowFaultMap::build(
                self.seed,
                row,
                &*self.scrambler,
                &self.rates,
                &self.retention,
            );
            // Building a fault map translates every system column through
            // the scrambler once.
            self.rec.incr(
                "dram.scrambler_translations",
                u64::from(self.geometry.cols_per_row),
            );
            self.rec.incr("dram.fault_maps_built", 1);
            self.fault_maps.insert(row, map);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternKind;
    use crate::vendor::Vendor;

    fn test_chip(seed: u64) -> DramChip {
        DramChip::new(ChipGeometry::new(1, 16, 8192).unwrap(), Vendor::A, seed).unwrap()
    }

    #[test]
    fn read_before_write_errors() {
        let mut chip = test_chip(1);
        assert!(matches!(
            chip.read_row(RowId::new(0, 0)),
            Err(DramError::RowNeverWritten { .. })
        ));
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut chip = test_chip(1);
        let err = chip
            .write_row(RowId::new(0, 0), RowBits::zeros(100))
            .unwrap_err();
        assert!(matches!(err, DramError::WidthMismatch { .. }));
    }

    #[test]
    fn out_of_range_row_rejected() {
        let mut chip = test_chip(1);
        let err = chip
            .write_row(RowId::new(0, 99), RowBits::zeros(8192))
            .unwrap_err();
        assert!(matches!(err, DramError::AddressOutOfRange { .. }));
    }

    #[test]
    fn coupling_failures_are_data_dependent() {
        // With a high interesting rate, a striped pattern must produce some
        // coupling flips, and flips must change when the data changes.
        let mut chip = DramChip::with_parts(
            ChipGeometry::new(1, 32, 8192).unwrap(),
            Vendor::A.scrambler(8192),
            11,
            FaultRates {
                interesting: 0.02,
                marginal: 0.0,
                vrt: 0.0,
                soft_per_bit_per_round: 0.0,
                ..FaultRates::default()
            },
            RetentionModel::default(),
            Celsius(45.0),
            Seconds(4.0),
        )
        .unwrap();
        let rows: Vec<RowId> = (0..32).map(|r| RowId::new(0, r)).collect();
        let stripe: Vec<_> = rows
            .iter()
            .map(|&r| {
                (
                    r,
                    PatternKind::ColStripe { period: 1 }.row_bits(r.row, 8192),
                )
            })
            .collect();
        let solid: Vec<_> = rows
            .iter()
            .map(|&r| (r, PatternKind::Solid(true).row_bits(r.row, 8192)))
            .collect();
        let f_stripe = chip.run_round(&stripe).unwrap();
        let f_solid = chip.run_round(&solid).unwrap();
        assert!(!f_stripe.is_empty(), "stripe pattern found no failures");
        // Same cells should not all fail under both patterns: data dependence.
        let set_a: std::collections::HashSet<_> = f_stripe.iter().map(|f| f.addr).collect();
        let set_b: std::collections::HashSet<_> = f_solid.iter().map(|f| f.addr).collect();
        assert_ne!(set_a, set_b, "failure sets identical across patterns");
    }

    #[test]
    fn deterministic_across_identical_chips() {
        let mut a = test_chip(77);
        let mut b = test_chip(77);
        let writes: Vec<_> = (0..16)
            .map(|r| {
                (
                    RowId::new(0, r),
                    PatternKind::Random { seed: 3 }.row_bits(r, 8192),
                )
            })
            .collect();
        assert_eq!(a.run_round(&writes).unwrap(), b.run_round(&writes).unwrap());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = test_chip(1);
        let mut b = test_chip(2);
        let writes: Vec<_> = (0..16)
            .map(|r| {
                (
                    RowId::new(0, r),
                    PatternKind::ColStripe { period: 1 }.row_bits(r, 8192),
                )
            })
            .collect();
        assert_ne!(a.run_round(&writes).unwrap(), b.run_round(&writes).unwrap());
    }

    #[test]
    fn read_row_reflects_flips() {
        let mut chip = test_chip(5);
        let row = RowId::new(0, 3);
        let data = PatternKind::ColStripe { period: 1 }.row_bits(3, 8192);
        chip.write_row(row, data.clone()).unwrap();
        chip.advance_round();
        let read = chip.read_row(row).unwrap();
        let diffs = data.diff_indices(&read);
        // Flips may be zero for this seed/row, but reading twice at the same
        // round must be stable.
        let read2 = chip.read_row(row).unwrap();
        assert_eq!(read, read2);
        for d in diffs {
            assert!(d < 8192);
        }
    }

    #[test]
    fn conditions_affect_failure_population() {
        let mut cold = test_chip(9);
        let mut hot = test_chip(9);
        hot.set_conditions(Celsius(75.0), Seconds(4.0));
        let writes: Vec<_> = (0..16)
            .map(|r| {
                (
                    RowId::new(0, r),
                    PatternKind::ColStripe { period: 1 }.row_bits(r, 8192),
                )
            })
            .collect();
        let f_cold = cold.run_round(&writes).unwrap().len();
        let f_hot = hot.run_round(&writes).unwrap().len();
        assert!(f_hot > f_cold, "hot {f_hot} should exceed cold {f_cold}");
    }

    #[test]
    fn oracle_reports_data_dependent_cells() {
        let mut chip = test_chip(123);
        let mut total = 0;
        for r in 0..16 {
            total += chip.oracle_data_dependent(RowId::new(0, r)).len();
        }
        assert!(total > 0, "no data-dependent cells in 16 rows");
    }
}
