//! One simulated DRAM chip: persistent row contents plus fault evaluation.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parbor_obs::RecorderHandle;

use crate::bits::RowBits;
use crate::cell::{
    marginal_fails, vrt_leaky, CellClass, CellRef, FaultKind, FaultRates, RowFaultMap,
};
use crate::config::{Celsius, Seconds};
use crate::error::DramError;
use crate::geometry::{BitAddr, ChipGeometry, RowId};
use crate::noise::NoiseModel;
use crate::retention::RetentionModel;
use crate::scrambler::Scrambler;

/// Default bound on the per-chip fault-map cache (entries, i.e. rows).
///
/// A fault map costs one scrambler translation per column to build and is
/// fully deterministic, so eviction only trades CPU for memory; 8192 rows
/// covers an entire bank of the paper-scale geometry.
pub const DEFAULT_FAULT_MAP_CAPACITY: usize = 8192;

/// Default bound on the per-chip `(row, data)` evaluation cache (entries).
///
/// Test rounds re-write the same few patterns into the same rows over and
/// over (discovery runs each pattern twice, chip-wide rounds repeat
/// per-polarity), so a small cache captures nearly all repeats.
pub const DEFAULT_EVAL_CACHE_CAPACITY: usize = 512;

/// A bit that read back different from what was written.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitFlip {
    /// System address of the flipped bit.
    pub addr: BitAddr,
    /// The value that was written (the read value is its inverse).
    pub expected: bool,
}

/// Indices (into `map.entries`) of the coupling entries that fail for this
/// exact row content at this margin shift.
///
/// Coupling outcomes are pure in `(row data, margin shift)` — unlike the
/// marginal/VRT/soft kinds they do not depend on the round counter — which is
/// what makes them memoizable across repeated writes of the same data.
fn coupling_fail_indices(map: &RowFaultMap, data: &RowBits, theta_shift: f64) -> Vec<u32> {
    let charged = |r: &CellRef| (data.get(r.sys as usize)) != r.anti;
    let mut out = Vec::new();
    for (idx, e) in map.entries.iter().enumerate() {
        let FaultKind::Coupling(p) = &e.kind else {
            continue;
        };
        let victim_charged = data.get(e.sys as usize) != e.anti;
        if !victim_charged {
            continue;
        }
        let theta = p.theta_ref - theta_shift;
        let mut interference = 0.0;
        if let Some(l) = &p.left {
            if !charged(l) {
                interference += p.w_left;
            }
        }
        if let Some(rr) = &p.right {
            if !charged(rr) {
                interference += p.w_right;
            }
        }
        if !p.window.is_empty() {
            // Second-order coupling only matters when the window is
            // substantially biased against the victim: below half-opposite
            // the contributions cancel. The denominator is the *full* window
            // size, so cells at tile edges (fewer aggressors) feel less
            // coupling.
            let frac =
                p.window.iter().filter(|c| !charged(c)).count() as f64 / p.window_full as f64;
            interference += p.window_weight * ((frac - 0.5).max(0.0) * 2.0);
        }
        if interference >= theta {
            out.push(idx as u32);
        }
    }
    out
}

/// One simulated DRAM chip.
///
/// A chip owns its written row contents (system bit order) and evaluates the
/// fault model on read-after-wait. The canonical test primitive is
/// [`run_round`](DramChip::run_round): write a set of rows, wait one refresh
/// interval, read them back, and report every flipped bit — exactly what a
/// system-level tester can do through the memory controller.
///
/// Both internal caches are bounded: fault maps (deterministic, rebuildable)
/// are evicted FIFO past [`DEFAULT_FAULT_MAP_CAPACITY`], and memoized
/// coupling evaluations past [`DEFAULT_EVAL_CACHE_CAPACITY`]. Cache sizes are
/// published as the `dram.fault_map_cache` / `dram.eval_cache` gauges.
///
/// # Examples
///
/// ```
/// use parbor_dram::{DramChip, ChipGeometry, Vendor, RowId, PatternKind};
///
/// # fn main() -> Result<(), parbor_dram::DramError> {
/// let mut chip = DramChip::new(ChipGeometry::tiny(), Vendor::B, 42)?;
/// let pattern = PatternKind::Checkerboard;
/// let writes: Vec<_> = (0..8)
///     .map(|r| (RowId::new(0, r), pattern.row_bits(r, 1024)))
///     .collect();
/// let flips = chip.run_round(writes)?;
/// // Flips (if any) are inside the written region.
/// for f in &flips {
///     assert!(f.addr.col < 1024);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DramChip {
    geometry: ChipGeometry,
    scrambler: Arc<dyn Scrambler>,
    seed: u64,
    rates: FaultRates,
    retention: RetentionModel,
    temperature: Celsius,
    refresh_interval: Seconds,
    theta_shift: f64,
    noise: NoiseModel,
    rows: HashMap<RowId, RowBits>,
    fault_maps: HashMap<RowId, RowFaultMap>,
    fault_map_order: VecDeque<RowId>,
    fault_map_cap: usize,
    eval_cache: HashMap<(RowId, u64), (RowBits, Vec<u32>)>,
    eval_order: VecDeque<(RowId, u64)>,
    eval_cap: usize,
    round: u64,
    rec: RecorderHandle,
}

impl DramChip {
    /// Creates a chip with the vendor's default scrambler and fault rates at
    /// the paper's reference conditions (45 °C, 4 s refresh interval).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] if the vendor scrambler cannot be
    /// built for the geometry's row width.
    pub fn new(
        geometry: ChipGeometry,
        vendor: crate::Vendor,
        seed: u64,
    ) -> Result<Self, DramError> {
        let scrambler = vendor.scrambler(geometry.cols_per_row as usize);
        Self::with_parts(
            geometry,
            scrambler,
            seed,
            vendor.default_rates(),
            RetentionModel::default(),
            Celsius(45.0),
            Seconds(4.0),
        )
    }

    /// Creates a chip from explicit parts. Used by
    /// [`ModuleConfig`](crate::ModuleConfig); exposed for custom setups.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] when the scrambler width does not
    /// match the geometry or the rates are invalid.
    pub fn with_parts(
        geometry: ChipGeometry,
        scrambler: Arc<dyn Scrambler>,
        seed: u64,
        rates: FaultRates,
        retention: RetentionModel,
        temperature: Celsius,
        refresh_interval: Seconds,
    ) -> Result<Self, DramError> {
        if scrambler.row_bits() != geometry.cols_per_row as usize {
            return Err(DramError::InvalidConfig(format!(
                "scrambler width {} != geometry cols {}",
                scrambler.row_bits(),
                geometry.cols_per_row
            )));
        }
        rates.validate()?;
        let theta_shift = retention.kappa
            * retention
                .stress_factor(refresh_interval, temperature)
                .log2();
        let noise = NoiseModel::new(rates.soft_per_bit_per_round);
        Ok(DramChip {
            geometry,
            scrambler,
            seed,
            rates,
            retention,
            temperature,
            refresh_interval,
            theta_shift,
            noise,
            rows: HashMap::new(),
            fault_maps: HashMap::new(),
            fault_map_order: VecDeque::new(),
            fault_map_cap: DEFAULT_FAULT_MAP_CAPACITY,
            eval_cache: HashMap::new(),
            eval_order: VecDeque::new(),
            eval_cap: DEFAULT_EVAL_CACHE_CAPACITY,
            round: 0,
            rec: RecorderHandle::null(),
        })
    }

    /// Attaches a metrics recorder (`dram.*` counters). The default is the
    /// null recorder, which observes nothing.
    pub fn with_recorder(mut self, rec: RecorderHandle) -> Self {
        self.rec = rec;
        self
    }

    /// Replaces the metrics recorder in place.
    pub fn set_recorder(&mut self, rec: RecorderHandle) {
        self.rec = rec;
    }

    /// The attached metrics recorder.
    pub fn recorder(&self) -> &RecorderHandle {
        &self.rec
    }

    /// The chip geometry.
    pub fn geometry(&self) -> ChipGeometry {
        self.geometry
    }

    /// The chip's scrambler (shared, read-only).
    pub fn scrambler(&self) -> &Arc<dyn Scrambler> {
        &self.scrambler
    }

    /// The fault seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of refresh-interval waits executed so far.
    pub fn rounds_run(&self) -> u64 {
        self.round
    }

    /// Current effective margin shift (`κ · log2(stress factor)`).
    pub fn theta_shift(&self) -> f64 {
        self.theta_shift
    }

    /// Current number of cached fault maps (also the `dram.fault_map_cache`
    /// gauge).
    pub fn fault_map_cache_len(&self) -> usize {
        self.fault_maps.len()
    }

    /// Bounds the fault-map cache to `cap` rows (clamped to ≥ 1), evicting
    /// oldest-built maps immediately if over. Fault maps are deterministic,
    /// so eviction never changes results — only rebuild cost.
    pub fn set_fault_map_capacity(&mut self, cap: usize) {
        self.fault_map_cap = cap.max(1);
        self.evict_fault_maps();
    }

    /// Current number of memoized `(row, data)` coupling evaluations (also
    /// the `dram.eval_cache` gauge).
    pub fn eval_cache_len(&self) -> usize {
        self.eval_cache.len()
    }

    /// Bounds the coupling-evaluation cache to `cap` entries; `0` disables
    /// memoization entirely. Entries are verified against the full row
    /// content on every hit, so results never depend on the cache.
    pub fn set_eval_cache_capacity(&mut self, cap: usize) {
        self.eval_cap = cap;
        if cap == 0 {
            self.eval_cache.clear();
            self.eval_order.clear();
        } else {
            while self.eval_cache.len() > cap {
                if let Some(old) = self.eval_order.pop_front() {
                    self.eval_cache.remove(&old);
                } else {
                    break;
                }
            }
        }
        self.rec
            .gauge("dram.eval_cache", self.eval_cache.len() as i64);
    }

    /// Changes operating temperature and refresh interval. Fault maps are
    /// seeded, not stateful, so only the margin shift changes — which
    /// invalidates the memoized coupling evaluations.
    pub fn set_conditions(&mut self, temperature: Celsius, refresh_interval: Seconds) {
        self.temperature = temperature;
        self.refresh_interval = refresh_interval;
        self.theta_shift = self.retention.kappa
            * self
                .retention
                .stress_factor(refresh_interval, temperature)
                .log2();
        self.eval_cache.clear();
        self.eval_order.clear();
        self.rec.gauge("dram.eval_cache", 0);
    }

    /// Writes a full row (system bit order).
    ///
    /// # Errors
    ///
    /// Returns an error if the row is out of range or the data width does not
    /// match the geometry.
    pub fn write_row(&mut self, row: RowId, data: RowBits) -> Result<(), DramError> {
        self.geometry.check_row(row)?;
        if data.len() != self.geometry.cols_per_row as usize {
            return Err(DramError::WidthMismatch {
                got: data.len(),
                expected: self.geometry.cols_per_row as usize,
            });
        }
        self.rows.insert(row, data);
        self.rec.incr("dram.row_writes", 1);
        Ok(())
    }

    /// Advances time by one refresh interval (the "wait" between write and
    /// read of a test round).
    pub fn advance_round(&mut self) {
        self.round += 1;
        self.rec.incr("dram.rounds", 1);
    }

    /// The last data written to a row, without fault effects.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowNeverWritten`] if the row has no content.
    pub fn written_row(&self, row: RowId) -> Result<&RowBits, DramError> {
        self.rows
            .get(&row)
            .ok_or_else(|| DramError::RowNeverWritten {
                row: row.to_string(),
            })
    }

    /// Reads a row after the waits executed so far, applying the fault model
    /// at the current round.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowNeverWritten`] if the row has no content, or
    /// an address error if the row is out of range.
    pub fn read_row(&mut self, row: RowId) -> Result<RowBits, DramError> {
        let flips = self.row_flips(row)?;
        let data = self.rows.get(&row).expect("checked by row_flips");
        let mut out = data.clone();
        for f in flips {
            out.flip(f.addr.col as usize);
        }
        Ok(out)
    }

    /// The canonical test primitive: write all `writes`, wait one refresh
    /// interval, read each written row back, and return every flipped bit.
    ///
    /// Writes are taken by value and moved straight into row storage — no
    /// per-row clone on the hot path.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range rows or width mismatches; no writes are rolled
    /// back on error.
    pub fn run_round(&mut self, writes: Vec<(RowId, RowBits)>) -> Result<Vec<BitFlip>, DramError> {
        let rows: Vec<RowId> = writes.iter().map(|(row, _)| *row).collect();
        for (row, data) in writes {
            self.write_row(row, data)?;
        }
        self.advance_round();
        let mut flips = Vec::new();
        for row in rows {
            flips.extend(self.row_flips(row)?);
        }
        Ok(flips)
    }

    /// Computes the flips a read of `row` would observe at the current round.
    fn row_flips(&mut self, row: RowId) -> Result<Vec<BitFlip>, DramError> {
        self.geometry.check_row(row)?;
        self.ensure_fault_map(row);
        self.rec.incr("dram.row_reads", 1);
        let data = self
            .rows
            .get(&row)
            .ok_or_else(|| DramError::RowNeverWritten {
                row: row.to_string(),
            })?;
        let map = self.fault_maps.get(&row).expect("just built");

        // Coupling outcomes are pure in (data, theta_shift); look them up by
        // content hash, verifying the stored row on a hit so hash collisions
        // can never change results. Round-dependent kinds (marginal, VRT,
        // soft noise) are re-evaluated every call below.
        let key = (row, data.content_hash());
        let mut coupled: Option<Vec<u32>> = None;
        if self.eval_cap > 0 {
            if let Some((stored, indices)) = self.eval_cache.get(&key) {
                if stored == data {
                    self.rec.incr("dram.eval_cache_hits", 1);
                    coupled = Some(indices.clone());
                }
            }
        }
        let coupled = match coupled {
            Some(v) => v,
            None => {
                let v = coupling_fail_indices(map, data, self.theta_shift);
                if self.eval_cap > 0 {
                    self.rec.incr("dram.eval_cache_misses", 1);
                    if !self.eval_cache.contains_key(&key) {
                        self.eval_order.push_back(key);
                    }
                    self.eval_cache.insert(key, (data.clone(), v.clone()));
                    while self.eval_cache.len() > self.eval_cap {
                        if let Some(old) = self.eval_order.pop_front() {
                            self.eval_cache.remove(&old);
                        } else {
                            break;
                        }
                    }
                    self.rec
                        .gauge("dram.eval_cache", self.eval_cache.len() as i64);
                }
                v
            }
        };

        // Single pass over the entries, walking the sorted failing-index
        // list in lockstep, so flip order is identical to direct evaluation.
        let mut flips = Vec::new();
        let mut ci = 0usize;
        for (idx, e) in map.entries.iter().enumerate() {
            let fails = match &e.kind {
                FaultKind::Coupling(_) => {
                    if coupled.get(ci) == Some(&(idx as u32)) {
                        ci += 1;
                        true
                    } else {
                        false
                    }
                }
                FaultKind::Marginal { fail_prob } => {
                    data.get(e.sys as usize) != e.anti
                        && marginal_fails(self.seed, row, e.sys, self.round, *fail_prob)
                }
                FaultKind::Vrt => {
                    data.get(e.sys as usize) != e.anti
                        && vrt_leaky(
                            self.seed,
                            row,
                            e.sys,
                            self.round,
                            self.rates.vrt_epoch_rounds,
                        )
                }
            };
            if fails {
                flips.push(BitFlip {
                    addr: BitAddr::new(row.bank, row.row, e.sys),
                    expected: data.get(e.sys as usize),
                });
            }
        }
        if let Some(col) = self.noise.soft_flip(
            self.seed,
            row,
            self.round,
            self.geometry.cols_per_row as usize,
        ) {
            let addr = BitAddr::new(row.bank, row.row, col as u32);
            if !flips.iter().any(|f| f.addr == addr) {
                flips.push(BitFlip {
                    addr,
                    expected: data.get(col),
                });
            }
        }
        Ok(flips)
    }

    /// The fault map of a row (built lazily, cached with FIFO eviction).
    pub fn fault_map(&mut self, row: RowId) -> &RowFaultMap {
        self.ensure_fault_map(row);
        self.fault_maps.get(&row).expect("just built")
    }

    /// Ground-truth oracle: every data-dependent cell of a row with its
    /// class at current conditions. For validation and coverage accounting
    /// only — PARBOR itself never calls this.
    pub fn oracle_data_dependent(&mut self, row: RowId) -> Vec<(u32, CellClass)> {
        let shift = self.theta_shift;
        self.fault_map(row)
            .entries
            .iter()
            .filter_map(|e| match &e.kind {
                FaultKind::Coupling(p) => {
                    let c = p.classify(shift);
                    c.is_data_dependent().then_some((e.sys, c))
                }
                _ => None,
            })
            .collect()
    }

    fn ensure_fault_map(&mut self, row: RowId) {
        if self.fault_maps.contains_key(&row) {
            return;
        }
        let map = RowFaultMap::build(
            self.seed,
            row,
            &*self.scrambler,
            &self.rates,
            &self.retention,
        );
        // Building a fault map translates every system column through
        // the scrambler once.
        self.rec.incr(
            "dram.scrambler_translations",
            u64::from(self.geometry.cols_per_row),
        );
        self.rec.incr("dram.fault_maps_built", 1);
        self.fault_maps.insert(row, map);
        self.fault_map_order.push_back(row);
        self.evict_fault_maps();
        self.rec
            .gauge("dram.fault_map_cache", self.fault_maps.len() as i64);
    }

    fn evict_fault_maps(&mut self) {
        while self.fault_maps.len() > self.fault_map_cap {
            if let Some(old) = self.fault_map_order.pop_front() {
                self.fault_maps.remove(&old);
                self.rec.incr("dram.fault_maps_evicted", 1);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternKind;
    use crate::vendor::Vendor;
    use parbor_obs::InMemoryRecorder;

    fn test_chip(seed: u64) -> DramChip {
        DramChip::new(ChipGeometry::new(1, 16, 8192).unwrap(), Vendor::A, seed).unwrap()
    }

    fn stripe_writes(rows: u32) -> Vec<(RowId, RowBits)> {
        (0..rows)
            .map(|r| {
                (
                    RowId::new(0, r),
                    PatternKind::ColStripe { period: 1 }.row_bits(r, 8192),
                )
            })
            .collect()
    }

    #[test]
    fn read_before_write_errors() {
        let mut chip = test_chip(1);
        assert!(matches!(
            chip.read_row(RowId::new(0, 0)),
            Err(DramError::RowNeverWritten { .. })
        ));
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut chip = test_chip(1);
        let err = chip
            .write_row(RowId::new(0, 0), RowBits::zeros(100))
            .unwrap_err();
        assert!(matches!(err, DramError::WidthMismatch { .. }));
    }

    #[test]
    fn out_of_range_row_rejected() {
        let mut chip = test_chip(1);
        let err = chip
            .write_row(RowId::new(0, 99), RowBits::zeros(8192))
            .unwrap_err();
        assert!(matches!(err, DramError::AddressOutOfRange { .. }));
    }

    #[test]
    fn coupling_failures_are_data_dependent() {
        // With a high interesting rate, a striped pattern must produce some
        // coupling flips, and flips must change when the data changes.
        let mut chip = DramChip::with_parts(
            ChipGeometry::new(1, 32, 8192).unwrap(),
            Vendor::A.scrambler(8192),
            11,
            FaultRates {
                interesting: 0.02,
                marginal: 0.0,
                vrt: 0.0,
                soft_per_bit_per_round: 0.0,
                ..FaultRates::default()
            },
            RetentionModel::default(),
            Celsius(45.0),
            Seconds(4.0),
        )
        .unwrap();
        let rows: Vec<RowId> = (0..32).map(|r| RowId::new(0, r)).collect();
        let stripe: Vec<_> = rows
            .iter()
            .map(|&r| {
                (
                    r,
                    PatternKind::ColStripe { period: 1 }.row_bits(r.row, 8192),
                )
            })
            .collect();
        let solid: Vec<_> = rows
            .iter()
            .map(|&r| (r, PatternKind::Solid(true).row_bits(r.row, 8192)))
            .collect();
        let f_stripe = chip.run_round(stripe).unwrap();
        let f_solid = chip.run_round(solid).unwrap();
        assert!(!f_stripe.is_empty(), "stripe pattern found no failures");
        // Same cells should not all fail under both patterns: data dependence.
        let set_a: std::collections::HashSet<_> = f_stripe.iter().map(|f| f.addr).collect();
        let set_b: std::collections::HashSet<_> = f_solid.iter().map(|f| f.addr).collect();
        assert_ne!(set_a, set_b, "failure sets identical across patterns");
    }

    #[test]
    fn deterministic_across_identical_chips() {
        let mut a = test_chip(77);
        let mut b = test_chip(77);
        let writes: Vec<_> = (0..16)
            .map(|r| {
                (
                    RowId::new(0, r),
                    PatternKind::Random { seed: 3 }.row_bits(r, 8192),
                )
            })
            .collect();
        assert_eq!(
            a.run_round(writes.clone()).unwrap(),
            b.run_round(writes).unwrap()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = test_chip(1);
        let mut b = test_chip(2);
        assert_ne!(
            a.run_round(stripe_writes(16)).unwrap(),
            b.run_round(stripe_writes(16)).unwrap()
        );
    }

    #[test]
    fn read_row_reflects_flips() {
        let mut chip = test_chip(5);
        let row = RowId::new(0, 3);
        let data = PatternKind::ColStripe { period: 1 }.row_bits(3, 8192);
        chip.write_row(row, data.clone()).unwrap();
        chip.advance_round();
        let read = chip.read_row(row).unwrap();
        let diffs = data.diff_indices(&read);
        // Flips may be zero for this seed/row, but reading twice at the same
        // round must be stable.
        let read2 = chip.read_row(row).unwrap();
        assert_eq!(read, read2);
        for d in diffs {
            assert!(d < 8192);
        }
    }

    #[test]
    fn conditions_affect_failure_population() {
        let mut cold = test_chip(9);
        let mut hot = test_chip(9);
        hot.set_conditions(Celsius(75.0), Seconds(4.0));
        let f_cold = cold.run_round(stripe_writes(16)).unwrap().len();
        let f_hot = hot.run_round(stripe_writes(16)).unwrap().len();
        assert!(f_hot > f_cold, "hot {f_hot} should exceed cold {f_cold}");
    }

    #[test]
    fn oracle_reports_data_dependent_cells() {
        let mut chip = test_chip(123);
        let mut total = 0;
        for r in 0..16 {
            total += chip.oracle_data_dependent(RowId::new(0, r)).len();
        }
        assert!(total > 0, "no data-dependent cells in 16 rows");
    }

    #[test]
    fn eval_cache_hits_do_not_change_results() {
        let mut cached = test_chip(31);
        let mut direct = test_chip(31);
        direct.set_eval_cache_capacity(0);
        // Repeat the same writes: round 2+ hit the cache on the cached chip.
        let first_c = cached.run_round(stripe_writes(16)).unwrap();
        let first_d = direct.run_round(stripe_writes(16)).unwrap();
        assert_eq!(first_c, first_d);
        for _ in 0..3 {
            let c = cached.run_round(stripe_writes(16)).unwrap();
            let d = direct.run_round(stripe_writes(16)).unwrap();
            assert_eq!(c, d);
        }
        assert!(cached.eval_cache_len() > 0);
        assert_eq!(direct.eval_cache_len(), 0);
    }

    #[test]
    fn eval_cache_records_hits_and_misses() {
        let recorder = InMemoryRecorder::handle();
        let mut chip = test_chip(4).with_recorder(RecorderHandle::from(recorder.clone()));
        chip.run_round(stripe_writes(8)).unwrap();
        chip.run_round(stripe_writes(8)).unwrap();
        assert_eq!(recorder.counter("dram.eval_cache_misses"), 8);
        assert_eq!(recorder.counter("dram.eval_cache_hits"), 8);
        assert_eq!(recorder.gauge_value("dram.eval_cache"), Some(8));
    }

    #[test]
    fn eval_cache_invalidated_by_condition_change() {
        let mut chip = test_chip(9);
        let before = chip.run_round(stripe_writes(16)).unwrap();
        chip.set_conditions(Celsius(75.0), Seconds(4.0));
        assert_eq!(chip.eval_cache_len(), 0);
        let after = chip.run_round(stripe_writes(16)).unwrap();
        assert!(after.len() > before.len());
    }

    #[test]
    fn fault_map_cache_bounded_with_fifo_eviction() {
        let recorder = InMemoryRecorder::handle();
        let mut chip = test_chip(2).with_recorder(RecorderHandle::from(recorder.clone()));
        chip.set_fault_map_capacity(4);
        for r in 0..16 {
            chip.fault_map(RowId::new(0, r));
        }
        assert_eq!(chip.fault_map_cache_len(), 4);
        assert_eq!(recorder.counter("dram.fault_maps_evicted"), 12);
        assert_eq!(recorder.gauge_value("dram.fault_map_cache"), Some(4));
        // Rebuilding an evicted map is deterministic: results unchanged.
        let before: Vec<u32> = chip
            .fault_map(RowId::new(0, 0))
            .entries
            .iter()
            .map(|e| e.sys)
            .collect();
        chip.set_fault_map_capacity(1);
        chip.fault_map(RowId::new(0, 5));
        let after: Vec<u32> = chip
            .fault_map(RowId::new(0, 0))
            .entries
            .iter()
            .map(|e| e.sys)
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn fault_map_capacity_clamped_to_one() {
        let mut chip = test_chip(3);
        chip.set_fault_map_capacity(0);
        chip.fault_map(RowId::new(0, 7));
        // The just-built map must survive even at the minimum capacity.
        assert_eq!(chip.fault_map_cache_len(), 1);
    }
}
