//! Redundant-column remapping (the paper's §7.3 limitation).
//!
//! Manufacturers repair faulty columns by steering them to spare columns
//! elsewhere in the array. A remapped cell's *physical* neighbors are the
//! spare location's neighbors, so its neighbor distances in the system
//! address space differ from the regular population — PARBOR's frequency
//! ranking discards them as infrequent, which is exactly the paper's
//! coverage limitation. This module models remapping as a wrapper scrambler
//! that swaps pairs of physical positions.

use std::sync::Arc;

use crate::scrambler::Scrambler;
use parbor_hal::DramError;

/// A set of physical position swaps applied on top of a base scrambler.
///
/// # Examples
///
/// ```
/// use parbor_dram::{RemapTable, IdentityScrambler, Scrambler};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), parbor_dram::DramError> {
/// let base = Arc::new(IdentityScrambler::new(128));
/// let remapped = RemapTable::new(vec![(3, 120)])?.apply(base)?;
/// // System column 3 now physically sits at position 120 and vice versa.
/// assert_eq!(remapped.system_to_physical(3), 120);
/// assert_eq!(remapped.system_to_physical(120), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemapTable {
    swaps: Vec<(usize, usize)>,
}

impl RemapTable {
    /// Creates a remap table from `(faulty, spare)` physical position pairs.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] if any position appears twice or
    /// a pair is degenerate.
    pub fn new(swaps: Vec<(usize, usize)>) -> Result<Self, DramError> {
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &swaps {
            if a == b {
                return Err(DramError::InvalidConfig(format!(
                    "degenerate remap pair ({a}, {b})"
                )));
            }
            if !seen.insert(a) || !seen.insert(b) {
                return Err(DramError::InvalidConfig(format!(
                    "physical position reused in remap pair ({a}, {b})"
                )));
            }
        }
        Ok(RemapTable { swaps })
    }

    /// The `(faulty, spare)` pairs.
    pub fn swaps(&self) -> &[(usize, usize)] {
        &self.swaps
    }

    /// Wraps a scrambler so the swapped physical positions exchange their
    /// system columns.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::AddressOutOfRange`] if any position exceeds the
    /// scrambler's row width.
    pub fn apply(&self, base: Arc<dyn Scrambler>) -> Result<RemappedScrambler, DramError> {
        let n = base.row_bits();
        for &(a, b) in &self.swaps {
            if a >= n || b >= n {
                return Err(DramError::AddressOutOfRange {
                    what: format!("remap pair ({a}, {b})"),
                    limit: format!("row width {n}"),
                });
            }
        }
        let mut phys_swap: Vec<u32> = (0..n as u32).collect();
        for &(a, b) in &self.swaps {
            phys_swap.swap(a, b);
        }
        Ok(RemappedScrambler { base, phys_swap })
    }
}

/// A scrambler with remapped (swapped) physical positions; produced by
/// [`RemapTable::apply`].
#[derive(Debug, Clone)]
pub struct RemappedScrambler {
    base: Arc<dyn Scrambler>,
    /// Involution over physical positions: `phys_swap[p]` is where the cell
    /// that would nominally sit at `p` actually lives.
    phys_swap: Vec<u32>,
}

impl Scrambler for RemappedScrambler {
    fn row_bits(&self) -> usize {
        self.base.row_bits()
    }

    fn system_to_physical(&self, col: usize) -> usize {
        self.phys_swap[self.base.system_to_physical(col)] as usize
    }

    fn physical_to_system(&self, pos: usize) -> usize {
        self.base.physical_to_system(self.phys_swap[pos] as usize)
    }

    fn tile_bounds(&self, pos: usize) -> (usize, usize) {
        self.base.tile_bounds(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrambler::IdentityScrambler;
    use crate::vendor::Vendor;

    #[test]
    fn swap_is_involution() {
        let base = Arc::new(IdentityScrambler::new(64));
        let s = RemapTable::new(vec![(1, 60), (2, 61)])
            .unwrap()
            .apply(base)
            .unwrap();
        for col in 0..64 {
            assert_eq!(s.physical_to_system(s.system_to_physical(col)), col);
        }
    }

    #[test]
    fn remap_changes_neighbors() {
        let base = Vendor::B.scrambler(512);
        let col = base.physical_to_system(10);
        let before = base.physical_neighbors(col);
        let s = RemapTable::new(vec![(10, 200)])
            .unwrap()
            .apply(base)
            .unwrap();
        let after = s.physical_neighbors(col);
        assert_ne!(before, after, "remapping must relocate neighbors");
    }

    #[test]
    fn rejects_duplicates_and_degenerates() {
        assert!(RemapTable::new(vec![(1, 1)]).is_err());
        assert!(RemapTable::new(vec![(1, 2), (2, 3)]).is_err());
        assert!(RemapTable::new(vec![(1, 2), (3, 4)]).is_ok());
    }

    #[test]
    fn rejects_out_of_range() {
        let base = Arc::new(IdentityScrambler::new(16));
        let err = RemapTable::new(vec![(1, 99)]).unwrap().apply(base);
        assert!(err.is_err());
    }

    #[test]
    fn remapped_scrambler_stays_bijective() {
        let base = Vendor::A.scrambler(2048);
        let s = RemapTable::new(vec![(5, 1000), (77, 1500)])
            .unwrap()
            .apply(base)
            .unwrap();
        let mut seen = vec![false; 2048];
        for col in 0..2048 {
            let p = s.system_to_physical(col);
            assert!(!seen[p]);
            seen[p] = true;
        }
    }
}
