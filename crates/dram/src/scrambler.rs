//! System-address ↔ physical-cell mapping (vendor address scrambling).
//!
//! DRAM vendors scramble the system address space for cost reasons: data
//! passes through hierarchical buffers (global and local sense amplifiers) of
//! mismatched widths, so system-adjacent bits land in non-adjacent physical
//! cells (paper §3, challenge 1). The mapping is never exposed, which is what
//! makes system-level detection of data-dependent failures hard — and what
//! PARBOR reverse-engineers.
//!
//! This module models scrambling as a per-row permutation organized in
//! **tiles**: physical cell positions are grouped into tiles (subarrays /
//! mats), physical adjacency exists only *within* a tile, and each tile picks
//! up a fixed arithmetic-progression subset of the system offsets in a fixed
//! *walk* order. The observable neighbor-distance set of such a scrambler is
//! `stride ×` the step set of the walk — see [`crate::walk_distance_set`].

use std::fmt;
use std::sync::Arc;

use crate::walk::{is_permutation, is_permutation_table};
use parbor_hal::DramError;

/// A system→physical address mapping for the columns of one DRAM row.
///
/// All rows of a chip share the same column mapping (the paper's observation
/// of tile regularity across rows); different chips of the same vendor share
/// it too.
///
/// Implementors must guarantee that [`system_to_physical`] is a permutation
/// of `0..row_bits()` and that [`physical_to_system`] is its inverse.
///
/// [`system_to_physical`]: Scrambler::system_to_physical
/// [`physical_to_system`]: Scrambler::physical_to_system
pub trait Scrambler: fmt::Debug + Send + Sync {
    /// Number of columns (bits) in a row.
    fn row_bits(&self) -> usize;

    /// Physical position of the cell holding system column `col`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `col >= row_bits()`.
    fn system_to_physical(&self, col: usize) -> usize;

    /// System column held by the cell at physical position `pos`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `pos >= row_bits()`.
    fn physical_to_system(&self, pos: usize) -> usize;

    /// Bounds `(start, end)` of the tile containing physical position `pos`.
    ///
    /// Physical adjacency (bitline coupling) exists only within a tile; the
    /// first and last cells of a tile have a single neighbor. The default
    /// treats the whole row as one tile.
    fn tile_bounds(&self, pos: usize) -> (usize, usize) {
        let _ = pos;
        (0, self.row_bits())
    }

    /// System columns of the physical left and right neighbors of the cell
    /// holding system column `col` (`None` at tile edges).
    ///
    /// This is the ground truth PARBOR tries to discover; production code
    /// paths never call it — it exists for validation and oracle baselines.
    fn physical_neighbors(&self, col: usize) -> (Option<usize>, Option<usize>) {
        let pos = self.system_to_physical(col);
        let (lo, hi) = self.tile_bounds(pos);
        let left = (pos > lo).then(|| self.physical_to_system(pos - 1));
        let right = (pos + 1 < hi).then(|| self.physical_to_system(pos + 1));
        (left, right)
    }

    /// The full set of signed neighbor distances observable in the system
    /// address space, sorted ascending. Validation/oracle use only.
    fn distance_set(&self) -> Vec<i64> {
        let mut set = std::collections::BTreeSet::new();
        for col in 0..self.row_bits() {
            let (l, r) = self.physical_neighbors(col);
            for n in [l, r].into_iter().flatten() {
                set.insert(n as i64 - col as i64);
            }
        }
        set.into_iter().collect()
    }

    /// Precomputes dense permutation tables `(sys→phys, phys→sys)` for bulk
    /// row translation.
    fn build_tables(&self) -> (Vec<u32>, Vec<u32>) {
        let n = self.row_bits();
        let mut s2p = vec![0u32; n];
        let mut p2s = vec![0u32; n];
        for (col, entry) in s2p.iter_mut().enumerate() {
            let pos = self.system_to_physical(col);
            *entry = pos as u32;
            p2s[pos] = col as u32;
        }
        (s2p, p2s)
    }
}

impl<S: Scrambler + ?Sized> Scrambler for Arc<S> {
    fn row_bits(&self) -> usize {
        (**self).row_bits()
    }
    fn system_to_physical(&self, col: usize) -> usize {
        (**self).system_to_physical(col)
    }
    fn physical_to_system(&self, pos: usize) -> usize {
        (**self).physical_to_system(pos)
    }
    fn tile_bounds(&self, pos: usize) -> (usize, usize) {
        (**self).tile_bounds(pos)
    }
}

/// A scrambler compiled into dense lookup tables.
///
/// The arithmetic scramblers translate one column per call (div/mod chains
/// in [`TileWalkScrambler`]); a chip-sized scan performs millions of such
/// translations while building fault maps. `ScramblerLut` pays the
/// arithmetic exactly once per column at construction and serves every
/// later translation — both directions, plus tile bounds — as an indexed
/// load.
///
/// The LUT implements [`Scrambler`] itself, so it drops into every
/// consumer of the trait unchanged; because its tables are filled *from*
/// the wrapped scrambler, bit-identity with the reference path is by
/// construction (and double-checked at build time: the table pair must be
/// a permutation and its inverse).
///
/// # Examples
///
/// ```
/// use parbor_dram::{Scrambler, ScramblerLut, Vendor};
///
/// let reference = Vendor::A.scrambler(8192);
/// let lut = ScramblerLut::build(reference.as_ref());
/// assert_eq!(lut.system_to_physical(100), reference.system_to_physical(100));
/// assert_eq!(lut.distance_set(), reference.distance_set());
/// ```
#[derive(Debug, Clone)]
pub struct ScramblerLut {
    row_bits: usize,
    s2p: Vec<u32>,
    p2s: Vec<u32>,
    /// Tile bounds per physical position, `(start, end)`.
    bounds: Vec<(u32, u32)>,
}

impl ScramblerLut {
    /// Compiles `inner` into lookup tables. This is the only place the
    /// wrapped scrambler's arithmetic runs: `2 × row_bits` translations
    /// plus one `tile_bounds` call per position.
    ///
    /// # Panics
    ///
    /// Panics if `inner` violates the [`Scrambler`] contract (its mapping
    /// is not a permutation of `0..row_bits` with a consistent inverse).
    pub fn build(inner: &(impl Scrambler + ?Sized)) -> Self {
        let n = inner.row_bits();
        let (s2p, p2s) = inner.build_tables();
        assert!(
            is_permutation_table(&p2s),
            "scrambler p2s table is not a permutation of 0..{n}"
        );
        for (col, &pos) in s2p.iter().enumerate() {
            assert_eq!(
                p2s[pos as usize] as usize, col,
                "scrambler tables are not inverse at column {col}"
            );
        }
        let bounds = (0..n)
            .map(|pos| {
                let (lo, hi) = inner.tile_bounds(pos);
                (lo as u32, hi as u32)
            })
            .collect();
        ScramblerLut {
            row_bits: n,
            s2p,
            p2s,
            bounds,
        }
    }

    /// The dense system→physical table.
    pub fn s2p_table(&self) -> &[u32] {
        &self.s2p
    }

    /// The dense physical→system table.
    pub fn p2s_table(&self) -> &[u32] {
        &self.p2s
    }

    /// Translates every physical position of one whole row to its system
    /// column in a single pass — the batch form fault-map construction and
    /// round assembly use instead of per-cell trait calls.
    pub fn translate_row_p2s(&self, out: &mut Vec<u32>) {
        out.clear();
        out.extend_from_slice(&self.p2s);
    }
}

impl Scrambler for ScramblerLut {
    fn row_bits(&self) -> usize {
        self.row_bits
    }

    #[inline]
    fn system_to_physical(&self, col: usize) -> usize {
        self.s2p[col] as usize
    }

    #[inline]
    fn physical_to_system(&self, pos: usize) -> usize {
        self.p2s[pos] as usize
    }

    #[inline]
    fn tile_bounds(&self, pos: usize) -> (usize, usize) {
        let (lo, hi) = self.bounds[pos];
        (lo as usize, hi as usize)
    }

    fn build_tables(&self) -> (Vec<u32>, Vec<u32>) {
        (self.s2p.clone(), self.p2s.clone())
    }
}

/// The trivial mapping: system column `i` is physical position `i`.
///
/// Useful as a control: with no scrambling, naive adjacent-address tests
/// would find all data-dependent failures, which is the paper's Figure 1
/// baseline intuition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdentityScrambler {
    row_bits: usize,
}

impl IdentityScrambler {
    /// Creates an identity mapping over `row_bits` columns.
    pub fn new(row_bits: usize) -> Self {
        IdentityScrambler { row_bits }
    }
}

impl Scrambler for IdentityScrambler {
    fn row_bits(&self) -> usize {
        self.row_bits
    }

    fn system_to_physical(&self, col: usize) -> usize {
        assert!(col < self.row_bits, "column {col} out of range");
        col
    }

    fn physical_to_system(&self, pos: usize) -> usize {
        assert!(pos < self.row_bits, "position {pos} out of range");
        pos
    }
}

/// A tile-structured scrambler.
///
/// The row's system offsets are split into *groups* of `span` consecutive
/// offsets. Within a group there are `stride` tiles; tile `r` holds the
/// offsets congruent to `r (mod stride)`, in the order given by `walk`:
/// physical position `j` of the tile holds system offset
/// `group·span + walk[j]·stride + r`.
///
/// Any trailing partial group (`row_bits mod span` columns) maps identity as
/// a single tile — this models edge/spare columns at the end of the array and
/// feeds the paper's §7.3 "limitation" discussion.
///
/// # Examples
///
/// ```
/// use parbor_dram::{Scrambler, TileWalkScrambler, Vendor};
///
/// let s = Vendor::B.scrambler(8192);
/// // Vendor B's observable neighbor distances are {±1, ±64}.
/// assert_eq!(s.distance_set(), vec![-64, -1, 1, 64]);
/// ```
#[derive(Debug, Clone)]
pub struct TileWalkScrambler {
    row_bits: usize,
    span: usize,
    stride: usize,
    tile_len: usize,
    segment_len: usize,
    walk: Vec<usize>,
    inv_walk: Vec<usize>,
}

impl TileWalkScrambler {
    /// Builds a tile-walk scrambler whose tiles are whole walks.
    ///
    /// `walk` must be a permutation of `0..span/stride`; `stride` must divide
    /// `span`; `span` must not exceed `row_bits`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] when the walk is not a valid
    /// permutation or the dimensions are inconsistent.
    pub fn new(
        row_bits: usize,
        span: usize,
        stride: usize,
        walk: Vec<usize>,
    ) -> Result<Self, DramError> {
        let segment_len = walk.len();
        Self::with_segments(row_bits, span, stride, walk, segment_len)
    }

    /// Builds a tile-walk scrambler whose walk is split into physical
    /// *segments* of `segment_len` positions: physical adjacency (bitline
    /// coupling) exists only within a segment. Real chips produce such
    /// structure when burst pairs land in small sense-amplifier islands
    /// (the paper's Figure 5 shows 2-bit swapped groups).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] when the walk is invalid or
    /// `segment_len` does not divide the walk length.
    pub fn with_segments(
        row_bits: usize,
        span: usize,
        stride: usize,
        walk: Vec<usize>,
        segment_len: usize,
    ) -> Result<Self, DramError> {
        if span == 0 || stride == 0 || !span.is_multiple_of(stride) {
            return Err(DramError::InvalidConfig(format!(
                "span {span} must be a nonzero multiple of stride {stride}"
            )));
        }
        if span > row_bits {
            return Err(DramError::InvalidConfig(format!(
                "span {span} exceeds row width {row_bits}"
            )));
        }
        let tile_len = span / stride;
        if walk.len() != tile_len {
            return Err(DramError::InvalidConfig(format!(
                "walk length {} must equal span/stride = {tile_len}",
                walk.len()
            )));
        }
        if !is_permutation(&walk) {
            return Err(DramError::InvalidConfig(
                "walk must be a permutation of 0..span/stride".into(),
            ));
        }
        if segment_len == 0 || !tile_len.is_multiple_of(segment_len) {
            return Err(DramError::InvalidConfig(format!(
                "segment length {segment_len} must divide walk length {tile_len}"
            )));
        }
        let mut inv_walk = vec![0usize; tile_len];
        for (j, &m) in walk.iter().enumerate() {
            inv_walk[m] = j;
        }
        Ok(TileWalkScrambler {
            row_bits,
            span,
            stride,
            tile_len,
            segment_len,
            walk,
            inv_walk,
        })
    }

    /// Start of the trailing identity-mapped region (equals `row_bits` when
    /// `span` divides the row width exactly).
    fn trailing_start(&self) -> usize {
        (self.row_bits / self.span) * self.span
    }
}

impl Scrambler for TileWalkScrambler {
    fn row_bits(&self) -> usize {
        self.row_bits
    }

    fn system_to_physical(&self, col: usize) -> usize {
        assert!(col < self.row_bits, "column {col} out of range");
        if col >= self.trailing_start() {
            return col;
        }
        let group = col / self.span;
        let rem = col % self.span;
        let residue = rem % self.stride;
        let m = rem / self.stride;
        group * self.span + residue * self.tile_len + self.inv_walk[m]
    }

    fn physical_to_system(&self, pos: usize) -> usize {
        assert!(pos < self.row_bits, "position {pos} out of range");
        if pos >= self.trailing_start() {
            return pos;
        }
        let group = pos / self.span;
        let rem = pos % self.span;
        let residue = rem / self.tile_len;
        let j = rem % self.tile_len;
        group * self.span + self.walk[j] * self.stride + residue
    }

    fn tile_bounds(&self, pos: usize) -> (usize, usize) {
        let trailing = self.trailing_start();
        if pos >= trailing {
            return (trailing, self.row_bits);
        }
        let seg_start = (pos / self.segment_len) * self.segment_len;
        (seg_start, seg_start + self.segment_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vendor::Vendor;

    fn assert_bijective(s: &dyn Scrambler) {
        let n = s.row_bits();
        let mut seen = vec![false; n];
        for col in 0..n {
            let pos = s.system_to_physical(col);
            assert!(pos < n);
            assert!(!seen[pos], "physical position {pos} hit twice");
            seen[pos] = true;
            assert_eq!(s.physical_to_system(pos), col, "inverse broken at {col}");
        }
    }

    #[test]
    fn identity_is_bijective() {
        assert_bijective(&IdentityScrambler::new(257));
    }

    #[test]
    fn identity_distance_set_is_unit() {
        let s = IdentityScrambler::new(64);
        assert_eq!(s.distance_set(), vec![-1, 1]);
    }

    #[test]
    fn vendor_scramblers_are_bijective() {
        for v in [Vendor::A, Vendor::B, Vendor::C] {
            assert_bijective(&*v.scrambler(8192));
        }
    }

    #[test]
    fn vendor_a_distances_match_paper() {
        let s = Vendor::A.scrambler(8192);
        assert_eq!(s.distance_set(), vec![-48, -16, -8, 8, 16, 48]);
    }

    #[test]
    fn vendor_b_distances_match_paper() {
        let s = Vendor::B.scrambler(8192);
        assert_eq!(s.distance_set(), vec![-64, -1, 1, 64]);
    }

    #[test]
    fn vendor_c_distances_match_paper() {
        let s = Vendor::C.scrambler(8192);
        assert_eq!(s.distance_set(), vec![-49, -33, -16, 16, 33, 49]);
    }

    #[test]
    fn tile_edges_have_one_neighbor() {
        let s = Vendor::B.scrambler(512);
        // Physical position 0 is the start of the first tile.
        let col = s.physical_to_system(0);
        let (l, _r) = s.physical_neighbors(col);
        assert!(l.is_none());
    }

    #[test]
    fn neighbors_are_symmetric() {
        let s = Vendor::A.scrambler(2048);
        for col in 0..2048 {
            let (l, r) = s.physical_neighbors(col);
            if let Some(l) = l {
                let (_, lr) = s.physical_neighbors(l);
                assert_eq!(lr, Some(col), "left neighbor of {col} not symmetric");
            }
            if let Some(r) = r {
                let (rl, _) = s.physical_neighbors(r);
                assert_eq!(rl, Some(col), "right neighbor of {col} not symmetric");
            }
        }
    }

    #[test]
    fn build_tables_round_trip() {
        let s = Vendor::C.scrambler(512);
        let (s2p, p2s) = s.build_tables();
        for col in 0..512usize {
            assert_eq!(p2s[s2p[col] as usize] as usize, col);
        }
    }

    /// The satellite oracle: over every vendor family and a full row, the
    /// compiled LUT must agree with the arithmetic reference on every query
    /// the trait exposes — both translation directions, tile bounds,
    /// neighbors, and the derived distance set.
    #[test]
    fn lut_matches_reference_exhaustively_for_every_vendor() {
        for v in [Vendor::A, Vendor::B, Vendor::C] {
            let reference = v.scrambler(8192);
            let lut = ScramblerLut::build(reference.as_ref());
            assert_eq!(lut.row_bits(), reference.row_bits());
            for col in 0..reference.row_bits() {
                assert_eq!(
                    lut.system_to_physical(col),
                    reference.system_to_physical(col),
                    "{v:?} s2p diverges at column {col}"
                );
                assert_eq!(
                    lut.physical_to_system(col),
                    reference.physical_to_system(col),
                    "{v:?} p2s diverges at position {col}"
                );
                assert_eq!(
                    lut.tile_bounds(col),
                    reference.tile_bounds(col),
                    "{v:?} tile bounds diverge at position {col}"
                );
                assert_eq!(
                    lut.physical_neighbors(col),
                    reference.physical_neighbors(col),
                    "{v:?} neighbors diverge at column {col}"
                );
            }
            assert_eq!(lut.distance_set(), reference.distance_set());
        }
    }

    #[test]
    fn lut_handles_trailing_identity_region() {
        // 100 columns with span 64 leaves a 36-column identity tail.
        let s = TileWalkScrambler::new(100, 64, 8, (0..8).rev().collect()).unwrap();
        let lut = ScramblerLut::build(&s);
        for col in 0..100 {
            assert_eq!(lut.system_to_physical(col), s.system_to_physical(col));
            assert_eq!(lut.physical_to_system(col), s.physical_to_system(col));
            assert_eq!(lut.tile_bounds(col), s.tile_bounds(col));
        }
    }

    #[test]
    fn lut_batch_translation_matches_tables() {
        let s = Vendor::A.scrambler(1024);
        let lut = ScramblerLut::build(s.as_ref());
        let mut out = Vec::new();
        lut.translate_row_p2s(&mut out);
        assert_eq!(out.as_slice(), lut.p2s_table());
        for (pos, &col) in out.iter().enumerate() {
            assert_eq!(col as usize, s.physical_to_system(pos));
        }
    }

    #[test]
    fn lut_build_tables_round_trips() {
        let s = Vendor::B.scrambler(512);
        let lut = ScramblerLut::build(s.as_ref());
        assert_eq!(lut.build_tables(), s.build_tables());
        // A LUT of a LUT is the same LUT.
        let relut = ScramblerLut::build(&lut);
        assert_eq!(relut.s2p_table(), lut.s2p_table());
        assert_eq!(relut.p2s_table(), lut.p2s_table());
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn lut_rejects_contract_violations() {
        /// Deliberately broken: maps everything to position 0.
        #[derive(Debug)]
        struct Collapsing;
        impl Scrambler for Collapsing {
            fn row_bits(&self) -> usize {
                8
            }
            fn system_to_physical(&self, _col: usize) -> usize {
                0
            }
            fn physical_to_system(&self, _pos: usize) -> usize {
                0
            }
        }
        ScramblerLut::build(&Collapsing);
    }

    #[test]
    fn new_rejects_bad_walks() {
        // Not a permutation.
        assert!(TileWalkScrambler::new(64, 4, 1, vec![0, 0, 1, 2]).is_err());
        // Wrong length.
        assert!(TileWalkScrambler::new(64, 4, 1, vec![0, 1, 2]).is_err());
        // Stride does not divide span.
        assert!(TileWalkScrambler::new(64, 5, 2, vec![0, 1]).is_err());
        // Span larger than row.
        assert!(TileWalkScrambler::new(4, 8, 1, (0..8).collect()).is_err());
    }
}
