//! Data patterns used by memory tests.
//!
//! Manufacturers and system-level testers probe DRAM with families of data
//! backgrounds (paper §2.3, §5.2.1). Because DRAM mixes true and anti cells,
//! every pattern is paired with its **inverse** so both cell polarities get
//! charged at least once (paper footnote 3).

use serde::{Deserialize, Serialize};

use crate::hash::{hash_words, mix64};
use parbor_hal::{RoundArena, RowBits};

/// A row-wise data pattern, materializable for any row index.
///
/// # Examples
///
/// ```
/// use parbor_dram::PatternKind;
///
/// let p = PatternKind::Checkerboard;
/// let row0 = p.row_bits(0, 8);
/// let row1 = p.row_bits(1, 8);
/// // Checkerboard alternates by both column and row.
/// assert_eq!(row0.get(0), !row1.get(0));
/// assert_eq!(row0.get(0), !row0.get(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternKind {
    /// Every bit set to the given value (all-0s / all-1s).
    Solid(bool),
    /// Columns alternate in blocks of `period` (period 2 ⇒ 0101…).
    ColStripe {
        /// Stripe width in columns.
        period: u32,
    },
    /// Rows alternate solid values.
    RowStripe,
    /// Checkerboard in both row and column.
    Checkerboard,
    /// Pseudo-random data derived from a seed, distinct per row.
    Random {
        /// Seed of the pseudo-random stream.
        seed: u64,
    },
    /// Walking-1: bit set at every position ≡ `phase (mod period)` against
    /// a zero background (the classic walking memory test).
    Walking {
        /// Spacing of the walked bits.
        period: u32,
        /// Offset of the walked bits within each period.
        phase: u32,
    },
}

impl PatternKind {
    /// Materializes the pattern for one row of the given width.
    pub fn row_bits(&self, row: u32, width: usize) -> RowBits {
        self.row_bits_in(row, width, &RoundArena::new())
    }

    /// [`row_bits`](PatternKind::row_bits) drawing the backing buffer from
    /// the arena pool. Bit-identical to the fresh-allocation form.
    pub fn row_bits_in(&self, row: u32, width: usize, arena: &RoundArena) -> RowBits {
        match *self {
            PatternKind::Solid(v) => arena.row(width, v),
            PatternKind::ColStripe { period } => {
                // Odd stripes are solid runs — fill them with word-masked
                // ranges instead of testing 8 K bits one by one.
                let p = period.max(1) as usize;
                let mut bits = arena.zeros(width);
                let mut lo = p;
                while lo < width {
                    bits.set_range(lo, (lo + p).min(width), true);
                    lo += 2 * p;
                }
                bits
            }
            PatternKind::RowStripe => arena.row(width, !row.is_multiple_of(2)),
            PatternKind::Checkerboard => {
                // Alternating bits are a constant word pattern.
                let word = if row % 2 == 1 {
                    0x5555_5555_5555_5555u64
                } else {
                    0xAAAA_AAAA_AAAA_AAAAu64
                };
                RowBits::from_word_fn_in(arena.take_words(), width, |_| word)
            }
            PatternKind::Random { seed } => {
                RowBits::from_word_fn_in(arena.take_words(), width, |w| {
                    mix64(hash_words(&[seed, u64::from(row), w as u64]))
                })
            }
            PatternKind::Walking { period, phase } => {
                // One set bit per period — touch only those bits.
                let p = period.max(1) as usize;
                let mut bits = arena.zeros(width);
                let mut i = phase as usize % p;
                while i < width {
                    bits.set(i, true);
                    i += p;
                }
                bits
            }
        }
    }

    /// The logical inverse of this pattern (bitwise NOT of every row).
    pub fn inverse(&self) -> InversePattern {
        InversePattern(self.clone())
    }
}

/// The bitwise inverse of a [`PatternKind`], produced by
/// [`PatternKind::inverse`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InversePattern(PatternKind);

impl InversePattern {
    /// Materializes the inverted pattern for one row.
    pub fn row_bits(&self, row: u32, width: usize) -> RowBits {
        self.0.row_bits(row, width).inverted()
    }

    /// [`row_bits`](InversePattern::row_bits) drawing the backing buffer
    /// from the arena pool.
    pub fn row_bits_in(&self, row: u32, width: usize, arena: &RoundArena) -> RowBits {
        let mut bits = self.0.row_bits_in(row, width, arena);
        bits.invert();
        bits
    }
}

/// The standard victim-discovery pattern set: a family of diverse patterns,
/// each paired with its inverse — 10 rounds total, matching the paper's
/// "initial tests for locating sample victim bits (10)".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternSet {
    patterns: Vec<PatternKind>,
}

impl PatternSet {
    /// The paper's 5-pattern discovery family (each later run with its
    /// inverse for 10 rounds total).
    pub fn discovery(seed: u64) -> Self {
        PatternSet {
            patterns: vec![
                PatternKind::Solid(false),
                PatternKind::ColStripe { period: 1 },
                PatternKind::RowStripe,
                PatternKind::Checkerboard,
                PatternKind::Random { seed },
            ],
        }
    }

    /// A set of `n` distinct random patterns (used by the equal-budget
    /// random-test baseline of Fig 12/13).
    pub fn random(seed: u64, n: usize) -> Self {
        PatternSet {
            patterns: (0..n)
                .map(|i| PatternKind::Random {
                    seed: mix64(seed ^ (i as u64).wrapping_mul(0x9E37)),
                })
                .collect(),
        }
    }

    /// The patterns in the set (inverses not included; callers materialize
    /// them per round).
    pub fn patterns(&self) -> &[PatternKind] {
        &self.patterns
    }

    /// Number of test rounds the set implies: one per pattern and one per
    /// inverse.
    pub fn round_count(&self) -> usize {
        self.patterns.len() * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solid_patterns() {
        assert_eq!(PatternKind::Solid(true).row_bits(3, 64).count_ones(), 64);
        assert_eq!(PatternKind::Solid(false).row_bits(3, 64).count_ones(), 0);
    }

    #[test]
    fn col_stripe_period() {
        let r = PatternKind::ColStripe { period: 4 }.row_bits(0, 16);
        for i in 0..16 {
            assert_eq!(r.get(i), (i / 4) % 2 == 1, "bit {i}");
        }
    }

    #[test]
    fn word_level_patterns_match_per_bit_predicates() {
        // The range-fill / word-constant constructions must agree with the
        // defining per-bit predicates at awkward widths and periods.
        for width in [1usize, 63, 64, 65, 130, 8192] {
            for period in [1u32, 2, 3, 64, 100] {
                let p = period as usize;
                let stripe = PatternKind::ColStripe { period }.row_bits(0, width);
                assert_eq!(stripe, RowBits::from_fn(width, |i| (i / p) % 2 == 1));
                for phase in [0u32, 1, 63] {
                    let walk = PatternKind::Walking { period, phase }.row_bits(0, width);
                    assert_eq!(
                        walk,
                        RowBits::from_fn(width, |i| i % p == phase as usize % p),
                        "width {width} period {period} phase {phase}"
                    );
                }
            }
            for row in [0u32, 1] {
                let board = PatternKind::Checkerboard.row_bits(row, width);
                let flip = row % 2 == 1;
                assert_eq!(board, RowBits::from_fn(width, |i| (i % 2 == 1) != flip));
            }
        }
    }

    #[test]
    fn row_stripe_alternates_by_row() {
        let p = PatternKind::RowStripe;
        assert_eq!(p.row_bits(0, 8).count_ones(), 0);
        assert_eq!(p.row_bits(1, 8).count_ones(), 8);
    }

    #[test]
    fn random_is_deterministic_and_row_dependent() {
        let p = PatternKind::Random { seed: 5 };
        assert_eq!(p.row_bits(0, 256), p.row_bits(0, 256));
        assert_ne!(p.row_bits(0, 256), p.row_bits(1, 256));
    }

    #[test]
    fn random_is_balanced() {
        let ones = PatternKind::Random { seed: 5 }
            .row_bits(0, 8192)
            .count_ones();
        assert!((3600..4600).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn inverse_inverts() {
        let p = PatternKind::Checkerboard;
        let inv = p.inverse();
        let a = p.row_bits(2, 64);
        let b = inv.row_bits(2, 64);
        for i in 0..64 {
            assert_eq!(a.get(i), !b.get(i));
        }
    }

    #[test]
    fn walking_pattern_sets_one_bit_per_period() {
        let r = PatternKind::Walking {
            period: 8,
            phase: 3,
        }
        .row_bits(0, 64);
        assert_eq!(r.count_ones(), 8);
        for i in 0..64 {
            assert_eq!(r.get(i), i % 8 == 3, "bit {i}");
        }
    }

    #[test]
    fn discovery_set_is_ten_rounds() {
        assert_eq!(PatternSet::discovery(1).round_count(), 10);
    }

    #[test]
    fn random_set_has_distinct_patterns() {
        let s = PatternSet::random(7, 8);
        let mut seen = std::collections::HashSet::new();
        for p in s.patterns() {
            assert!(seen.insert(p.clone()), "duplicate pattern {p:?}");
        }
    }
}
