//! SECDED ECC (Hamming 72,64): the standard server-DRAM protection layer.
//!
//! System-level detection matters even on ECC machines: SECDED corrects one
//! flipped bit per 64-bit word, so sparse data-dependent failures hide under
//! ECC until a second failure (or a soft error) lands in the same word —
//! exactly the "escape the manufacturing tests" risk the paper's intro
//! cites. This module implements the code and the word-level analysis of a
//! failure set: how many PARBOR-found failing bits would ECC absorb, and
//! how many words already hold ≥ 2 failures (uncorrectable).

use serde::{Deserialize, Serialize};

/// Number of data bits per ECC word.
pub const DATA_BITS: u32 = 64;
/// Number of check bits (7 Hamming + 1 overall parity).
pub const CHECK_BITS: u32 = 8;

/// A 72-bit SECDED codeword: 64 data bits plus 8 check bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Codeword {
    /// The data bits.
    pub data: u64,
    /// The check bits (7 Hamming syndromes + overall parity in bit 7).
    pub check: u8,
}

/// Outcome of decoding a possibly corrupted codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Decoded {
    /// No error detected.
    Clean(u64),
    /// A single-bit error was corrected (data or check bit).
    Corrected(u64),
    /// A double-bit error was detected; the data cannot be trusted.
    Uncorrectable,
}

/// Hamming parity-check masks: check bit `i` covers the data bits whose
/// (1-based, check-position-skipping) Hamming index has bit `i` set.
/// Computed once per process.
fn hamming_masks() -> [u64; 7] {
    let mut masks = [0u64; 7];
    // Map each of the 64 data bits to its Hamming code position: positions
    // 1.. skipping powers of two (which hold check bits).
    let mut position = 1u32;
    for data_bit in 0..64 {
        while position.is_power_of_two() {
            position += 1;
        }
        for (i, mask) in masks.iter_mut().enumerate() {
            if position & (1 << i) != 0 {
                *mask |= 1u64 << data_bit;
            }
        }
        position += 1;
    }
    masks
}

/// Hamming position of data bit `i` (inverse of the mapping in
/// [`hamming_masks`]).
fn data_bit_position(i: u32) -> u32 {
    let mut position = 1u32;
    let mut seen = 0;
    loop {
        while position.is_power_of_two() {
            position += 1;
        }
        if seen == i {
            return position;
        }
        seen += 1;
        position += 1;
    }
}

/// Encodes 64 data bits into a SECDED codeword.
///
/// # Examples
///
/// ```
/// use parbor_dram::ecc::{decode, encode, Decoded};
///
/// let word = encode(0xDEAD_BEEF_0123_4567);
/// assert_eq!(decode(word), Decoded::Clean(0xDEAD_BEEF_0123_4567));
/// ```
pub fn encode(data: u64) -> Codeword {
    let masks = hamming_masks();
    let mut check = 0u8;
    for (i, mask) in masks.iter().enumerate() {
        if (data & mask).count_ones() % 2 == 1 {
            check |= 1 << i;
        }
    }
    // Overall parity over data + the 7 Hamming bits.
    let overall = (data.count_ones() + u32::from(check).count_ones()) % 2;
    check |= (overall as u8) << 7;
    Codeword { data, check }
}

/// Decodes a codeword, correcting a single flipped bit anywhere in the
/// 72 bits and detecting (but not correcting) double flips.
pub fn decode(word: Codeword) -> Decoded {
    let expected = encode(word.data);
    let syndrome = (word.check ^ expected.check) & 0x7F;
    let parity_mismatch = {
        let overall = (word.data.count_ones() + u32::from(word.check & 0x7F).count_ones()) % 2;
        (word.check >> 7) != overall as u8
    };
    match (syndrome, parity_mismatch) {
        (0, false) => Decoded::Clean(word.data),
        (0, true) => Decoded::Corrected(word.data), // overall-parity bit flipped
        (_, false) => Decoded::Uncorrectable,       // two flips: syndrome w/o parity
        (s, true) => {
            // Single flip at Hamming position `s`: either a check bit
            // (power of two) or a data bit.
            if u32::from(s).is_power_of_two() {
                return Decoded::Corrected(word.data); // check bit flipped
            }
            for bit in 0..64 {
                if data_bit_position(bit) == u32::from(s) {
                    return Decoded::Corrected(word.data ^ (1u64 << bit));
                }
            }
            // Syndrome pointing outside the code: multi-bit corruption.
            Decoded::Uncorrectable
        }
    }
}

/// Word-level analysis of a failing-bit set under SECDED.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EccAnalysis {
    /// Words containing exactly one failing bit (ECC absorbs them — and
    /// hides them from naive system-level scans through the ECC path).
    pub correctable_words: u64,
    /// Words containing two or more failing bits (uncorrectable: data loss
    /// the moment the worst-case content lands).
    pub uncorrectable_words: u64,
    /// Total failing bits analyzed.
    pub failing_bits: u64,
}

impl EccAnalysis {
    /// Groups failing bit columns (within one row) into 64-bit ECC words
    /// and counts correctable vs uncorrectable words.
    pub fn of_row_failures(failing_cols: &[u32]) -> Self {
        use std::collections::HashMap;
        let mut words: HashMap<u32, u64> = HashMap::new();
        for &col in failing_cols {
            *words.entry(col / DATA_BITS).or_insert(0) += 1;
        }
        let mut analysis = EccAnalysis {
            failing_bits: failing_cols.len() as u64,
            ..Default::default()
        };
        for &count in words.values() {
            if count == 1 {
                analysis.correctable_words += 1;
            } else {
                analysis.uncorrectable_words += 1;
            }
        }
        analysis
    }

    /// Merges another analysis (e.g. across rows/chips).
    pub fn merge(&mut self, other: &EccAnalysis) {
        self.correctable_words += other.correctable_words;
        self.uncorrectable_words += other.uncorrectable_words;
        self.failing_bits += other.failing_bits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_round_trip() {
        for data in [0u64, u64::MAX, 0xDEAD_BEEF, 0x0123_4567_89AB_CDEF] {
            assert_eq!(decode(encode(data)), Decoded::Clean(data));
        }
    }

    #[test]
    fn every_single_data_flip_is_corrected() {
        let data = 0xA5A5_5A5A_0F0F_F0F0u64;
        let word = encode(data);
        for bit in 0..64 {
            let corrupted = Codeword {
                data: word.data ^ (1u64 << bit),
                check: word.check,
            };
            assert_eq!(
                decode(corrupted),
                Decoded::Corrected(data),
                "flip at data bit {bit}"
            );
        }
    }

    #[test]
    fn every_single_check_flip_is_corrected() {
        let data = 0x1234_5678_9ABC_DEF0u64;
        let word = encode(data);
        for bit in 0..8 {
            let corrupted = Codeword {
                data: word.data,
                check: word.check ^ (1 << bit),
            };
            assert_eq!(
                decode(corrupted),
                Decoded::Corrected(data),
                "flip at check bit {bit}"
            );
        }
    }

    #[test]
    fn double_data_flips_are_detected() {
        let data = 0xFFFF_0000_FFFF_0000u64;
        let word = encode(data);
        for (a, b) in [(0u32, 1u32), (5, 40), (62, 63), (13, 27)] {
            let corrupted = Codeword {
                data: word.data ^ (1u64 << a) ^ (1u64 << b),
                check: word.check,
            };
            assert_eq!(
                decode(corrupted),
                Decoded::Uncorrectable,
                "flips at {a},{b}"
            );
        }
    }

    #[test]
    fn data_plus_check_flip_is_detected() {
        let data = 7u64;
        let word = encode(data);
        let corrupted = Codeword {
            data: word.data ^ 2,
            check: word.check ^ 1,
        };
        assert_eq!(decode(corrupted), Decoded::Uncorrectable);
    }

    #[test]
    fn analysis_groups_by_word() {
        // Columns 3 and 70 sit in different words; 130 and 150 share one.
        let analysis = EccAnalysis::of_row_failures(&[3, 70, 130, 150]);
        assert_eq!(analysis.failing_bits, 4);
        assert_eq!(analysis.correctable_words, 2);
        assert_eq!(analysis.uncorrectable_words, 1);
    }

    #[test]
    fn analysis_merges() {
        let mut a = EccAnalysis::of_row_failures(&[0]);
        a.merge(&EccAnalysis::of_row_failures(&[64, 65]));
        assert_eq!(a.correctable_words, 1);
        assert_eq!(a.uncorrectable_words, 1);
        assert_eq!(a.failing_bits, 3);
    }
}
