//! # parbor-dram — a DRAM device simulator with address scrambling
//!
//! This crate is the hardware substrate for the PARBOR reproduction
//! (Khan, Lee, Mutlu — *PARBOR: An Efficient System-Level Technique to Detect
//! Data-Dependent Failures in DRAM*, DSN 2016). The paper's evaluation uses
//! 144 real DRAM chips driven from an FPGA; this crate provides the closest
//! synthetic equivalent:
//!
//! * a **geometry** model (chips → banks → rows → columns),
//! * vendor-style **address scramblers** that remap system bit addresses to
//!   physical cell positions (the thing PARBOR reverse-engineers),
//! * a per-cell **fault model** with retention times, bitline-coupling
//!   penalties, true-/anti-cell polarity, and random-failure noise (weak
//!   cells, marginal cells, VRT, soft errors),
//! * a **test port** — write a row, wait one refresh interval, read it back —
//!   which is exactly the primitive a system-level tester has.
//!
//! The simulator is fully deterministic given a seed: every per-cell property
//! is a pure hash of `(seed, bank, row, physical column)`, and per-round noise
//! is a pure hash of the round counter, so experiments are reproducible and
//! no per-cell state needs to be stored.
//!
//! ## Example
//!
//! ```
//! use parbor_dram::{ModuleConfig, Vendor, PatternKind, RowId};
//!
//! # fn main() -> Result<(), parbor_dram::DramError> {
//! // A small module from "vendor A" (neighbor distances {±8, ±16, ±48}).
//! let mut module = ModuleConfig::new(Vendor::A)
//!     .geometry(parbor_dram::ChipGeometry::tiny())
//!     .seed(7)
//!     .build()?;
//!
//! // Write a column-stripe pattern into row 0 of every chip, wait one
//! // refresh interval, and read it back; flipped bits are reported.
//! let rows: Vec<RowId> = vec![RowId::new(0, 0)];
//! let flips = module.test_round_uniform(&rows, &PatternKind::ColStripe { period: 2 })?;
//! println!("observed {} bit flips", flips.len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod burst;
mod cell;
mod census;
mod chip;
mod config;
pub mod ecc;
mod hash;
mod mechanism;
mod module;
mod noise;
mod pattern;
mod profiling;
mod remap;
mod retention;
mod scrambler;
mod stencil;
mod vendor;
mod walk;

// The shared data vocabulary now lives in `parbor-hal` and is re-exported
// here so geometry-level users keep one import path. The *port and engine*
// types (`TestPort`, `RowWrite`, `Flip`, `BitFlip`, `RoundPlan`,
// `RoundExecutor`, `ParallelMode`, `KernelMode`) are deliberately NOT
// re-exported: backends are interchangeable only if everyone names the
// interface by its own crate, so importing those from `parbor_dram` is a
// compile error by design.
pub use parbor_hal::{BitAddr, ChipGeometry, DramError, RowBits, RowId};

pub use cell::{CellClass, CellFault, CellProfile, CellRef, FaultKind, FaultRates, RowFaultMap};
pub use census::CellCensus;
pub use chip::{DramChip, DEFAULT_EVAL_CACHE_CAPACITY, DEFAULT_FAULT_MAP_CAPACITY};
pub use config::{Celsius, ModuleConfig, ModuleSpec, Seconds};
pub use mechanism::{oracle_cells, CouplingMechanism};
pub use module::{DramModule, ModuleId};
pub use noise::NoiseModel;
pub use pattern::{PatternKind, PatternSet};
pub use profiling::{RetentionProfile, RetentionProfiler};
pub use remap::RemapTable;
pub use retention::RetentionModel;
pub use scrambler::{IdentityScrambler, Scrambler, ScramblerLut, TileWalkScrambler};
pub use stencil::CouplingStencil;
pub use vendor::Vendor;
pub use walk::{hamiltonian_walk, walk_distance_set, WalkError};
