//! End-to-end orchestrator tests: multi-job runs, halt-and-resume
//! determinism, and journal fault injection at the fleet level.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use parbor_core::{ParborConfig, ScanMachine};
use parbor_dram::{ChipGeometry, ModuleSpec, Vendor};
use parbor_fleet::{Fleet, FleetConfig, ProfileStore, ScanJob};
use parbor_obs::{metrics, InMemoryRecorder, RecorderHandle};

fn temp_root(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "parbor-fleet-orch-{}-{tag}-{n}",
        std::process::id()
    ));
    fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn small_spec(vendor: Vendor, seed: u64) -> ModuleSpec {
    ModuleSpec {
        chips: 1,
        geometry: ChipGeometry::new(1, 48, 8192).expect("geometry"),
        seed,
        ..ModuleSpec::new(vendor)
    }
}

fn sample_jobs() -> Vec<ScanJob> {
    vec![
        ScanJob::new("a0", small_spec(Vendor::A, 11)),
        ScanJob::new("b0", small_spec(Vendor::B, 22)),
        ScanJob::new("c0", small_spec(Vendor::C, 33)),
    ]
}

/// Every file under `root`, as sorted (relative path, contents) pairs.
fn dir_snapshot(root: &Path) -> Vec<(String, Vec<u8>)> {
    fn walk(dir: &Path, root: &Path, out: &mut Vec<(String, Vec<u8>)>) {
        for entry in fs::read_dir(dir).expect("read_dir") {
            let path = entry.expect("entry").path();
            if path.is_dir() {
                walk(&path, root, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("under root")
                    .to_string_lossy()
                    .into_owned();
                out.push((rel, fs::read(&path).expect("read file")));
            }
        }
    }
    let mut out = Vec::new();
    walk(root, root, &mut out);
    out.sort();
    out
}

#[test]
fn fleet_completes_jobs_and_matches_direct_scan() {
    let root = temp_root("complete");
    let fleet = Fleet::new(&root, FleetConfig::default()).expect("fleet");
    let report = fleet.run(sample_jobs()).expect("run");
    assert!(report.is_clean(), "unexpected failures: {report:?}");
    assert_eq!(report.completed(), 3);
    assert_eq!(
        report
            .jobs
            .iter()
            .map(|j| j.name.as_str())
            .collect::<Vec<_>>(),
        vec!["a0", "b0", "c0"],
        "reports sorted by name"
    );

    // The stored profile must equal a direct single-machine scan.
    let mut machine = ScanMachine::new(ParborConfig::default());
    let mut module = small_spec(Vendor::B, 22).build().expect("module");
    let expected = machine
        .run_to_completion(&mut module)
        .expect("direct scan")
        .clone();
    let store = ProfileStore::open(fleet.store_dir()).expect("store");
    let stored = store.get("b0").expect("get b0");
    assert!(stored.complete && !stored.recovered);
    assert_eq!(stored.profile, expected);

    // Journals are gone once jobs complete.
    assert_eq!(fleet.status().expect("status").len(), 3);
    assert!(fs::read_dir(fleet.journal_dir())
        .expect("journal dir")
        .next()
        .is_none());

    // A second run over the same jobs touches nothing and skips everything.
    let before = dir_snapshot(&fleet.store_dir());
    let rerun = fleet.run(sample_jobs()).expect("rerun");
    assert_eq!(rerun.completed(), 0);
    assert_eq!(rerun.jobs.iter().filter(|j| j.skipped).count(), 3);
    assert_eq!(dir_snapshot(&fleet.store_dir()), before);

    fs::remove_dir_all(&root).ok();
}

#[test]
fn halted_fleet_resumes_to_byte_identical_store() {
    // Reference: an uninterrupted fleet over the same jobs.
    let clean_root = temp_root("halt-clean");
    let config = FleetConfig {
        workers: 2,
        checkpoint_every: 16,
        ..FleetConfig::default()
    };
    let clean = Fleet::new(&clean_root, config.clone()).expect("fleet");
    assert!(clean.run(sample_jobs()).expect("clean run").is_clean());
    let clean_store = dir_snapshot(&clean.store_dir());

    // Interrupted: the fleet parks itself after two checkpoints.
    let root = temp_root("halt");
    let halted = Fleet::new(
        &root,
        FleetConfig {
            halt_after_checkpoints: Some(2),
            ..config.clone()
        },
    )
    .expect("fleet");
    let report = halted.run(sample_jobs()).expect("halted run");
    assert!(!report.is_clean());
    assert!(report.halted() >= 1);

    // Every unfinished job left a journal behind.
    let statuses = halted.status().expect("status");
    assert!(statuses
        .iter()
        .any(|s| s.state == parbor_fleet::JobState::InFlight));

    // Resume with the hook removed; specs come from the journals alone.
    let rec = InMemoryRecorder::handle();
    let resumer = Fleet::new(&root, config)
        .expect("fleet")
        .with_recorder(RecorderHandle::new(rec.clone()));
    let resumed = resumer.resume().expect("resume");
    assert!(resumed.is_clean(), "resume failed: {resumed:?}");
    assert!(
        resumed.jobs.iter().any(|j| j.resumed),
        "at least one job restarts from a checkpoint"
    );
    assert!(rec.counter(metrics::fleet::RESUMES) >= 1);

    assert_eq!(
        dir_snapshot(&resumer.store_dir()),
        clean_store,
        "resumed store must be byte-identical to the uninterrupted one"
    );
    fs::remove_dir_all(&root).ok();
    fs::remove_dir_all(&clean_root).ok();
}

#[test]
fn torn_journal_tail_recovers_and_still_matches_clean_run() {
    let clean_root = temp_root("tear-clean");
    let config = FleetConfig {
        workers: 1,
        checkpoint_every: 16,
        ..FleetConfig::default()
    };
    let jobs = vec![ScanJob::new("a0", small_spec(Vendor::A, 11))];
    let clean = Fleet::new(&clean_root, config.clone()).expect("fleet");
    assert!(clean.run(jobs.clone()).expect("clean run").is_clean());
    let clean_store = dir_snapshot(&clean.store_dir());

    let root = temp_root("tear");
    let halted = Fleet::new(
        &root,
        FleetConfig {
            halt_after_checkpoints: Some(3),
            ..config.clone()
        },
    )
    .expect("fleet");
    assert!(!halted.run(jobs).expect("halted run").is_clean());

    // Tear the journal tail the way a mid-append crash would: an extra
    // frame header that promises bytes which never hit the disk.
    let wal = halted.journal_dir().join("a0.wal");
    let mut bytes = fs::read(&wal).expect("read wal");
    bytes.extend_from_slice(&4096u64.to_le_bytes());
    bytes.extend_from_slice(&[0x5A; 20]);
    fs::write(&wal, &bytes).expect("tear");

    let rec = InMemoryRecorder::handle();
    let resumer = Fleet::new(&root, config)
        .expect("fleet")
        .with_recorder(RecorderHandle::new(rec.clone()));
    let resumed = resumer.resume().expect("resume");
    assert!(resumed.is_clean(), "resume failed: {resumed:?}");
    assert!(
        rec.counter(metrics::fleet::RECOVERY) >= 1,
        "tail truncation must surface a fleet.recovery event"
    );
    assert_eq!(
        dir_snapshot(&resumer.store_dir()),
        clean_store,
        "recovery must not change the final store"
    );
    fs::remove_dir_all(&root).ok();
    fs::remove_dir_all(&clean_root).ok();
}

#[test]
fn status_surface_tracks_campaign_to_terminal_state() {
    let root = temp_root("status");
    let config = FleetConfig {
        workers: 2,
        checkpoint_every: 16,
        ..FleetConfig::default()
    };
    let fleet = Fleet::new(&root, config.clone()).expect("fleet");
    assert!(fleet.run(sample_jobs()).expect("run").is_clean());

    let status = parbor_obs::FleetStatus::load(fleet.status_path()).expect("status.json");
    assert_eq!(status.state, "done");
    assert!(status.is_terminal());
    assert_eq!(status.jobs_total, 3);
    assert_eq!(status.jobs_done, 3);
    assert_eq!(status.jobs_queued, 0);
    assert_eq!(status.jobs_running, 0);
    assert!(status.rounds_done > 0, "rounds must be counted");
    assert!(
        status.rows_written >= status.rounds_done,
        "every round writes at least one row"
    );
    assert_eq!(status.eta_s, Some(0.0), "finished campaign has zero eta");

    // A halted campaign leaves the surface saying why progress stopped.
    let halted_root = temp_root("status-halt");
    let halted = Fleet::new(
        &halted_root,
        FleetConfig {
            halt_after_checkpoints: Some(2),
            ..config
        },
    )
    .expect("fleet");
    assert!(!halted.run(sample_jobs()).expect("halted run").is_clean());
    let status = parbor_obs::FleetStatus::load(halted.status_path()).expect("status.json");
    assert_eq!(status.state, "halted");
    assert!(status.is_terminal());

    fs::remove_dir_all(&root).ok();
    fs::remove_dir_all(&halted_root).ok();
}

#[test]
fn rejects_duplicate_and_invalid_names() {
    let root = temp_root("names");
    let fleet = Fleet::new(&root, FleetConfig::default()).expect("fleet");
    let dup = vec![
        ScanJob::new("x", small_spec(Vendor::A, 1)),
        ScanJob::new("x", small_spec(Vendor::B, 2)),
    ];
    assert!(fleet.run(dup).is_err());
    let bad = vec![ScanJob::new("../x", small_spec(Vendor::A, 1))];
    assert!(fleet.run(bad).is_err());
    assert!(Fleet::new(
        &root,
        FleetConfig {
            workers: 0,
            ..FleetConfig::default()
        }
    )
    .is_err());
    fs::remove_dir_all(&root).ok();
}
