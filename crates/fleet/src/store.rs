//! The versioned on-disk profile store.
//!
//! Layout under the store root:
//!
//! ```text
//! index.json             {"version":1,"segments":{"<module>":{meta…}}}
//! segments/<name>.jsonl  line 1: segment header (version, module, count)
//!                        line 2: profile summary (failures elided)
//!                        line 3…: one failing cell per line
//! ```
//!
//! Both the index and every segment are written with the temp-file + rename
//! idiom, so readers never observe a half-written file. The index records an
//! FNV-1a content hash per segment; [`ProfileStore::get`] re-hashes the
//! segment on read and, on mismatch, salvages the valid line prefix instead
//! of failing the whole lookup (surfacing a `fleet.recovery` event).
//!
//! The store is deliberately free of timestamps and absolute paths: two
//! independent runs over the same modules produce byte-identical stores,
//! which is what the kill-and-resume determinism checks compare.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use parbor_core::{FailingCell, FailureProfile};
use parbor_obs::{metrics, RecorderHandle};

use crate::hash::{fnv1a64, format_hash};
use crate::FleetError;

/// Current store format version, recorded in `index.json` and every
/// segment header. Bump on any incompatible layout change.
pub const STORE_VERSION: u32 = 1;

/// Index entry for one stored segment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentMeta {
    /// Segment file name, relative to `segments/`.
    pub file: String,
    /// Content hash of the whole segment file (`fnv64:…`).
    pub hash: String,
    /// Number of failing cells the segment records.
    pub failures: usize,
    /// Segment file size in bytes.
    pub bytes: u64,
}

/// First line of every segment file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SegmentHeader {
    segment_version: u32,
    module: String,
    failures: usize,
}

/// `index.json` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct IndexDoc {
    version: u32,
    segments: BTreeMap<String, SegmentMeta>,
}

/// A profile read back from the store.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredProfile {
    /// The stored failure profile (possibly a salvaged prefix, see
    /// [`complete`](StoredProfile::complete)).
    pub profile: FailureProfile,
    /// Whether every failing cell the header promised was readable.
    pub complete: bool,
    /// Whether reading required salvage (checksum mismatch on the segment).
    pub recovered: bool,
}

/// The versioned profile store.
#[derive(Debug)]
pub struct ProfileStore {
    root: PathBuf,
    index: IndexDoc,
    rec: RecorderHandle,
}

impl ProfileStore {
    /// Opens (or initialises) the store rooted at `root`. An existing
    /// `index.json` is loaded and its version checked.
    ///
    /// # Errors
    ///
    /// [`FleetError::Corrupt`] on an unreadable or wrong-version index;
    /// I/O errors.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, FleetError> {
        let root = root.into();
        fs::create_dir_all(root.join("segments"))?;
        let index_path = root.join("index.json");
        let index = if index_path.exists() {
            let text = fs::read_to_string(&index_path)?;
            let doc: IndexDoc = serde_json::from_str(&text).map_err(|e| FleetError::Corrupt {
                path: index_path.clone(),
                detail: format!("index does not parse: {}", e.0),
            })?;
            if doc.version != STORE_VERSION {
                return Err(FleetError::Corrupt {
                    path: index_path,
                    detail: format!(
                        "store version {} unsupported (expected {STORE_VERSION})",
                        doc.version
                    ),
                });
            }
            doc
        } else {
            IndexDoc {
                version: STORE_VERSION,
                segments: BTreeMap::new(),
            }
        };
        Ok(ProfileStore {
            root,
            index,
            rec: RecorderHandle::null(),
        })
    }

    /// Attaches a recorder (for `fleet.recovery` events on salvage reads).
    #[must_use]
    pub fn with_recorder(mut self, rec: RecorderHandle) -> Self {
        self.rec = rec;
        self
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Stored module names, sorted.
    pub fn modules(&self) -> Vec<&str> {
        self.index.segments.keys().map(String::as_str).collect()
    }

    /// Index entry for `name`, if stored.
    pub fn meta(&self, name: &str) -> Option<&SegmentMeta> {
        self.index.segments.get(name)
    }

    /// Whether a profile for `name` is stored.
    pub fn contains(&self, name: &str) -> bool {
        self.index.segments.contains_key(name)
    }

    /// Writes `profile` as the segment for `name` (replacing any previous
    /// one) and updates the index. Both writes are atomic (temp + rename).
    ///
    /// # Errors
    ///
    /// [`FleetError::InvalidConfig`] for names that are not valid file
    /// stems; I/O and serialization errors.
    pub fn put(&mut self, name: &str, profile: &FailureProfile) -> Result<SegmentMeta, FleetError> {
        if !valid_name(name) {
            return Err(FleetError::InvalidConfig(format!(
                "'{name}' is not a valid segment name"
            )));
        }
        let body = render_segment(name, profile)?;
        let file = format!("{name}.jsonl");
        let seg_path = self.root.join("segments").join(&file);
        write_atomic(&seg_path, body.as_bytes())?;
        let meta = SegmentMeta {
            file,
            hash: format_hash(fnv1a64(body.as_bytes())),
            failures: profile.failures.len(),
            bytes: body.len() as u64,
        };
        self.index.segments.insert(name.to_string(), meta.clone());
        self.write_index()?;
        Ok(meta)
    }

    /// Reads the profile for `name` back, verifying the segment's content
    /// hash against the index. On mismatch the valid line prefix is
    /// salvaged: the result is marked [`recovered`](StoredProfile::recovered)
    /// (and [`complete`](StoredProfile::complete) only if every promised
    /// cell survived), and a `fleet.recovery` counter increment is emitted.
    ///
    /// # Errors
    ///
    /// [`FleetError::InvalidConfig`] for unknown modules;
    /// [`FleetError::Corrupt`] when even the header/summary lines are
    /// unreadable; I/O errors.
    pub fn get(&self, name: &str) -> Result<StoredProfile, FleetError> {
        let meta = self.meta(name).ok_or_else(|| {
            FleetError::InvalidConfig(format!("module '{name}' not in store index"))
        })?;
        let seg_path = self.root.join("segments").join(&meta.file);
        let bytes = fs::read(&seg_path)?;
        let intact = format_hash(fnv1a64(&bytes)) == meta.hash;
        let text = String::from_utf8_lossy(&bytes);
        let parsed = parse_segment(&seg_path, name, &text, intact)?;
        if !intact {
            self.rec.incr(metrics::fleet::RECOVERY, 1);
        }
        Ok(StoredProfile {
            profile: parsed.0,
            complete: parsed.1,
            recovered: !intact,
        })
    }

    /// Reads every stored profile, sorted by module name. The snapshot
    /// read path for `parbor-serve`: a daemon loads the whole store once
    /// at startup and compiles it into an immutable in-memory snapshot.
    /// Salvage semantics per module match [`get`](ProfileStore::get).
    ///
    /// # Errors
    ///
    /// Any error [`get`](ProfileStore::get) can return, on the first
    /// failing module.
    pub fn load_all(&self) -> Result<Vec<(String, StoredProfile)>, FleetError> {
        let mut out = Vec::with_capacity(self.index.segments.len());
        for name in self.index.segments.keys() {
            out.push((name.clone(), self.get(name)?));
        }
        Ok(out)
    }

    /// Re-hashes every segment against the index: `(module, intact)` pairs,
    /// sorted by module name. Missing files count as not intact.
    ///
    /// # Errors
    ///
    /// I/O errors other than a missing segment file.
    pub fn verify(&self) -> Result<Vec<(String, bool)>, FleetError> {
        let mut out = Vec::with_capacity(self.index.segments.len());
        for (name, meta) in &self.index.segments {
            let seg_path = self.root.join("segments").join(&meta.file);
            let intact = match fs::read(&seg_path) {
                Ok(bytes) => format_hash(fnv1a64(&bytes)) == meta.hash,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => false,
                Err(e) => return Err(e.into()),
            };
            out.push((name.clone(), intact));
        }
        Ok(out)
    }

    fn write_index(&self) -> Result<(), FleetError> {
        let text = serde_json::to_string_pretty(&self.index)?;
        write_atomic(&self.root.join("index.json"), text.as_bytes())
    }
}

/// Renders the segment body: header line, summary line, one cell per line.
fn render_segment(name: &str, profile: &FailureProfile) -> Result<String, FleetError> {
    let header = SegmentHeader {
        segment_version: STORE_VERSION,
        module: name.to_string(),
        failures: profile.failures.len(),
    };
    let summary = FailureProfile {
        failures: Vec::new(),
        ..profile.clone()
    };
    let mut body = String::new();
    body.push_str(&serde_json::to_string(&header)?);
    body.push('\n');
    body.push_str(&serde_json::to_string(&summary)?);
    body.push('\n');
    for cell in &profile.failures {
        body.push_str(&serde_json::to_string(cell)?);
        body.push('\n');
    }
    Ok(body)
}

/// Parses a segment body. With `strict` (hash verified) any malformed line
/// is corruption; without it, cell parsing stops at the first bad line and
/// the prefix is salvaged. Returns the profile and whether it is complete.
fn parse_segment(
    path: &Path,
    name: &str,
    text: &str,
    strict: bool,
) -> Result<(FailureProfile, bool), FleetError> {
    let corrupt = |detail: String| FleetError::Corrupt {
        path: path.to_path_buf(),
        detail,
    };
    let mut lines = text.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| corrupt("empty segment".into()))?;
    let header: SegmentHeader = serde_json::from_str(header_line)
        .map_err(|e| corrupt(format!("segment header does not parse: {}", e.0)))?;
    if header.segment_version != STORE_VERSION {
        return Err(corrupt(format!(
            "segment version {} unsupported (expected {STORE_VERSION})",
            header.segment_version
        )));
    }
    if header.module != name {
        return Err(corrupt(format!(
            "segment claims module '{}' but is indexed as '{name}'",
            header.module
        )));
    }
    let summary_line = lines
        .next()
        .ok_or_else(|| corrupt("segment has no summary line".into()))?;
    let mut profile: FailureProfile = serde_json::from_str(summary_line)
        .map_err(|e| corrupt(format!("segment summary does not parse: {}", e.0)))?;
    let mut cells: Vec<FailingCell> = Vec::new();
    for line in lines {
        match serde_json::from_str(line) {
            Ok(cell) => cells.push(cell),
            Err(e) if strict => {
                return Err(corrupt(format!(
                    "failing-cell line does not parse: {}",
                    e.0
                )))
            }
            Err(_) => break, // salvage: keep the valid prefix
        }
    }
    if strict && cells.len() != header.failures {
        return Err(corrupt(format!(
            "segment promises {} failures but records {}",
            header.failures,
            cells.len()
        )));
    }
    let complete = cells.len() == header.failures;
    profile.failures = cells;
    Ok((profile, complete))
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// then rename over the destination.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), FleetError> {
    let dir = path.parent().ok_or_else(|| {
        FleetError::InvalidConfig(format!("path {} has no parent", path.display()))
    })?;
    let stem = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("segment");
    let tmp = dir.join(format!(".tmp-{stem}"));
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.')
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbor_obs::InMemoryRecorder;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_root(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "parbor-fleet-store-{}-{tag}-{n}",
            std::process::id()
        ));
        fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    fn sample_profile() -> FailureProfile {
        FailureProfile {
            victim_count: 2,
            discovery_rounds: 10,
            tests_per_level: vec![18, 24],
            recursion_tests: 42,
            distances: vec![-8, 1, 8],
            chipwide_rounds: 6,
            failures: vec![
                FailingCell {
                    unit: 0,
                    bank: 1,
                    row: 7,
                    col: 100,
                    value: true,
                },
                FailingCell {
                    unit: 3,
                    bank: 0,
                    row: 2,
                    col: 5,
                    value: false,
                },
            ],
        }
    }

    #[test]
    fn put_get_roundtrip() {
        let root = temp_root("roundtrip");
        let mut store = ProfileStore::open(&root).expect("open");
        let profile = sample_profile();
        let meta = store.put("A1", &profile).expect("put");
        assert_eq!(meta.failures, 2);
        assert!(meta.hash.starts_with("fnv64:"));
        let got = store.get("A1").expect("get");
        assert_eq!(got.profile, profile);
        assert!(got.complete);
        assert!(!got.recovered);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn reopen_sees_index() {
        let root = temp_root("reopen");
        let profile = sample_profile();
        {
            let mut store = ProfileStore::open(&root).expect("open");
            store.put("B2", &profile).expect("put");
        }
        let store = ProfileStore::open(&root).expect("reopen");
        assert_eq!(store.modules(), vec!["B2"]);
        assert_eq!(store.get("B2").expect("get").profile, profile);
        assert_eq!(store.verify().expect("verify"), vec![("B2".into(), true)]);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn identical_profiles_hash_identically() {
        let root_a = temp_root("hash-a");
        let root_b = temp_root("hash-b");
        let profile = sample_profile();
        let meta_a = ProfileStore::open(&root_a)
            .expect("open")
            .put("M", &profile)
            .expect("put");
        let meta_b = ProfileStore::open(&root_b)
            .expect("open")
            .put("M", &profile)
            .expect("put");
        assert_eq!(meta_a, meta_b);
        fs::remove_dir_all(&root_a).ok();
        fs::remove_dir_all(&root_b).ok();
    }

    #[test]
    fn corrupt_tail_is_salvaged() {
        let root = temp_root("salvage");
        let rec = InMemoryRecorder::handle();
        let mut store = ProfileStore::open(&root)
            .expect("open")
            .with_recorder(RecorderHandle::new(rec.clone()));
        let profile = sample_profile();
        let meta = store.put("C3", &profile).expect("put");
        let seg = root.join("segments").join(&meta.file);
        // Tear the final line mid-record, as a crash during a partial write
        // would.
        let bytes = fs::read(&seg).expect("read segment");
        fs::write(&seg, &bytes[..bytes.len() - 10]).expect("truncate");
        let got = store.get("C3").expect("salvage get");
        assert!(got.recovered);
        assert!(!got.complete);
        assert_eq!(got.profile.failures, profile.failures[..1].to_vec());
        assert_eq!(got.profile.distances, profile.distances);
        assert_eq!(rec.counter(metrics::fleet::RECOVERY), 1);
        assert_eq!(store.verify().expect("verify"), vec![("C3".into(), false)]);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn rejects_bad_names() {
        let root = temp_root("names");
        let mut store = ProfileStore::open(&root).expect("open");
        let profile = sample_profile();
        assert!(store.put("../evil", &profile).is_err());
        assert!(store.put("", &profile).is_err());
        fs::remove_dir_all(&root).ok();
    }
}
