//! The per-job write-ahead journal.
//!
//! One journal file (`journal/<job>.wal`) exists while a job is in flight.
//! It starts with an 8-byte magic, followed by framed records:
//!
//! ```text
//! [u64 LE payload length][u64 LE FNV-1a of payload][payload JSON]
//! ```
//!
//! Appends go through the OS with an explicit flush per record, so the only
//! damage a crash can inflict is a *torn tail*: a partially written final frame.
//! Recovery walks the frames front to back, stops at the first frame whose
//! length or checksum does not hold, truncates the file back to the last
//! valid frame, and surfaces a `fleet.recovery` event — the scan then
//! resumes from the last checkpoint that fully hit the disk.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use parbor_core::ScanState;
use parbor_obs::{metrics, RecorderHandle};

use crate::job::ScanJob;
use crate::FleetError;
use parbor_store::fnv1a64;

/// File magic: identifies a parbor-fleet WAL, version 1.
pub const MAGIC: &[u8; 8] = b"PBFLTWA1";

/// Upper bound on a single record payload (a corrupted length field must
/// not trigger a giant allocation).
const MAX_RECORD_BYTES: u64 = 1 << 30;

/// One journaled event in a job's life.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// The job was claimed; carries everything needed to restart it.
    Start {
        /// The full job description.
        job: ScanJob,
    },
    /// A consistent snapshot of the scan's pipeline state.
    Checkpoint {
        /// The checkpointed state.
        state: ScanState,
    },
    /// The job finished and its profile landed in the store.
    Done {
        /// Content hash of the stored segment (`fnv64:…`).
        profile_hash: String,
    },
}

/// An open journal, positioned for appending.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
}

impl Journal {
    /// Creates a fresh journal at `path` (truncating any existing file) and
    /// writes the magic.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn create(path: impl Into<PathBuf>) -> Result<Self, FleetError> {
        let path = path.into();
        let mut file = File::create(&path)?;
        file.write_all(MAGIC)?;
        file.flush()?;
        Ok(Journal { path, file })
    }

    /// Opens an existing journal for appending (after
    /// [`recover`](Journal::recover) has validated and possibly truncated
    /// it).
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn open_append(path: impl Into<PathBuf>) -> Result<Self, FleetError> {
        let path = path.into();
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(Journal { path, file })
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one framed record and flushes it to the OS. Returns the
    /// bytes written (framing included).
    ///
    /// # Errors
    ///
    /// I/O or serialization errors.
    pub fn append(&mut self, record: &JournalRecord) -> Result<u64, FleetError> {
        let payload = serde_json::to_string(record)?;
        let bytes = payload.as_bytes();
        let mut frame = Vec::with_capacity(16 + bytes.len());
        frame.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        frame.extend_from_slice(&fnv1a64(bytes).to_le_bytes());
        frame.extend_from_slice(bytes);
        self.file.write_all(&frame)?;
        self.file.flush()?;
        Ok(frame.len() as u64)
    }

    /// Forces everything appended so far onto the disk.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn sync(&self) -> Result<(), FleetError> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Reads a journal without modifying it: the valid record prefix, plus
    /// whether an invalid tail follows it.
    ///
    /// # Errors
    ///
    /// [`FleetError::Corrupt`] if the magic is wrong (nothing in the file
    /// can be trusted); I/O errors.
    pub fn read(path: impl AsRef<Path>) -> Result<RecoveredJournal, FleetError> {
        let path = path.as_ref();
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(FleetError::Corrupt {
                path: path.to_path_buf(),
                detail: "bad or missing journal magic".into(),
            });
        }
        let mut records = Vec::new();
        let mut offset = MAGIC.len();
        let mut truncated = false;
        while offset < bytes.len() {
            let rest = &bytes[offset..];
            if rest.len() < 16 {
                truncated = true; // torn frame header
                break;
            }
            let len = u64::from_le_bytes(rest[..8].try_into().expect("8 bytes"));
            let checksum = u64::from_le_bytes(rest[8..16].try_into().expect("8 bytes"));
            if len > MAX_RECORD_BYTES || (rest.len() as u64) < 16 + len {
                truncated = true; // torn or garbage payload length
                break;
            }
            let payload = &rest[16..16 + len as usize];
            if fnv1a64(payload) != checksum {
                truncated = true; // torn or bit-rotted payload
                break;
            }
            let text = std::str::from_utf8(payload).map_err(|_| FleetError::Corrupt {
                path: path.to_path_buf(),
                detail: "checksummed record is not UTF-8".into(),
            })?;
            records.push(serde_json::from_str(text).map_err(|e| FleetError::Corrupt {
                path: path.to_path_buf(),
                detail: format!("checksummed record does not parse: {}", e.0),
            })?);
            offset += 16 + len as usize;
        }
        Ok(RecoveredJournal {
            records,
            truncated,
            valid_bytes: offset as u64,
        })
    }

    /// Reads a journal and, if it has an invalid tail, truncates the file
    /// back to the last valid record and surfaces a `fleet.recovery` event.
    ///
    /// # Errors
    ///
    /// See [`read`](Journal::read).
    pub fn recover(
        path: impl AsRef<Path>,
        rec: &RecorderHandle,
    ) -> Result<RecoveredJournal, FleetError> {
        let path = path.as_ref();
        let recovered = Self::read(path)?;
        if recovered.truncated {
            let file = OpenOptions::new().write(true).open(path)?;
            file.set_len(recovered.valid_bytes)?;
            file.sync_data()?;
            rec.incr(metrics::fleet::RECOVERY, 1);
        }
        Ok(recovered)
    }
}

/// What [`Journal::read`] found.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredJournal {
    /// The valid record prefix, in append order.
    pub records: Vec<JournalRecord>,
    /// Whether an invalid tail followed the valid prefix.
    pub truncated: bool,
    /// File offset just past the last valid record.
    pub valid_bytes: u64,
}

impl RecoveredJournal {
    /// The job description from the `Start` record, if journaled.
    pub fn job(&self) -> Option<&ScanJob> {
        self.records.iter().find_map(|r| match r {
            JournalRecord::Start { job } => Some(job),
            _ => None,
        })
    }

    /// The most recent checkpointed state, if any.
    pub fn last_checkpoint(&self) -> Option<&ScanState> {
        self.records.iter().rev().find_map(|r| match r {
            JournalRecord::Checkpoint { state } => Some(state),
            _ => None,
        })
    }

    /// Whether the job journaled its completion.
    pub fn is_done(&self) -> bool {
        self.records
            .iter()
            .any(|r| matches!(r, JournalRecord::Done { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbor_core::ParborConfig;
    use parbor_dram::{ModuleSpec, Vendor};
    use parbor_obs::InMemoryRecorder;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_wal(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "parbor-fleet-journal-{}-{tag}-{n}.wal",
            std::process::id()
        ))
    }

    fn sample_records() -> Vec<JournalRecord> {
        let job = ScanJob::new("A1", ModuleSpec::new(Vendor::A));
        vec![
            JournalRecord::Start { job },
            JournalRecord::Checkpoint {
                state: ScanState::new(ParborConfig::default()),
            },
            JournalRecord::Done {
                profile_hash: "fnv64:0123456789abcdef".into(),
            },
        ]
    }

    #[test]
    fn append_read_roundtrip() {
        let path = temp_wal("roundtrip");
        let mut journal = Journal::create(&path).expect("create");
        for record in sample_records() {
            journal.append(&record).expect("append");
        }
        let read = Journal::read(&path).expect("read");
        assert_eq!(read.records, sample_records());
        assert!(!read.truncated);
        assert!(read.is_done());
        assert!(read.job().is_some());
        assert!(read.last_checkpoint().is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let path = temp_wal("torn");
        let mut journal = Journal::create(&path).expect("create");
        let records = sample_records();
        journal.append(&records[0]).expect("append start");
        journal.append(&records[1]).expect("append checkpoint");
        drop(journal);
        // Simulate a crash mid-append: a frame header promising more bytes
        // than ever hit the disk.
        let mut bytes = std::fs::read(&path).expect("read wal");
        let valid_len = bytes.len() as u64;
        bytes.extend_from_slice(&999u64.to_le_bytes());
        bytes.extend_from_slice(&[0xAB; 12]);
        std::fs::write(&path, &bytes).expect("tear tail");

        let rec = InMemoryRecorder::handle();
        let handle = RecorderHandle::new(rec.clone());
        let recovered = Journal::recover(&path, &handle).expect("recover");
        assert!(recovered.truncated);
        assert_eq!(recovered.records, records[..2].to_vec());
        assert_eq!(recovered.valid_bytes, valid_len);
        assert_eq!(rec.counter(metrics::fleet::RECOVERY), 1);
        assert_eq!(
            std::fs::metadata(&path).expect("metadata").len(),
            valid_len,
            "file rolled back to the last valid record"
        );

        // The journal must accept appends again after recovery.
        let mut journal = Journal::open_append(&path).expect("reopen");
        journal.append(&records[2]).expect("append after recovery");
        let read = Journal::read(&path).expect("reread");
        assert_eq!(read.records, records);
        assert!(!read.truncated);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_payload_byte_rolls_back_to_prior_record() {
        let path = temp_wal("bitflip");
        let mut journal = Journal::create(&path).expect("create");
        let records = sample_records();
        journal.append(&records[0]).expect("append start");
        journal.append(&records[1]).expect("append checkpoint");
        drop(journal);
        // Flip one byte inside the final record's payload.
        let mut bytes = std::fs::read(&path).expect("read wal");
        let last = bytes.len() - 3;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).expect("corrupt");

        let rec = InMemoryRecorder::handle();
        let handle = RecorderHandle::new(rec.clone());
        let recovered = Journal::recover(&path, &handle).expect("recover");
        assert!(recovered.truncated);
        assert_eq!(recovered.records, records[..1].to_vec());
        assert_eq!(rec.counter(metrics::fleet::RECOVERY), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_corrupt_not_recoverable() {
        let path = temp_wal("magic");
        std::fs::write(&path, b"NOTAWAL!rest").expect("write");
        let err = Journal::read(&path).expect_err("must fail");
        assert!(matches!(err, FleetError::Corrupt { .. }));
        std::fs::remove_file(&path).ok();
    }
}
