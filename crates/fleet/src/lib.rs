//! # parbor-fleet — the deployed profiler
//!
//! PARBOR's end state is not a one-shot binary: §VII of the paper envisions
//! the OS re-running detection periodically across every module in a
//! machine and feeding the resulting failure profiles to mitigation
//! (DC-REF). This crate is that layer — a scan *campaign* runner:
//!
//! * [`Fleet`] maintains a queue of per-module scan jobs ([`ScanJob`]) and
//!   shards them across a scoped-thread worker pool. Each worker drives a
//!   [`ScanMachine`](parbor_core::ScanMachine) (discover → recursion →
//!   aggregate → chip-wide) against the module built from the job's
//!   [`ModuleSpec`](parbor_dram::ModuleSpec), reusing the existing
//!   `ParallelMode`/`RoundExecutor` machinery inside each module.
//! * Every job checkpoints its pipeline state to a crash-safe write-ahead
//!   [`Journal`] (length + checksum framed records, truncated-tail
//!   recovery). A killed process resumes mid-scan — device rebuilt from
//!   spec, round clock fast-forwarded — and produces a **byte-identical**
//!   profile to an uninterrupted run.
//! * Finished profiles land in the columnar, generational
//!   [`ProfileStore`] (the `parbor-store` crate: checksummed `PBSTSEG1`
//!   segments, a 16-way sharded index, crash-safe compaction) that the
//!   DC-REF/mitigation path and the `parbor fleet`/`parbor store` CLIs
//!   read back. Stores written by the old single-`index.json` JSONL
//!   format open transparently and migrate on first compaction.
//!
//! Progress is observable through the `fleet.*` counters and spans named in
//! [`parbor_obs::metrics::fleet`].
//!
//! ## On-disk layout
//!
//! ```text
//! <root>/
//!   journal/<job>.wal            in-flight jobs only; removed on completion
//!   store/manifest.json          store version, epoch, compacted generations
//!   store/index-<shard>.json     sharded module index with content hashes
//!   store/segments/*.pbs         columnar profile segments (L0 + generations)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod job;
mod journal;
mod orchestrator;

pub use job::ScanJob;
pub use journal::{Journal, JournalRecord, RecoveredJournal};
pub use orchestrator::{
    Fleet, FleetConfig, FleetReport, JobReport, JobState, JobStatus, PortFactory, CRASH_EXIT_CODE,
};
pub use parbor_store::{
    fnv1a64, format_hash, ProfileStore, SegmentMeta, StoreError, StoredProfile, STORE_VERSION,
};

use std::fmt;
use std::path::PathBuf;

/// Errors of the fleet layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum FleetError {
    /// An I/O operation failed.
    Io(std::io::Error),
    /// A file's framing, checksum, or format is beyond recovery.
    Corrupt {
        /// The unreadable file.
        path: PathBuf,
        /// What was wrong with it.
        detail: String,
    },
    /// A record failed to (de)serialize.
    Serde(String),
    /// A scan job's pipeline failed.
    Scan(parbor_core::ParborError),
    /// A module spec failed to build a device.
    Device(parbor_dram::DramError),
    /// The orchestrator configuration is invalid.
    InvalidConfig(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Io(e) => write!(f, "i/o error: {e}"),
            FleetError::Corrupt { path, detail } => {
                write!(f, "corrupt file {}: {detail}", path.display())
            }
            FleetError::Serde(msg) => write!(f, "serialization error: {msg}"),
            FleetError::Scan(e) => write!(f, "scan failed: {e}"),
            FleetError::Device(e) => write!(f, "device error: {e}"),
            FleetError::InvalidConfig(msg) => write!(f, "invalid fleet config: {msg}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Io(e) => Some(e),
            FleetError::Scan(e) => Some(e),
            FleetError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> Self {
        FleetError::Io(e)
    }
}

impl From<parbor_core::ParborError> for FleetError {
    fn from(e: parbor_core::ParborError) -> Self {
        FleetError::Scan(e)
    }
}

impl From<parbor_dram::DramError> for FleetError {
    fn from(e: parbor_dram::DramError) -> Self {
        FleetError::Device(e)
    }
}

impl From<serde_json::Error> for FleetError {
    fn from(e: serde_json::Error) -> Self {
        FleetError::Serde(e.0)
    }
}

impl From<StoreError> for FleetError {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Io(e) => FleetError::Io(e),
            StoreError::Corrupt { path, detail } => FleetError::Corrupt { path, detail },
            StoreError::Serde(msg) => FleetError::Serde(msg),
            StoreError::InvalidConfig(msg) => FleetError::InvalidConfig(msg),
        }
    }
}
