//! The fleet orchestrator: a job queue sharded across scoped worker
//! threads, with per-job journaling and store publication.
//!
//! ## Job lifecycle
//!
//! ```text
//! queued → journal Start → [advance → journal Checkpoint]* → store put
//!        → journal Done → journal removed
//! ```
//!
//! A job whose profile is already in the store is skipped; a job with a
//! surviving journal is resumed from its last checkpoint (the module is
//! rebuilt from the journaled spec and its round clock fast-forwarded, so
//! the resumed scan is bit-identical to an uninterrupted one).

use std::collections::{BTreeSet, VecDeque};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use parbor_core::ScanMachine;
use parbor_hal::{KernelMode, ParallelMode, TestPort};
use parbor_obs::{metrics, span, FleetStatus, RecorderHandle};

use crate::job::ScanJob;
use crate::journal::{Journal, JournalRecord};
use crate::FleetError;
use parbor_store::ProfileStore;

/// Exit code used by the `crash_after_checkpoints` test hook, so harnesses
/// can tell a deliberate mid-scan kill from a real failure.
pub const CRASH_EXIT_CODE: i32 = 42;

/// Orchestrator configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Worker threads sharding the job queue (≥ 1).
    pub workers: usize,
    /// Rounds between checkpoints; `0` disables checkpointing (the journal
    /// then only brackets the job with `Start`/`Done`).
    pub checkpoint_every: usize,
    /// Intra-module row parallelism, forwarded to every device.
    pub parallel: ParallelMode,
    /// Coupling kernel, forwarded to every device.
    pub kernel: KernelMode,
    /// Test hook: `process::exit(CRASH_EXIT_CODE)` right after the N-th
    /// checkpoint (counted fleet-wide) hits the journal. Models a hard kill
    /// for the crash-and-resume smoke tests.
    pub crash_after_checkpoints: Option<u64>,
    /// Test hook: stop dispatching gracefully after the N-th checkpoint
    /// (counted fleet-wide); in-flight jobs return `halted` reports. The
    /// in-process twin of `crash_after_checkpoints`.
    pub halt_after_checkpoints: Option<u64>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: 2,
            checkpoint_every: 32,
            parallel: ParallelMode::Auto,
            kernel: KernelMode::Stencil,
            crash_after_checkpoints: None,
            halt_after_checkpoints: None,
        }
    }
}

/// How one job ended in a [`FleetReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobReport {
    /// Job name.
    pub name: String,
    /// Whether the job restarted from a journaled checkpoint.
    pub resumed: bool,
    /// Whether the job was skipped because its profile was already stored.
    pub skipped: bool,
    /// Whether the job was parked mid-scan by a fleet halt (journal kept).
    pub halted: bool,
    /// Test rounds this run executed for the job.
    pub rounds: u64,
    /// Checkpoints this run journaled for the job.
    pub checkpoints: u64,
    /// Journal bytes those checkpoints cost.
    pub checkpoint_bytes: u64,
    /// Content hash of the stored profile, when the job completed.
    pub profile_hash: Option<String>,
    /// Failing-cell count of the stored profile, when the job completed.
    pub failures: Option<usize>,
    /// The error message, when the job failed.
    pub error: Option<String>,
}

impl JobReport {
    fn empty(name: &str) -> Self {
        JobReport {
            name: name.to_string(),
            resumed: false,
            skipped: false,
            halted: false,
            rounds: 0,
            checkpoints: 0,
            checkpoint_bytes: 0,
            profile_hash: None,
            failures: None,
            error: None,
        }
    }
}

/// Outcome of one [`Fleet::run`]/[`Fleet::resume`] call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Per-job outcomes, sorted by job name.
    pub jobs: Vec<JobReport>,
}

impl FleetReport {
    /// Jobs whose profile is in the store after this run (completed now or
    /// skipped because it already was).
    pub fn stored(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.profile_hash.is_some())
            .count()
    }

    /// Jobs that completed during this run.
    pub fn completed(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.profile_hash.is_some() && !j.skipped)
            .count()
    }

    /// Jobs that failed.
    pub fn failed(&self) -> usize {
        self.jobs.iter().filter(|j| j.error.is_some()).count()
    }

    /// Jobs parked by a halt.
    pub fn halted(&self) -> usize {
        self.jobs.iter().filter(|j| j.halted).count()
    }

    /// Total test rounds executed across all jobs this run.
    pub fn total_rounds(&self) -> u64 {
        self.jobs.iter().map(|j| j.rounds).sum()
    }

    /// Total journal bytes spent on checkpoints this run.
    pub fn checkpoint_bytes(&self) -> u64 {
        self.jobs.iter().map(|j| j.checkpoint_bytes).sum()
    }

    /// Whether every job is stored and none failed or halted.
    pub fn is_clean(&self) -> bool {
        self.failed() == 0 && self.halted() == 0 && self.stored() == self.jobs.len()
    }
}

/// Where a job stands, per [`Fleet::status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// A journal exists; the job is mid-scan (or was killed mid-scan).
    InFlight,
    /// The job's profile is in the store.
    Done,
}

/// One row of [`Fleet::status`] output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStatus {
    /// Job name.
    pub name: String,
    /// Where the job stands.
    pub state: JobState,
    /// Pipeline stage: the active stage for in-flight jobs, `"done"` for
    /// stored ones.
    pub stage: String,
    /// Rounds covered so far (journaled checkpoint for in-flight jobs,
    /// whole-scan total for stored ones).
    pub rounds: u64,
    /// Failing-cell count, once stored.
    pub failures: Option<usize>,
}

/// Shared accounting behind the live `status.json` surface.
///
/// Workers bump the atomics as they claim jobs, finish advance chunks, and
/// land checkpoints; every significant event atomically swaps a fresh
/// [`FleetStatus`] document so a watcher (`parbor fleet top`, a dashboard)
/// always reads a consistent snapshot. Rates come from the same clock the
/// recorded telemetry uses, never re-derived elsewhere. A publish failure
/// is deliberately ignored: the status surface is advisory and must never
/// fail a campaign.
struct StatusBoard {
    path: PathBuf,
    started: Instant,
    jobs_total: u64,
    queued: AtomicU64,
    running: AtomicU64,
    done: AtomicU64,
    failed: AtomicU64,
    skipped: AtomicU64,
    rounds_done: AtomicU64,
    rows_written: AtomicU64,
    /// Fleet-wide rounds at the most recent checkpoint (lag approximation:
    /// with several workers the true per-job lag varies, but the global
    /// delta bounds the work at risk).
    rounds_at_ckpt: AtomicU64,
    /// Milliseconds since `started` when the last checkpoint landed.
    ckpt_at_ms: AtomicU64,
}

impl StatusBoard {
    fn new(path: PathBuf, jobs_total: u64, skipped: u64, queued: u64) -> Self {
        StatusBoard {
            path,
            started: Instant::now(),
            jobs_total,
            queued: AtomicU64::new(queued),
            running: AtomicU64::new(0),
            done: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            skipped: AtomicU64::new(skipped),
            rounds_done: AtomicU64::new(0),
            rows_written: AtomicU64::new(0),
            rounds_at_ckpt: AtomicU64::new(0),
            ckpt_at_ms: AtomicU64::new(0),
        }
    }

    fn claim(&self) {
        self.queued.fetch_sub(1, Ordering::SeqCst);
        self.running.fetch_add(1, Ordering::SeqCst);
        self.publish("running");
    }

    fn advanced(&self, rounds: u64, rows_per_round: u64) {
        self.rounds_done.fetch_add(rounds, Ordering::SeqCst);
        self.rows_written
            .fetch_add(rounds.saturating_mul(rows_per_round), Ordering::SeqCst);
    }

    fn checkpointed(&self) {
        self.rounds_at_ckpt
            .store(self.rounds_done.load(Ordering::SeqCst), Ordering::SeqCst);
        self.ckpt_at_ms
            .store(self.started.elapsed().as_millis() as u64, Ordering::SeqCst);
        self.publish("running");
    }

    fn finished(&self, report: &JobReport) {
        self.running.fetch_sub(1, Ordering::SeqCst);
        let bucket = if report.error.is_some() {
            &self.failed
        } else if report.skipped {
            &self.skipped
        } else if report.halted {
            // Halted jobs go back to the queue conceptually; the final
            // "halted" publish tells the watcher why progress stopped.
            &self.queued
        } else {
            &self.done
        };
        bucket.fetch_add(1, Ordering::SeqCst);
        self.publish("running");
    }

    fn snapshot(&self, state: &str) -> FleetStatus {
        let elapsed_ms = self.started.elapsed().as_millis() as u64;
        let elapsed_s = (elapsed_ms as f64 / 1000.0).max(1e-9);
        let rounds_done = self.rounds_done.load(Ordering::SeqCst);
        let done = self.done.load(Ordering::SeqCst);
        let failed = self.failed.load(Ordering::SeqCst);
        let skipped = self.skipped.load(Ordering::SeqCst);
        let settled = done + failed + skipped;
        let remaining = self.jobs_total.saturating_sub(settled);
        // ETA extrapolates jobs-per-second of the jobs that actually ran;
        // skipped jobs cost nothing, so they are excluded from the rate.
        let eta_s = if remaining == 0 {
            Some(0.0)
        } else if done + failed > 0 {
            Some(remaining as f64 * elapsed_s / (done + failed) as f64)
        } else {
            None
        };
        FleetStatus {
            state: state.to_string(),
            jobs_total: self.jobs_total,
            jobs_queued: self.queued.load(Ordering::SeqCst),
            jobs_running: self.running.load(Ordering::SeqCst),
            jobs_done: done,
            jobs_failed: failed,
            jobs_skipped: skipped,
            rounds_done,
            rows_written: self.rows_written.load(Ordering::SeqCst),
            elapsed_ms,
            rounds_per_s: rounds_done as f64 / elapsed_s,
            rows_per_s: self.rows_written.load(Ordering::SeqCst) as f64 / elapsed_s,
            checkpoint_lag_rounds: rounds_done
                .saturating_sub(self.rounds_at_ckpt.load(Ordering::SeqCst)),
            checkpoint_lag_ms: elapsed_ms.saturating_sub(self.ckpt_at_ms.load(Ordering::SeqCst)),
            eta_s,
            updated_ms: elapsed_ms,
        }
    }

    fn publish(&self, state: &str) {
        let _ = self.snapshot(state).write_atomic(&self.path);
    }
}

/// Builds the [`TestPort`] a worker drives for one job.
///
/// Factories are shared across the worker pool, hence `Send + Sync`; each
/// call must hand back a freshly built port positioned at round zero (the
/// orchestrator applies mode settings and fast-forwards it for resume).
pub type PortFactory = Box<dyn Fn(&ScanJob) -> Result<Box<dyn TestPort>, FleetError> + Send + Sync>;

/// The sharded scan orchestrator.
pub struct Fleet {
    root: PathBuf,
    config: FleetConfig,
    rec: RecorderHandle,
    port_factory: PortFactory,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("root", &self.root)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Fleet {
    /// A fleet rooted at `root` (created on first use).
    ///
    /// Jobs run against the simulator by default: each worker builds its
    /// job's module from the embedded [`ModuleSpec`](parbor_dram::ModuleSpec).
    /// Use [`with_port_factory`](Fleet::with_port_factory) to run against a
    /// different backend.
    ///
    /// # Errors
    ///
    /// [`FleetError::InvalidConfig`] when `workers` is zero.
    pub fn new(root: impl Into<PathBuf>, config: FleetConfig) -> Result<Self, FleetError> {
        if config.workers == 0 {
            return Err(FleetError::InvalidConfig(
                "fleet needs at least one worker".into(),
            ));
        }
        Ok(Fleet {
            root: root.into(),
            config,
            rec: RecorderHandle::null(),
            port_factory: Box::new(|job| Ok(Box::new(job.module.build()?))),
        })
    }

    /// Attaches a recorder for the `fleet.*` counters and spans.
    #[must_use]
    pub fn with_recorder(mut self, rec: RecorderHandle) -> Self {
        self.rec = rec;
        self
    }

    /// Replaces the backend: `factory` builds the port each worker drives
    /// for its job — a decorated simulator, a transcript replay, eventually
    /// real hardware.
    #[must_use]
    pub fn with_port_factory(mut self, factory: PortFactory) -> Self {
        self.port_factory = factory;
        self
    }

    /// The fleet's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Directory holding in-flight job journals.
    pub fn journal_dir(&self) -> PathBuf {
        self.root.join("journal")
    }

    /// Directory holding the profile store.
    pub fn store_dir(&self) -> PathBuf {
        self.root.join("store")
    }

    /// Path of the live status surface this fleet swaps while running
    /// (readable any time with [`FleetStatus::load`]).
    pub fn status_path(&self) -> PathBuf {
        self.root.join(FleetStatus::FILE_NAME)
    }

    /// Runs `jobs` to completion across the worker pool. Already-stored
    /// jobs are skipped; jobs with surviving journals are resumed. Job
    /// failures land in the report, not in `Err` — the rest of the queue
    /// still drains.
    ///
    /// # Errors
    ///
    /// [`FleetError::InvalidConfig`] on duplicate or unsafe job names;
    /// store/journal-directory I/O errors.
    pub fn run(&self, jobs: Vec<ScanJob>) -> Result<FleetReport, FleetError> {
        let mut names = BTreeSet::new();
        for job in &jobs {
            if !job.name_is_valid() {
                return Err(FleetError::InvalidConfig(format!(
                    "'{}' is not a valid job name",
                    job.name
                )));
            }
            if !names.insert(job.name.clone()) {
                return Err(FleetError::InvalidConfig(format!(
                    "duplicate job name '{}'",
                    job.name
                )));
            }
        }
        let journal_dir = self.journal_dir();
        fs::create_dir_all(&journal_dir)?;
        let store = ProfileStore::open_with_recorder(self.store_dir(), self.rec.clone())?;

        let mut reports = Vec::new();
        let mut pending = VecDeque::new();
        for job in jobs {
            let wal = journal_dir.join(format!("{}.wal", job.name));
            if store.contains(&job.name) && !wal.exists() {
                let meta = store.meta(&job.name)?.expect("contains implies meta");
                reports.push(JobReport {
                    skipped: true,
                    profile_hash: Some(meta.hash.clone()),
                    failures: Some(meta.failures),
                    ..JobReport::empty(&job.name)
                });
            } else {
                if !wal.exists() {
                    // Journal the Start before any work happens, so a crash
                    // at any point leaves enough on disk for resume() to
                    // reconstruct the *entire* queue, not just jobs that
                    // already got a worker.
                    Journal::create(&wal)?.append(&JournalRecord::Start { job: job.clone() })?;
                }
                pending.push_back(job);
            }
        }
        self.rec
            .incr(metrics::fleet::JOBS_QUEUED, pending.len() as u64);
        let board = StatusBoard::new(
            self.status_path(),
            (reports.len() + pending.len()) as u64,
            reports.len() as u64,
            pending.len() as u64,
        );
        board.publish("running");

        let _campaign = span!(self.rec, metrics::fleet::CAMPAIGN_SPAN);
        let workers = self.config.workers.min(pending.len()).max(1);
        let queue = Mutex::new(pending);
        let store = Mutex::new(store);
        let done_reports: Mutex<Vec<JobReport>> = Mutex::new(Vec::new());
        let checkpoints = AtomicU64::new(0);
        let halt = AtomicBool::new(false);
        let running = AtomicI64::new(0);

        crossbeam::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|_| loop {
                    if halt.load(Ordering::SeqCst) {
                        break;
                    }
                    let Some(job) = queue.lock().pop_front() else {
                        break;
                    };
                    self.rec.gauge(
                        metrics::fleet::JOBS_RUNNING,
                        running.fetch_add(1, Ordering::SeqCst) + 1,
                    );
                    board.claim();
                    let report = self
                        .run_job(&job, &journal_dir, &store, &checkpoints, &halt, &board)
                        .unwrap_or_else(|e| {
                            self.rec.incr(metrics::fleet::JOBS_FAILED, 1);
                            JobReport {
                                error: Some(e.to_string()),
                                ..JobReport::empty(&job.name)
                            }
                        });
                    board.finished(&report);
                    done_reports.lock().push(report);
                    self.rec.gauge(
                        metrics::fleet::JOBS_RUNNING,
                        running.fetch_sub(1, Ordering::SeqCst) - 1,
                    );
                });
            }
        })
        .expect("fleet worker scope");

        reports.append(&mut done_reports.into_inner());
        reports.sort_by(|a, b| a.name.cmp(&b.name));
        let report = FleetReport { jobs: reports };
        board.publish(if report.halted() > 0 {
            "halted"
        } else {
            "done"
        });
        Ok(report)
    }

    /// Resumes every job with a surviving journal (after a crash or halt).
    /// Job specs come from the journals' `Start` records; nothing else
    /// needs to be re-supplied.
    ///
    /// # Errors
    ///
    /// [`FleetError::Corrupt`] when a journal is unreadable beyond
    /// recovery; I/O errors.
    pub fn resume(&self) -> Result<FleetReport, FleetError> {
        let mut jobs = Vec::new();
        for wal in self.journal_paths()? {
            let recovered = Journal::recover(&wal, &self.rec)?;
            match recovered.job() {
                Some(job) => jobs.push(job.clone()),
                None => {
                    // Truncated before the Start record ever landed: nothing
                    // to resume, nothing lost — the run() path will restart
                    // the job if it is queued again.
                    fs::remove_file(&wal)?;
                }
            }
        }
        self.run(jobs)
    }

    /// Where every known job stands: stored profiles plus in-flight
    /// journals, sorted by name. Read-only (journals are not truncated).
    ///
    /// # Errors
    ///
    /// Store or journal I/O and corruption errors.
    pub fn status(&self) -> Result<Vec<JobStatus>, FleetError> {
        let store = ProfileStore::open_with_recorder(self.store_dir(), self.rec.clone())?;
        let mut out = Vec::new();
        for name in store.modules()? {
            let stored = store.get(&name)?;
            out.push(JobStatus {
                name,
                state: JobState::Done,
                stage: "done".into(),
                rounds: stored.profile.total_rounds() as u64,
                failures: Some(stored.profile.failures.len()),
            });
        }
        for wal in self.journal_paths()? {
            let name = wal
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or_default()
                .to_string();
            if store.contains(&name) {
                continue;
            }
            let recovered = Journal::read(&wal)?;
            let (stage, rounds) = match recovered.last_checkpoint() {
                Some(state) => (state.stage_name().to_string(), state.rounds_done),
                None => ("discover".into(), 0),
            };
            out.push(JobStatus {
                name,
                state: JobState::InFlight,
                stage,
                rounds,
                failures: None,
            });
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }

    fn journal_paths(&self) -> Result<Vec<PathBuf>, FleetError> {
        let dir = self.journal_dir();
        let mut out = Vec::new();
        if dir.is_dir() {
            for entry in fs::read_dir(&dir)? {
                let path = entry?.path();
                if path.extension().is_some_and(|e| e == "wal") {
                    out.push(path);
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// Drives one job from its current journal state to the store.
    fn run_job(
        &self,
        job: &ScanJob,
        journal_dir: &Path,
        store: &Mutex<ProfileStore>,
        fleet_checkpoints: &AtomicU64,
        halt: &AtomicBool,
        board: &StatusBoard,
    ) -> Result<JobReport, FleetError> {
        let _span = span!(self.rec, metrics::fleet::JOB_SPAN);
        let job_start = Instant::now();
        let wal = journal_dir.join(format!("{}.wal", job.name));
        let mut resumed = false;
        let (mut journal, machine) = if wal.exists() {
            let recovered = Journal::recover(&wal, &self.rec)?;
            if recovered.is_done() && store.lock().contains(&job.name) {
                // Crashed between store publication and journal removal:
                // the profile is safe, just finish the cleanup.
                let guard = store.lock();
                let meta = guard.meta(&job.name)?.expect("store contains job");
                let report = JobReport {
                    resumed: true,
                    skipped: true,
                    profile_hash: Some(meta.hash.clone()),
                    failures: Some(meta.failures),
                    ..JobReport::empty(&job.name)
                };
                drop(guard);
                fs::remove_file(&wal)?;
                return Ok(report);
            }
            let mut journal = Journal::open_append(&wal)?;
            if recovered.job().is_none() {
                journal.append(&JournalRecord::Start { job: job.clone() })?;
            }
            let machine = match recovered.last_checkpoint() {
                Some(state) => {
                    resumed = true;
                    self.rec.incr(metrics::fleet::RESUMES, 1);
                    ScanMachine::from_state(state.clone())
                }
                None => ScanMachine::new(job.config.clone()),
            };
            (journal, machine)
        } else {
            let mut journal = Journal::create(&wal)?;
            journal.append(&JournalRecord::Start { job: job.clone() })?;
            (journal, ScanMachine::new(job.config.clone()))
        };
        let mut machine = machine.with_recorder(self.rec.clone());

        let mut port = (self.port_factory)(job)?;
        port.set_parallel_mode(self.config.parallel);
        port.set_kernel_mode(self.config.kernel);
        port.fast_forward(machine.rounds_done());

        let rounds_at_start = machine.rounds_done();
        let budget = match self.config.checkpoint_every {
            0 => usize::MAX,
            n => n,
        };
        let mut checkpoints = 0u64;
        let mut checkpoint_bytes = 0u64;
        // Every detection round writes each row under test once, so the
        // status surface's rows/s is rounds × module rows — an upper-bound
        // approximation that tracks real throughput within a round.
        let rows_per_round = u64::from(job.module.geometry.banks)
            * u64::from(job.module.geometry.rows_per_bank)
            * job.module.chips as u64;
        let mut rounds_seen = machine.rounds_done();
        while !machine.is_done() {
            machine.advance(&mut *port, budget)?;
            let now_done = machine.rounds_done();
            board.advanced(now_done - rounds_seen, rows_per_round);
            rounds_seen = now_done;
            if self.config.checkpoint_every > 0 && !machine.is_done() {
                let bytes = journal.append(&JournalRecord::Checkpoint {
                    state: machine.state().clone(),
                })?;
                checkpoints += 1;
                checkpoint_bytes += bytes;
                self.rec.incr(metrics::fleet::CHECKPOINTS, 1);
                self.rec.incr(metrics::fleet::CHECKPOINT_BYTES, bytes);
                board.checkpointed();
                let nth = fleet_checkpoints.fetch_add(1, Ordering::SeqCst) + 1;
                if let Some(limit) = self.config.crash_after_checkpoints {
                    if nth >= limit {
                        journal.sync().ok();
                        std::process::exit(CRASH_EXIT_CODE);
                    }
                }
                if let Some(limit) = self.config.halt_after_checkpoints {
                    if nth >= limit {
                        halt.store(true, Ordering::SeqCst);
                    }
                }
            }
            if halt.load(Ordering::SeqCst) && !machine.is_done() {
                return Ok(JobReport {
                    resumed,
                    halted: true,
                    rounds: machine.rounds_done() - rounds_at_start,
                    checkpoints,
                    checkpoint_bytes,
                    ..JobReport::empty(&job.name)
                });
            }
        }

        let profile = machine.profile().expect("machine is done").clone();
        let meta = store.lock().put(&job.name, &profile)?;
        journal.append(&JournalRecord::Done {
            profile_hash: meta.hash.clone(),
        })?;
        drop(journal);
        fs::remove_file(&wal)?;
        self.rec.incr(metrics::fleet::JOBS_DONE, 1);
        self.rec.observe(
            metrics::fleet::JOB_US,
            job_start.elapsed().as_micros() as u64,
        );
        Ok(JobReport {
            resumed,
            rounds: machine.rounds_done() - rounds_at_start,
            checkpoints,
            checkpoint_bytes,
            profile_hash: Some(meta.hash),
            failures: Some(meta.failures),
            ..JobReport::empty(&job.name)
        })
    }
}
