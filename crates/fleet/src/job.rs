//! Scan job descriptions.

use serde::{Deserialize, Serialize};

use parbor_core::ParborConfig;
use parbor_dram::ModuleSpec;

/// One unit of fleet work: scan one module under one pipeline config.
///
/// The job is fully serializable — it is journaled in the job's `Start`
/// record so a resumed process can rebuild the identical device and config
/// without the caller re-supplying them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScanJob {
    /// Unique job name; also the store segment name (e.g. `A1`). Must be a
    /// valid file stem: no path separators.
    pub name: String,
    /// The module to scan (rebuilt from spec on every (re)start).
    pub module: ModuleSpec,
    /// Pipeline configuration for the scan.
    pub config: ParborConfig,
}

impl ScanJob {
    /// A job with the default pipeline config.
    pub fn new(name: impl Into<String>, module: ModuleSpec) -> Self {
        ScanJob {
            name: name.into(),
            module,
            config: ParborConfig::default(),
        }
    }

    /// Whether the name is safe to use as a file stem.
    pub fn name_is_valid(&self) -> bool {
        !self.name.is_empty()
            && self
                .name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.')
            && !self.name.starts_with('.')
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbor_dram::Vendor;

    #[test]
    fn name_validation() {
        let spec = ModuleSpec::new(Vendor::A);
        assert!(ScanJob::new("A1", spec.clone()).name_is_valid());
        assert!(ScanJob::new("mod-3_b.2", spec.clone()).name_is_valid());
        assert!(!ScanJob::new("", spec.clone()).name_is_valid());
        assert!(!ScanJob::new("a/b", spec.clone()).name_is_valid());
        assert!(!ScanJob::new("..", spec).name_is_valid());
    }
}
