//! Ramulator standalone trace-format interop.
//!
//! Ramulator (the simulator the paper's §8 evaluation runs on) consumes CPU
//! traces as text lines: `<num-cpu-inst> <addr-read> [<addr-writeback>]`.
//! This module writes our synthetic streams in that format and parses
//! existing Ramulator traces back into [`TraceOp`]s, so real Pin-captured
//! traces can drive `parbor-memsim` and our synthetic traces can drive
//! Ramulator.

use std::io::{self, BufRead, Write};

use crate::generator::TraceOp;

/// Writes trace entries as Ramulator CPU-trace lines.
///
/// Reads become `<gap> <addr>`; writes become `<gap> <addr> <addr>` (the
/// Ramulator format models stores as a read plus a writeback of the same
/// line, the closest encoding of our post-LLC writes).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// use parbor_workloads::{write_ramulator_trace, TraceOp};
///
/// # fn main() -> std::io::Result<()> {
/// let ops = [TraceOp { nonmem_insts: 7, addr: 0x1240, is_write: false }];
/// let mut out = Vec::new();
/// write_ramulator_trace(&mut out, &ops)?;
/// assert_eq!(String::from_utf8(out).unwrap(), "7 0x1240\n");
/// # Ok(())
/// # }
/// ```
pub fn write_ramulator_trace<W: Write>(mut writer: W, ops: &[TraceOp]) -> io::Result<()> {
    for op in ops {
        if op.is_write {
            writeln!(writer, "{} {:#x} {:#x}", op.nonmem_insts, op.addr, op.addr)?;
        } else {
            writeln!(writer, "{} {:#x}", op.nonmem_insts, op.addr)?;
        }
    }
    Ok(())
}

/// Parses Ramulator CPU-trace lines back into [`TraceOp`]s.
///
/// Lines with a third column (a writeback address) produce *two* logical
/// operations in our model only when the writeback address differs from the
/// read address; a repeated address is folded into a single write op (the
/// inverse of [`write_ramulator_trace`]). Blank lines and `#` comments are
/// skipped.
///
/// # Errors
///
/// Returns an [`io::Error`] with kind `InvalidData` describing the first
/// malformed line.
pub fn read_ramulator_trace<R: BufRead>(reader: R) -> io::Result<Vec<TraceOp>> {
    let mut ops = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let bad = |what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {what}: {line}", lineno + 1),
            )
        };
        let gap: u32 = fields
            .next()
            .ok_or_else(|| bad("missing instruction count"))?
            .parse()
            .map_err(|_| bad("bad instruction count"))?;
        let parse_addr = |s: &str| -> Option<u64> {
            if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                u64::from_str_radix(hex, 16).ok()
            } else {
                s.parse().ok()
            }
        };
        let read_addr = fields
            .next()
            .and_then(parse_addr)
            .ok_or_else(|| bad("missing or bad read address"))?;
        match fields.next() {
            None => ops.push(TraceOp {
                nonmem_insts: gap,
                addr: read_addr,
                is_write: false,
            }),
            Some(wb) => {
                let wb_addr = parse_addr(wb).ok_or_else(|| bad("bad writeback address"))?;
                if wb_addr == read_addr {
                    ops.push(TraceOp {
                        nonmem_insts: gap,
                        addr: read_addr,
                        is_write: true,
                    });
                } else {
                    ops.push(TraceOp {
                        nonmem_insts: gap,
                        addr: read_addr,
                        is_write: false,
                    });
                    ops.push(TraceOp {
                        nonmem_insts: 0,
                        addr: wb_addr,
                        is_write: true,
                    });
                }
            }
        }
        if fields.next().is_some() {
            return Err(bad("too many fields"));
        }
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use crate::profiles::AppProfile;

    #[test]
    fn round_trip_preserves_ops() {
        let app = AppProfile::spec2006()
            .into_iter()
            .find(|a| a.name == "milc")
            .unwrap();
        let ops = TraceGenerator::new(&app, 5).take_ops(500);
        let mut buf = Vec::new();
        write_ramulator_trace(&mut buf, &ops).unwrap();
        let parsed = read_ramulator_trace(buf.as_slice()).unwrap();
        assert_eq!(parsed, ops);
    }

    #[test]
    fn parses_decimal_and_hex_addresses() {
        let text = "3 0x40\n5 128\n";
        let ops = read_ramulator_trace(text.as_bytes()).unwrap();
        assert_eq!(ops[0].addr, 0x40);
        assert_eq!(ops[1].addr, 128);
        assert!(!ops[0].is_write);
    }

    #[test]
    fn distinct_writeback_splits_into_two_ops() {
        let text = "3 0x40 0x80\n";
        let ops = read_ramulator_trace(text.as_bytes()).unwrap();
        assert_eq!(ops.len(), 2);
        assert!(!ops[0].is_write && ops[0].addr == 0x40);
        assert!(ops[1].is_write && ops[1].addr == 0x80);
        assert_eq!(ops[1].nonmem_insts, 0);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n2 0x40\n";
        let ops = read_ramulator_trace(text.as_bytes()).unwrap();
        assert_eq!(ops.len(), 1);
    }

    #[test]
    fn malformed_lines_error_with_location() {
        for bad in ["x 0x40", "3", "3 zz", "3 0x40 zz", "3 0x40 0x80 9"] {
            let err = read_ramulator_trace(bad.as_bytes()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "input {bad:?}");
            assert!(err.to_string().contains("line 1"), "input {bad:?}");
        }
    }
}
