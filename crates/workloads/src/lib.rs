//! # parbor-workloads — synthetic SPEC-like workloads for refresh studies
//!
//! The paper's DC-REF evaluation (§8) runs 32 random 8-core mixes of 17
//! SPEC CPU2006 applications through Ramulator, using Pin-captured traces.
//! Those traces are proprietary; this crate generates the closest synthetic
//! equivalent: deterministic per-application trace streams with calibrated
//! memory intensity (MPKI), row-buffer locality, footprint, write fraction,
//! and — the knob DC-REF cares about — the probability that written data
//! matches the worst-case coupling pattern of a vulnerable row.
//!
//! Traces use the post-LLC format Ramulator's standalone mode uses: each
//! entry is "`n` non-memory instructions, then one memory access".
//!
//! ## Example
//!
//! ```
//! use parbor_workloads::{AppProfile, TraceGenerator};
//!
//! let mcf = AppProfile::spec2006().iter().find(|a| a.name == "mcf").unwrap().clone();
//! let mut gen = TraceGenerator::new(&mcf, 42);
//! let op = gen.next_op();
//! assert!(op.nonmem_insts > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;
mod mixes;
mod phases;
mod profiles;
mod trace_io;

pub use generator::{TraceGenerator, TraceOp};
pub use mixes::{paper_mixes, WorkloadMix};
pub use phases::{Phase, PhasedGenerator};
pub use profiles::AppProfile;
pub use trace_io::{read_ramulator_trace, write_ramulator_trace};
