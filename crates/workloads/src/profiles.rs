//! Application profiles approximating the 17 SPEC CPU2006 benchmarks the
//! paper evaluates DC-REF with.
//!
//! MPKI and row-locality values follow the published characterizations of
//! SPEC CPU2006 memory behaviour (memory-intensive: mcf, lbm, milc,
//! libquantum, soplex, GemsFDTD, leslie3d, omnetpp; moderate: astar,
//! cactusADM, gcc, bzip2; compute-bound: hmmer, h264ref, gobmk, sjeng,
//! perlbench). The `wc_match_prob` column is this reproduction's calibration
//! knob: the probability that data an application writes into a vulnerable
//! row matches that row's worst-case coupling pattern. Its population
//! average (≈ 0.165) times the paper's 16.4 % weak-row fraction yields the
//! paper's reported 2.7 % of rows refreshed fast under DC-REF.

use serde::Serialize;

/// Behavioural profile of one application.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AppProfile {
    /// Short benchmark name (SPEC CPU2006 style).
    pub name: &'static str,
    /// Post-LLC memory accesses per kilo-instruction.
    pub mpki: f64,
    /// Probability that the next access falls in the same DRAM row as the
    /// previous one (row-buffer locality).
    pub row_locality: f64,
    /// Memory footprint in MiB (addresses wrap inside it).
    pub footprint_mib: u32,
    /// Fraction of memory accesses that are writes.
    pub write_frac: f64,
    /// Probability that a write into a *vulnerable* row matches the row's
    /// worst-case coupling pattern (drives DC-REF's hot-row fraction).
    pub wc_match_prob: f64,
}

impl AppProfile {
    /// The 17-benchmark population used by the paper's DC-REF study.
    pub fn spec2006() -> Vec<AppProfile> {
        fn p(
            name: &'static str,
            mpki: f64,
            row_locality: f64,
            footprint_mib: u32,
            write_frac: f64,
            wc_match_prob: f64,
        ) -> AppProfile {
            AppProfile {
                name,
                mpki,
                row_locality,
                footprint_mib,
                write_frac,
                wc_match_prob,
            }
        }
        vec![
            p("mcf", 67.6, 0.15, 1600, 0.27, 0.24),
            p("lbm", 31.9, 0.66, 400, 0.47, 0.12),
            p("milc", 25.7, 0.55, 680, 0.31, 0.19),
            p("libquantum", 25.4, 0.88, 64, 0.24, 0.05),
            p("GemsFDTD", 24.7, 0.61, 800, 0.39, 0.16),
            p("leslie3d", 20.9, 0.59, 120, 0.35, 0.14),
            p("soplex", 27.0, 0.42, 250, 0.23, 0.21),
            p("omnetpp", 22.2, 0.18, 150, 0.34, 0.28),
            p("astar", 9.1, 0.27, 330, 0.29, 0.22),
            p("cactusADM", 6.7, 0.48, 620, 0.33, 0.13),
            p("gcc", 5.1, 0.39, 90, 0.30, 0.18),
            p("bzip2", 3.9, 0.51, 110, 0.28, 0.11),
            p("hmmer", 1.8, 0.63, 24, 0.22, 0.08),
            p("h264ref", 1.3, 0.70, 60, 0.26, 0.09),
            p("gobmk", 0.8, 0.44, 28, 0.24, 0.15),
            p("sjeng", 0.5, 0.35, 170, 0.21, 0.17),
            p("perlbench", 0.9, 0.46, 45, 0.31, 0.20),
        ]
    }

    /// Average number of non-memory instructions between memory accesses.
    pub fn mean_gap(&self) -> f64 {
        1000.0 / self.mpki
    }

    /// Whether the application is memory-intensive (MPKI ≥ 10), the usual
    /// SPEC categorization.
    pub fn is_memory_intensive(&self) -> bool {
        self.mpki >= 10.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_benchmarks() {
        assert_eq!(AppProfile::spec2006().len(), 17);
    }

    #[test]
    fn names_are_unique() {
        let apps = AppProfile::spec2006();
        let names: std::collections::HashSet<_> = apps.iter().map(|a| a.name).collect();
        assert_eq!(names.len(), apps.len());
    }

    #[test]
    fn probabilities_in_range() {
        for a in AppProfile::spec2006() {
            assert!((0.0..=1.0).contains(&a.row_locality), "{}", a.name);
            assert!((0.0..=1.0).contains(&a.write_frac), "{}", a.name);
            assert!((0.0..=1.0).contains(&a.wc_match_prob), "{}", a.name);
            assert!(a.mpki > 0.0 && a.footprint_mib > 0);
        }
    }

    #[test]
    fn average_match_prob_yields_paper_hot_fraction() {
        // Paper §8: DC-REF refreshes 2.7 % of rows fast on average, with
        // 16.4 % of rows weak. So the mean content-match probability must be
        // around 0.027 / 0.164 ≈ 0.165.
        let apps = AppProfile::spec2006();
        let mean: f64 = apps.iter().map(|a| a.wc_match_prob).sum::<f64>() / apps.len() as f64;
        let hot = mean * 0.164;
        assert!((hot - 0.027).abs() < 0.004, "hot fraction = {hot}");
    }

    #[test]
    fn mcf_is_most_intensive() {
        let apps = AppProfile::spec2006();
        let max = apps
            .iter()
            .max_by(|a, b| a.mpki.total_cmp(&b.mpki))
            .unwrap();
        assert_eq!(max.name, "mcf");
        assert!(max.is_memory_intensive());
    }
}
