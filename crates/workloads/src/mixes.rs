//! The paper's 32 random 8-core multiprogrammed mixes (§8: "We evaluate 32
//! 8-core multi-programmed workloads by randomly assigning one application
//! to each core").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use crate::profiles::AppProfile;

/// One multiprogrammed workload: an application per core.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WorkloadMix {
    /// Mix index (0-based; the paper numbers them 1–32).
    pub id: u32,
    /// One application per core.
    pub apps: Vec<AppProfile>,
}

impl WorkloadMix {
    /// Short description like `mix07[mcf,lbm,...]`.
    pub fn label(&self) -> String {
        let names: Vec<&str> = self.apps.iter().map(|a| a.name).collect();
        format!("mix{:02}[{}]", self.id + 1, names.join(","))
    }

    /// Average MPKI across the mix's applications.
    pub fn mean_mpki(&self) -> f64 {
        self.apps.iter().map(|a| a.mpki).sum::<f64>() / self.apps.len() as f64
    }
}

/// Generates `count` random mixes of `cores` applications each, drawn
/// uniformly (with replacement) from the 17-benchmark population — the
/// paper uses `count = 32`, `cores = 8`.
pub fn paper_mixes(count: usize, cores: usize, seed: u64) -> Vec<WorkloadMix> {
    let apps = AppProfile::spec2006();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|id| WorkloadMix {
            id: id as u32,
            apps: (0..cores)
                .map(|_| apps[rng.gen_range(0..apps.len())].clone())
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_two_mixes_of_eight() {
        let mixes = paper_mixes(32, 8, 1);
        assert_eq!(mixes.len(), 32);
        for m in &mixes {
            assert_eq!(m.apps.len(), 8);
        }
    }

    #[test]
    fn mixes_are_deterministic_per_seed() {
        assert_eq!(paper_mixes(8, 8, 5), paper_mixes(8, 8, 5));
        assert_ne!(paper_mixes(8, 8, 5), paper_mixes(8, 8, 6));
    }

    #[test]
    fn mixes_are_diverse() {
        let mixes = paper_mixes(32, 8, 1);
        let mean_mpkis: std::collections::BTreeSet<u64> = mixes
            .iter()
            .map(|m| (m.mean_mpki() * 100.0) as u64)
            .collect();
        assert!(mean_mpkis.len() > 20, "mixes too uniform");
    }

    #[test]
    fn label_format() {
        let mixes = paper_mixes(1, 2, 3);
        let l = mixes[0].label();
        assert!(l.starts_with("mix01["));
        assert!(l.ends_with(']'));
    }
}
