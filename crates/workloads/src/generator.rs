//! Deterministic trace generation from an [`AppProfile`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::profiles::AppProfile;

/// Size of one memory access (a cache line).
pub const LINE_BYTES: u64 = 64;

/// One post-LLC trace entry: `nonmem_insts` non-memory instructions followed
/// by a single memory access. This is the format Ramulator's standalone CPU
/// traces use, which the paper's evaluation is built on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceOp {
    /// Non-memory instructions executed before the access.
    pub nonmem_insts: u32,
    /// Byte address of the access (line-aligned).
    pub addr: u64,
    /// Whether the access is a write (store / dirty writeback).
    pub is_write: bool,
}

/// A deterministic, infinite trace stream for one application.
///
/// Address behaviour: with probability `row_locality`, the next access is
/// the sequential next line (staying in the same DRAM row); otherwise it
/// jumps to a uniformly random line within the footprint. Instruction gaps
/// are geometric-like around `mean_gap()`, so the long-run MPKI matches the
/// profile.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: AppProfile,
    rng: StdRng,
    cursor: u64,
    footprint_lines: u64,
}

impl TraceGenerator {
    /// Creates a generator for the application with a given seed. Identical
    /// `(profile, seed)` pairs yield identical traces.
    pub fn new(profile: &AppProfile, seed: u64) -> Self {
        let footprint_lines = u64::from(profile.footprint_mib) * 1024 * 1024 / LINE_BYTES;
        let mut rng = StdRng::seed_from_u64(seed);
        let cursor = rng.gen_range(0..footprint_lines);
        TraceGenerator {
            profile: profile.clone(),
            rng,
            cursor,
            footprint_lines,
        }
    }

    /// The application profile this generator follows.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    /// Produces the next trace entry.
    pub fn next_op(&mut self) -> TraceOp {
        let gap = self.profile.mean_gap();
        // Geometric-ish gap: exponential with the target mean, at least 1.
        let u: f64 = self.rng.gen_range(1e-12..1.0f64);
        let nonmem_insts = (-u.ln() * gap).ceil().max(1.0).min(u32::MAX as f64) as u32;

        if self.rng.gen_bool(self.profile.row_locality) {
            self.cursor = (self.cursor + 1) % self.footprint_lines;
        } else {
            self.cursor = self.rng.gen_range(0..self.footprint_lines);
        }
        TraceOp {
            nonmem_insts,
            addr: self.cursor * LINE_BYTES,
            is_write: self.rng.gen_bool(self.profile.write_frac),
        }
    }

    /// Generates a batch of `n` entries.
    pub fn take_ops(&mut self, n: usize) -> Vec<TraceOp> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app(name: &'static str) -> AppProfile {
        AppProfile::spec2006()
            .into_iter()
            .find(|a| a.name == name)
            .expect("known benchmark")
    }

    #[test]
    fn generator_is_deterministic() {
        let a = app("mcf");
        let x = TraceGenerator::new(&a, 9).take_ops(1000);
        let y = TraceGenerator::new(&a, 9).take_ops(1000);
        assert_eq!(x, y);
        let z = TraceGenerator::new(&a, 10).take_ops(1000);
        assert_ne!(x, z);
    }

    #[test]
    fn addresses_stay_in_footprint_and_are_aligned() {
        let a = app("hmmer");
        let limit = u64::from(a.footprint_mib) * 1024 * 1024;
        let mut g = TraceGenerator::new(&a, 1);
        for op in g.take_ops(10_000) {
            assert!(op.addr < limit);
            assert_eq!(op.addr % LINE_BYTES, 0);
        }
    }

    #[test]
    fn long_run_mpki_matches_profile() {
        for name in ["mcf", "libquantum", "sjeng"] {
            let a = app(name);
            let mut g = TraceGenerator::new(&a, 3);
            let ops = g.take_ops(20_000);
            let insts: u64 = ops.iter().map(|o| u64::from(o.nonmem_insts) + 1).sum();
            let mpki = ops.len() as f64 * 1000.0 / insts as f64;
            let rel = (mpki - a.mpki).abs() / a.mpki;
            assert!(
                rel < 0.15,
                "{name}: generated MPKI {mpki} vs target {}",
                a.mpki
            );
        }
    }

    #[test]
    fn write_fraction_matches_profile() {
        let a = app("lbm");
        let mut g = TraceGenerator::new(&a, 5);
        let ops = g.take_ops(20_000);
        let wf = ops.iter().filter(|o| o.is_write).count() as f64 / ops.len() as f64;
        assert!((wf - a.write_frac).abs() < 0.02, "write fraction {wf}");
    }

    #[test]
    fn locality_shows_up_as_sequential_runs() {
        let hi = app("libquantum"); // 0.88 locality
        let lo = app("mcf"); // 0.15 locality
        let seq = |a: &AppProfile| {
            let mut g = TraceGenerator::new(a, 7);
            let ops = g.take_ops(10_000);
            ops.windows(2)
                .filter(|w| w[1].addr == w[0].addr + LINE_BYTES)
                .count()
        };
        assert!(seq(&hi) > 4 * seq(&lo));
    }
}
