//! Phase behavior: real applications alternate between execution phases
//! with different memory intensity (SPEC's mcf famously oscillates between
//! pointer-chasing and compute phases). A [`PhasedGenerator`] cycles a
//! schedule of profiles, switching after a fixed number of operations —
//! useful for studying how content- and intensity-sensitive policies like
//! DC-REF react to phase changes.

use serde::Serialize;

use crate::generator::{TraceGenerator, TraceOp};
use crate::profiles::AppProfile;

/// One phase: a behavioural profile held for `ops` trace operations.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Phase {
    /// Profile active during the phase.
    pub profile: AppProfile,
    /// Number of memory operations before switching to the next phase.
    pub ops: u64,
}

/// A trace generator that cycles through phases.
#[derive(Debug, Clone)]
pub struct PhasedGenerator {
    phases: Vec<Phase>,
    generators: Vec<TraceGenerator>,
    current: usize,
    ops_in_phase: u64,
    phase_switches: u64,
}

impl PhasedGenerator {
    /// Creates a phased generator; identical `(phases, seed)` produce
    /// identical streams.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any phase has zero ops.
    pub fn new(phases: Vec<Phase>, seed: u64) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        assert!(
            phases.iter().all(|p| p.ops > 0),
            "phases must run for at least one op"
        );
        let generators = phases
            .iter()
            .enumerate()
            .map(|(i, p)| TraceGenerator::new(&p.profile, seed ^ ((i as u64) << 48)))
            .collect();
        PhasedGenerator {
            phases,
            generators,
            current: 0,
            ops_in_phase: 0,
            phase_switches: 0,
        }
    }

    /// A two-phase burst/quiet alternation derived from one profile: the
    /// burst phase runs the profile as-is, the quiet phase at `quiet_mpki`.
    pub fn bursty(profile: &AppProfile, quiet_mpki: f64, ops_per_phase: u64, seed: u64) -> Self {
        let quiet = AppProfile {
            mpki: quiet_mpki,
            ..profile.clone()
        };
        Self::new(
            vec![
                Phase {
                    profile: profile.clone(),
                    ops: ops_per_phase,
                },
                Phase {
                    profile: quiet,
                    ops: ops_per_phase,
                },
            ],
            seed,
        )
    }

    /// The currently active phase index.
    pub fn current_phase(&self) -> usize {
        self.current
    }

    /// Phase transitions so far.
    pub fn phase_switches(&self) -> u64 {
        self.phase_switches
    }

    /// Produces the next trace entry, advancing phases as scheduled.
    pub fn next_op(&mut self) -> TraceOp {
        if self.ops_in_phase >= self.phases[self.current].ops {
            self.current = (self.current + 1) % self.phases.len();
            self.ops_in_phase = 0;
            self.phase_switches += 1;
        }
        self.ops_in_phase += 1;
        self.generators[self.current].next_op()
    }

    /// Generates a batch of `n` entries.
    pub fn take_ops(&mut self, n: usize) -> Vec<TraceOp> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app(name: &str) -> AppProfile {
        AppProfile::spec2006()
            .into_iter()
            .find(|a| a.name == name)
            .unwrap()
    }

    #[test]
    fn phases_cycle_on_schedule() {
        let mut g = PhasedGenerator::bursty(&app("mcf"), 0.5, 100, 1);
        assert_eq!(g.current_phase(), 0);
        g.take_ops(100);
        assert_eq!(g.current_phase(), 0, "switch happens on the next op");
        g.next_op();
        assert_eq!(g.current_phase(), 1);
        g.take_ops(100);
        assert_eq!(g.current_phase(), 0);
        assert_eq!(g.phase_switches(), 2);
    }

    #[test]
    fn burst_phase_is_denser_than_quiet() {
        let mut g = PhasedGenerator::bursty(&app("mcf"), 0.5, 2000, 2);
        let burst = g.take_ops(2000);
        g.next_op();
        let quiet = g.take_ops(1999);
        let mean_gap = |ops: &[TraceOp]| {
            ops.iter().map(|o| u64::from(o.nonmem_insts)).sum::<u64>() as f64 / ops.len() as f64
        };
        assert!(
            mean_gap(&quiet) > 20.0 * mean_gap(&burst),
            "quiet {} vs burst {}",
            mean_gap(&quiet),
            mean_gap(&burst)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let mk = |seed| PhasedGenerator::bursty(&app("gcc"), 1.0, 50, seed).take_ops(500);
        assert_eq!(mk(9), mk(9));
        assert_ne!(mk(9), mk(10));
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phase_list_rejected() {
        PhasedGenerator::new(vec![], 1);
    }
}
