//! Integration tests for the `parbor` CLI: flag handling, `--help`, and the
//! fleet crash/resume workflow driven through the real binary.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::atomic::{AtomicU64, Ordering};

const BIN: &str = env!("CARGO_BIN_EXE_parbor");

fn run(args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        .output()
        .expect("spawn parbor binary")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("parbor-cli-{}-{tag}-{n}", std::process::id()))
}

/// Every file under `root`, as sorted (relative path, contents) pairs.
fn dir_snapshot(root: &Path) -> Vec<(String, Vec<u8>)> {
    fn walk(dir: &Path, root: &Path, out: &mut Vec<(String, Vec<u8>)>) {
        for entry in fs::read_dir(dir).expect("read_dir") {
            let path = entry.expect("entry").path();
            if path.is_dir() {
                walk(&path, root, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("under root")
                    .to_string_lossy()
                    .into_owned();
                out.push((rel, fs::read(&path).expect("read file")));
            }
        }
    }
    let mut out = Vec::new();
    walk(root, root, &mut out);
    out.sort();
    out
}

#[test]
fn help_documents_the_mode_flags() {
    for args in [&["--help"][..], &["-h"], &["detect", "--help"]] {
        let out = run(args);
        assert!(out.status.success(), "{args:?} must exit 0");
        let text = stdout(&out);
        assert!(text.contains("--parallel auto|always|never"), "{args:?}");
        assert!(text.contains("--kernel stencil|reference"), "{args:?}");
        assert!(text.contains("fleet run"), "{args:?}");
    }
}

#[test]
fn mode_flags_are_accepted_and_do_not_change_results() {
    let base = run(&["detect", "--vendor", "B", "--rows", "48", "--chips", "1"]);
    assert!(base.status.success());
    let base_head: Vec<String> = stdout(&base).lines().take(7).map(String::from).collect();
    assert!(base_head.iter().any(|l| l.starts_with("victims")));

    for modes in [
        &["--parallel", "never", "--kernel", "reference"][..],
        &["--parallel", "always", "--kernel", "stencil"],
        &["--parallel", "auto"],
    ] {
        let mut args = vec!["detect", "--vendor", "B", "--rows", "48", "--chips", "1"];
        args.extend_from_slice(modes);
        let out = run(&args);
        assert!(out.status.success(), "{modes:?} must succeed");
        let head: Vec<String> = stdout(&out).lines().take(7).map(String::from).collect();
        assert_eq!(head, base_head, "{modes:?} changed detection results");
    }
}

#[test]
fn bad_mode_values_are_rejected() {
    for args in [
        &["detect", "--rows", "48", "--parallel", "sometimes"][..],
        &["detect", "--rows", "48", "--kernel", "magic"],
    ] {
        let out = run(args);
        assert!(!out.status.success(), "{args:?} must fail");
    }
}

#[test]
fn fleet_crash_resume_store_is_byte_identical_to_clean_run() {
    let clean = temp_dir("fleet-clean");
    let crashed = temp_dir("fleet-crash");
    let jobs = |dir: &Path| {
        vec![
            "fleet".to_string(),
            "run".to_string(),
            "--dir".to_string(),
            dir.display().to_string(),
            "--vendors".to_string(),
            "A,B".to_string(),
            "--modules".to_string(),
            "1".to_string(),
            "--rows".to_string(),
            "48".to_string(),
            "--workers".to_string(),
            "1".to_string(),
            "--checkpoint-every".to_string(),
            "16".to_string(),
        ]
    };

    let out = Command::new(BIN)
        .args(jobs(&clean))
        .output()
        .expect("clean run");
    assert!(out.status.success(), "clean run failed: {out:?}");

    // Kill the fleet after two checkpoints, mid-scan.
    let mut crash_args = jobs(&crashed);
    crash_args.extend(["--crash-after".to_string(), "2".to_string()]);
    let out = Command::new(BIN)
        .args(crash_args)
        .output()
        .expect("crash run");
    assert_eq!(
        out.status.code(),
        Some(42),
        "crash hook must exit with the sentinel code"
    );

    // The journal survives and status sees the in-flight jobs.
    let out = run(&["fleet", "status", "--dir", &crashed.display().to_string()]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("in-flight"), "{}", stdout(&out));

    // Resume and compare the stores byte for byte.
    let out = run(&[
        "fleet",
        "resume",
        "--dir",
        &crashed.display().to_string(),
        "--workers",
        "1",
        "--checkpoint-every",
        "16",
    ]);
    assert!(out.status.success(), "resume failed: {out:?}");
    assert!(stdout(&out).contains("(resumed)"));

    assert_eq!(
        dir_snapshot(&crashed.join("store")),
        dir_snapshot(&clean.join("store")),
        "resumed store differs from the uninterrupted run"
    );

    // Show reads a stored profile back.
    let out = run(&[
        "fleet",
        "show",
        "--dir",
        &crashed.display().to_string(),
        "--module",
        "A0",
    ]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("total budget"));

    fs::remove_dir_all(&clean).ok();
    fs::remove_dir_all(&crashed).ok();
}
