//! Integration tests for the `parbor` CLI: flag handling, `--help`, and the
//! fleet crash/resume workflow driven through the real binary.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::atomic::{AtomicU64, Ordering};

const BIN: &str = env!("CARGO_BIN_EXE_parbor");

fn run(args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        .output()
        .expect("spawn parbor binary")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("parbor-cli-{}-{tag}-{n}", std::process::id()))
}

/// Every file under `root`, as sorted (relative path, contents) pairs.
fn dir_snapshot(root: &Path) -> Vec<(String, Vec<u8>)> {
    fn walk(dir: &Path, root: &Path, out: &mut Vec<(String, Vec<u8>)>) {
        for entry in fs::read_dir(dir).expect("read_dir") {
            let path = entry.expect("entry").path();
            if path.is_dir() {
                walk(&path, root, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("under root")
                    .to_string_lossy()
                    .into_owned();
                out.push((rel, fs::read(&path).expect("read file")));
            }
        }
    }
    let mut out = Vec::new();
    walk(root, root, &mut out);
    out.sort();
    out
}

#[test]
fn help_documents_the_mode_flags() {
    for args in [&["--help"][..], &["-h"], &["detect", "--help"]] {
        let out = run(args);
        assert!(out.status.success(), "{args:?} must exit 0");
        let text = stdout(&out);
        assert!(text.contains("--parallel auto|always|never"), "{args:?}");
        assert!(text.contains("--kernel stencil|reference"), "{args:?}");
        assert!(text.contains("fleet run"), "{args:?}");
    }
}

#[test]
fn mode_flags_are_accepted_and_do_not_change_results() {
    let base = run(&["detect", "--vendor", "B", "--rows", "48", "--chips", "1"]);
    assert!(base.status.success());
    let base_head: Vec<String> = stdout(&base).lines().take(7).map(String::from).collect();
    assert!(base_head.iter().any(|l| l.starts_with("victims")));

    for modes in [
        &["--parallel", "never", "--kernel", "reference"][..],
        &["--parallel", "always", "--kernel", "stencil"],
        &["--parallel", "auto"],
    ] {
        let mut args = vec!["detect", "--vendor", "B", "--rows", "48", "--chips", "1"];
        args.extend_from_slice(modes);
        let out = run(&args);
        assert!(out.status.success(), "{modes:?} must succeed");
        let head: Vec<String> = stdout(&out).lines().take(7).map(String::from).collect();
        assert_eq!(head, base_head, "{modes:?} changed detection results");
    }
}

#[test]
fn bad_mode_values_are_rejected() {
    for args in [
        &["detect", "--rows", "48", "--parallel", "sometimes"][..],
        &["detect", "--rows", "48", "--kernel", "magic"],
    ] {
        let out = run(args);
        assert!(!out.status.success(), "{args:?} must fail");
    }
}

/// A scratch working directory with a `results/` subdir so `detect` can
/// write its trace without touching the repo checkout.
fn scratch_cwd(tag: &str) -> PathBuf {
    let dir = temp_dir(tag);
    fs::create_dir_all(dir.join("results")).expect("create scratch cwd");
    dir
}

fn run_in(cwd: &Path, args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("spawn parbor binary")
}

#[test]
fn help_documents_the_backend_flags() {
    let out = run(&["--help"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("--backend sim|replay:PATH"), "{text}");
    assert!(text.contains("--record PATH"), "{text}");
    assert!(text.contains("--inject rate=P,seed=S"), "{text}");
}

#[test]
fn detect_record_then_replay_reproduces_the_report() {
    let cwd = scratch_cwd("detect-replay");
    let transcript = cwd.join("run.jsonl");
    let base = &["detect", "--vendor", "B", "--rows", "32", "--chips", "1"][..];

    let mut args = base.to_vec();
    let t = transcript.display().to_string();
    args.extend_from_slice(&["--record", &t]);
    let recorded = run_in(&cwd, &args);
    assert!(recorded.status.success(), "record run failed: {recorded:?}");
    let header = fs::read_to_string(&transcript).expect("transcript written");
    assert!(header.contains("PBHALTR1"), "transcript missing magic");

    let replay_backend = format!("replay:{t}");
    let mut args = base.to_vec();
    args.extend_from_slice(&["--backend", &replay_backend]);
    let replayed = run_in(&cwd, &args);
    assert!(replayed.status.success(), "replay run failed: {replayed:?}");

    let head =
        |out: &Output| -> Vec<String> { stdout(out).lines().take(7).map(String::from).collect() };
    assert_eq!(
        head(&recorded),
        head(&replayed),
        "replayed report differs from the recorded run"
    );

    fs::remove_dir_all(&cwd).ok();
}

#[test]
fn fleet_record_then_replay_produces_a_byte_identical_store() {
    let cwd = scratch_cwd("fleet-replay");
    let transcripts = cwd.join("transcripts");
    let base = |dir: &str| -> Vec<String> {
        [
            "fleet",
            "run",
            "--dir",
            dir,
            "--vendors",
            "A,B",
            "--rows",
            "32",
            "--workers",
            "1",
        ]
        .map(String::from)
        .to_vec()
    };

    let mut args = base("recorded");
    args.extend(["--record".to_string(), transcripts.display().to_string()]);
    let out = Command::new(BIN)
        .args(&args)
        .current_dir(&cwd)
        .output()
        .expect("recorded fleet run");
    assert!(out.status.success(), "recorded run failed: {out:?}");
    assert!(transcripts.join("A0.jsonl").is_file());
    assert!(transcripts.join("B0.jsonl").is_file());

    let mut args = base("replayed");
    args.extend([
        "--backend".to_string(),
        format!("replay:{}", transcripts.display()),
    ]);
    let out = Command::new(BIN)
        .args(&args)
        .current_dir(&cwd)
        .output()
        .expect("replayed fleet run");
    assert!(out.status.success(), "replayed run failed: {out:?}");

    assert_eq!(
        dir_snapshot(&cwd.join("recorded").join("store")),
        dir_snapshot(&cwd.join("replayed").join("store")),
        "replayed store differs from the recorded run"
    );

    fs::remove_dir_all(&cwd).ok();
}

#[test]
fn inject_changes_results_deterministically() {
    let cwd = scratch_cwd("inject");
    let base = &["detect", "--vendor", "B", "--rows", "32", "--chips", "1"][..];
    let clean = run_in(&cwd, base);
    assert!(clean.status.success());

    let mut args = base.to_vec();
    args.extend_from_slice(&["--inject", "rate=0.002,seed=11"]);
    let injected = run_in(&cwd, &args);
    assert!(
        injected.status.success(),
        "injected run failed: {injected:?}"
    );
    let injected_again = run_in(&cwd, &args);
    assert!(injected_again.status.success());

    let failures = |out: &Output| -> String {
        stdout(out)
            .lines()
            .find(|l| l.starts_with("failures found"))
            .expect("failures line")
            .to_string()
    };
    assert_ne!(
        failures(&clean),
        failures(&injected),
        "injection at rate=0.002 must change the failure count"
    );
    assert_eq!(
        failures(&injected),
        failures(&injected_again),
        "same injection seed must reproduce the same failures"
    );

    fs::remove_dir_all(&cwd).ok();
}

#[test]
fn bad_backend_and_inject_specs_are_rejected() {
    for args in [
        &["detect", "--rows", "32", "--backend", "fpga"][..],
        &["detect", "--rows", "32", "--backend", "replay:"],
        &["detect", "--rows", "32", "--inject", "rate=2,seed=1"],
        &["detect", "--rows", "32", "--inject", "seed=1"],
        &[
            "detect",
            "--rows",
            "32",
            "--inject",
            "rate=0.1,seed=1,volume=9",
        ],
    ] {
        let out = run(args);
        assert!(!out.status.success(), "{args:?} must fail");
    }
}

#[test]
fn fleet_crash_resume_store_is_byte_identical_to_clean_run() {
    let clean = temp_dir("fleet-clean");
    let crashed = temp_dir("fleet-crash");
    let jobs = |dir: &Path| {
        vec![
            "fleet".to_string(),
            "run".to_string(),
            "--dir".to_string(),
            dir.display().to_string(),
            "--vendors".to_string(),
            "A,B".to_string(),
            "--modules".to_string(),
            "1".to_string(),
            "--rows".to_string(),
            "48".to_string(),
            "--workers".to_string(),
            "1".to_string(),
            "--checkpoint-every".to_string(),
            "16".to_string(),
        ]
    };

    let out = Command::new(BIN)
        .args(jobs(&clean))
        .output()
        .expect("clean run");
    assert!(out.status.success(), "clean run failed: {out:?}");

    // Kill the fleet after two checkpoints, mid-scan.
    let mut crash_args = jobs(&crashed);
    crash_args.extend(["--crash-after".to_string(), "2".to_string()]);
    let out = Command::new(BIN)
        .args(crash_args)
        .output()
        .expect("crash run");
    assert_eq!(
        out.status.code(),
        Some(42),
        "crash hook must exit with the sentinel code"
    );

    // The journal survives and status sees the in-flight jobs.
    let out = run(&["fleet", "status", "--dir", &crashed.display().to_string()]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("in-flight"), "{}", stdout(&out));

    // Resume and compare the stores byte for byte.
    let out = run(&[
        "fleet",
        "resume",
        "--dir",
        &crashed.display().to_string(),
        "--workers",
        "1",
        "--checkpoint-every",
        "16",
    ]);
    assert!(out.status.success(), "resume failed: {out:?}");
    assert!(stdout(&out).contains("(resumed)"));

    assert_eq!(
        dir_snapshot(&crashed.join("store")),
        dir_snapshot(&clean.join("store")),
        "resumed store differs from the uninterrupted run"
    );

    // Show reads a stored profile back.
    let out = run(&[
        "fleet",
        "show",
        "--dir",
        &crashed.display().to_string(),
        "--module",
        "A0",
    ]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("total budget"));

    fs::remove_dir_all(&clean).ok();
    fs::remove_dir_all(&crashed).ok();
}

#[test]
fn obs_report_prints_stage_table_and_writes_folded_stacks() {
    let cwd = scratch_cwd("obs-report");
    let detect = run_in(
        &cwd,
        &["detect", "--vendor", "A", "--rows", "48", "--chips", "1"],
    );
    assert!(detect.status.success(), "detect failed: {detect:?}");

    let out = run_in(&cwd, &["obs", "report"]);
    assert!(
        out.status.success(),
        "obs report failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("pipeline.discover"), "{text}");
    assert!(text.contains("self%"), "{text}");

    let folded = fs::read_to_string(cwd.join("results/profile.folded")).expect("folded stacks");
    assert!(
        folded
            .lines()
            .any(|l| l.starts_with("pipeline.run;pipeline.discover ")),
        "folded stacks must nest stages under pipeline.run:\n{folded}"
    );
    // Every folded line is `semicolon-joined-stack <self_us>`.
    for line in folded.lines() {
        let (stack, n) = line.rsplit_once(' ').expect("stack and count");
        assert!(!stack.is_empty() && n.parse::<u64>().is_ok(), "{line}");
    }
    fs::remove_dir_all(&cwd).ok();
}

#[test]
fn help_documents_the_serve_subcommand() {
    let out = run(&["--help"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("serve"), "{text}");
    assert!(text.contains("--engine inline|threads"), "{text}");
    assert!(text.contains("--mode open|closed"), "{text}");
}

#[test]
fn serve_closed_loop_balances_the_ledger_and_writes_status() {
    let cwd = scratch_cwd("serve-closed");
    let out = run_in(
        &cwd,
        &[
            "serve",
            "--rows",
            "8",
            "--cols",
            "1024",
            "--seconds",
            "0.05",
            "--status-out",
            "results/serve_status.json",
        ],
    );
    assert!(out.status.success(), "serve failed: {out:?}");
    let text = stdout(&out);
    assert!(text.contains("serve OK:"), "{text}");
    assert!(text.contains("unexplained=0"), "{text}");
    let status =
        fs::read_to_string(cwd.join("results/serve_status.json")).expect("status JSON written");
    assert!(status.contains("\"clean_shutdown\": true"), "{status}");
    assert!(status.contains("\"per_worker\""), "{status}");
    fs::remove_dir_all(&cwd).ok();
}

#[test]
fn serve_from_fleet_store_restricts_to_profiled_rows() {
    let cwd = scratch_cwd("serve-store");
    let dir = cwd.join("fleet").display().to_string();
    let ran = run_in(
        &cwd,
        &[
            "fleet",
            "run",
            "--dir",
            &dir,
            "--vendors",
            "A",
            "--modules",
            "1",
            "--rows",
            "32",
            "--cols",
            "1024",
            "--workers",
            "1",
        ],
    );
    assert!(ran.status.success(), "fleet run failed: {ran:?}");

    let store = format!("{dir}/store");
    // 1024 columns keeps the fault population sparse enough that some rows
    // have no failing cell — the profiled scope must shrink below the
    // ground-truth row count.
    let common = &[
        "--vendors",
        "A",
        "--modules",
        "1",
        "--rows",
        "32",
        "--cols",
        "1024",
        "--seconds",
        "0.05",
    ][..];
    let stencils = |out: &Output| -> u64 {
        stdout(out)
            .lines()
            .find(|l| l.starts_with("serve:"))
            .and_then(|l| l.split_whitespace().nth(3))
            .and_then(|n| n.parse().ok())
            .expect("serve header with stencil count")
    };

    let mut args = vec!["serve"];
    args.extend_from_slice(common);
    let ground_truth = run_in(&cwd, &args);
    assert!(ground_truth.status.success(), "{ground_truth:?}");
    assert_eq!(
        stencils(&ground_truth),
        32,
        "ground truth compiles every row"
    );

    args.extend_from_slice(&["--store", &store]);
    let profiled = run_in(&cwd, &args);
    assert!(profiled.status.success(), "{profiled:?}");
    assert!(stdout(&profiled).contains("serve OK:"), "{profiled:?}");
    assert!(
        stencils(&profiled) < 32,
        "store-backed scope must track fewer rows than ground truth"
    );
    fs::remove_dir_all(&cwd).ok();
}

#[test]
fn fleet_top_once_renders_the_status_surface() {
    let cwd = scratch_cwd("fleet-top");
    let dir = cwd.join("fleet").display().to_string();

    // Before any campaign there is no surface; --once says so and fails.
    let missing = run_in(&cwd, &["fleet", "top", "--dir", &dir, "--once"]);
    assert!(!missing.status.success(), "must fail without status.json");

    let ran = run_in(
        &cwd,
        &[
            "fleet",
            "run",
            "--dir",
            &dir,
            "--vendors",
            "A",
            "--modules",
            "1",
            "--rows",
            "48",
            "--workers",
            "1",
        ],
    );
    assert!(ran.status.success(), "fleet run failed: {ran:?}");

    let out = run_in(&cwd, &["fleet", "top", "--dir", &dir, "--once"]);
    assert!(
        out.status.success(),
        "fleet top failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("fleet done"), "{text}");
    assert!(text.contains("1/1 jobs done"), "{text}");
    assert!(text.contains("rounds/s"), "{text}");
    assert!(text.contains("eta"), "{text}");
    fs::remove_dir_all(&cwd).ok();
}
