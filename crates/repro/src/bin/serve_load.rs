//! # serve_load — standalone load generator for the profile-query service
//!
//! Drives `parbor-serve` with the same flag schema as `parbor serve` (see
//! `parbor_repro::servecli`), prints the grep-stable two-line summary, and
//! writes the full JSON [`LoadReport`](parbor_serve::LoadReport) to `--out`
//! (default `results/serve_load.json`).
//!
//! ```text
//! serve_load [--vendors A,B] [--modules N] [--rows N] [--cols N]
//!            [--store DIR] [--workers N] [--engine inline|threads]
//!            [--mode open|closed] [--rate R] [--inflight N] [--seconds S]
//!            [--out FILE]
//! ```
//!
//! Exit status is non-zero if any accepted request vanished without a reply
//! (`unexplained_drops > 0`), so CI can gate on the ledger balancing.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::process::ExitCode;

use parbor_obs::{RecorderHandle, ShardedRecorder};

fn parse_flags(argv: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument {arg} (expected --flag value)"));
        };
        let Some(value) = it.next() else {
            return Err(format!("--{name} needs a value"));
        };
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn run(flags: &HashMap<String, String>) -> Result<bool, String> {
    let setup = parbor_repro::servecli::setup(flags)?;
    eprintln!(
        "serve_load: {} module(s), {} stencil(s), {} worker(s), {:?} engine",
        setup.snapshot.module_count(),
        setup.snapshot.stencil_count(),
        setup.config.workers,
        setup.engine,
    );
    let recorder = ShardedRecorder::handle();
    let report = parbor_serve::run(
        setup.snapshot,
        &setup.config,
        setup.engine,
        &setup.load,
        RecorderHandle::from(recorder.clone()),
    );
    print!("{}", parbor_repro::servecli::summary(&report));
    let out = flags
        .get("out")
        .map(String::as_str)
        .unwrap_or("results/serve_load.json");
    if let Some(parent) = std::path::Path::new(out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
        }
    }
    let mut json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    json.push('\n');
    std::fs::write(out, json).map_err(|e| e.to_string())?;
    println!("report written   : {out}");
    Ok(report.clean_shutdown)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse_flags(&argv).and_then(|flags| run(&flags)) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("serve_load: ledger imbalance — accepted requests vanished");
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("serve_load: {msg}");
            ExitCode::FAILURE
        }
    }
}
