//! Beyond the paper: would SECDED ECC absorb the data-dependent failures
//! PARBOR uncovers? (The paper's intro motivates system-level detection
//! partly by failures that escape manufacturing tests on ECC machines.)
//!
//! SECDED corrects one failing bit per 64-bit word — so sparse failures
//! hide behind ECC, while words with ≥ 2 data-dependent cells are standing
//! data-loss hazards whenever the worst-case content lands.

use std::collections::HashMap;

use parbor_core::{Parbor, ParborConfig};
use parbor_dram::ecc::EccAnalysis;
use parbor_dram::{ChipGeometry, Vendor};
use parbor_repro::{build_module, table_row};

fn main() {
    let _timer = parbor_repro::FigureTimer::start("ecc_analysis");
    let geometry = ChipGeometry::new(1, 256, 8192).expect("valid geometry");
    println!("SECDED (72,64) analysis of PARBOR-found failures\n");
    let widths = [7usize, 10, 13, 15, 14];
    println!(
        "{}",
        table_row(
            [
                "vendor",
                "failures",
                "correctable",
                "uncorrectable",
                "uncorr words%"
            ]
            .map(String::from)
            .as_ref(),
            &widths
        )
    );
    for vendor in Vendor::ALL {
        let mut module = build_module(vendor, 1, geometry).expect("module builds");
        let report = Parbor::new(ParborConfig::default())
            .run(&mut module)
            .expect("pipeline runs");
        // Group the failing bits per (chip, row) and analyze word structure.
        let mut per_row: HashMap<(u32, u32, u32), Vec<u32>> = HashMap::new();
        for &(unit, addr) in report.chipwide.failing.keys() {
            per_row
                .entry((unit, addr.bank, addr.row))
                .or_default()
                .push(addr.col);
        }
        let mut total = EccAnalysis::default();
        for cols in per_row.values() {
            total.merge(&EccAnalysis::of_row_failures(cols));
        }
        let words = total.correctable_words + total.uncorrectable_words;
        println!(
            "{}",
            table_row(
                &[
                    vendor.to_string(),
                    total.failing_bits.to_string(),
                    total.correctable_words.to_string(),
                    total.uncorrectable_words.to_string(),
                    format!(
                        "{:.1}%",
                        total.uncorrectable_words as f64 * 100.0 / words.max(1) as f64
                    ),
                ],
                &widths
            )
        );
    }
    println!(
        "\ncorrectable = one failing bit in the 64-bit word (ECC hides it);\n\
         uncorrectable = >=2 failing bits in a word: silent-data-loss hazard\n\
         that only neighbor-aware testing reveals before deployment"
    );
}
