//! Ablation: running the DC-REF study with the Table 2 LLC in the loop
//! (pre-LLC traces filtered through a 512 KiB/core write-back cache) versus
//! the default post-LLC trace pipeline.
//!
//! The cache absorbs reuse, lowering memory intensity and with it the
//! absolute benefit of refresh reduction — but the policy ordering
//! (baseline < RAIDR < DC-REF) must survive.

use parbor_memsim::{LlcConfig, RefreshPolicyKind, Simulation, SystemConfig};
use parbor_workloads::paper_mixes;

fn main() {
    let _timer = parbor_repro::FigureTimer::start("ablation_llc");
    let cycles = 400_000;
    let mix = &paper_mixes(1, 8, 7)[0];
    println!("Ablation: LLC in the simulation loop ({})\n", mix.label());
    for (label, llc) in [
        ("post-LLC traces (default)", None),
        ("with 512KiB/core LLC", Some(LlcConfig::paper())),
    ] {
        let config = SystemConfig {
            llc,
            ..SystemConfig::paper()
        };
        println!("{label}:");
        let mut base = 0u64;
        for policy in [
            RefreshPolicyKind::Uniform64,
            RefreshPolicyKind::Raidr,
            RefreshPolicyKind::DcRef,
        ] {
            let report = Simulation::new(config, policy, mix, 3).run(cycles);
            if policy == RefreshPolicyKind::Uniform64 {
                base = report.total_instructions();
            }
            println!(
                "  {policy:?}: {:>9} insts ({:+.1}%), {:>7} DRAM reads, avg read latency {:>6.1} cyc",
                report.total_instructions(),
                (report.total_instructions() as f64 / base as f64 - 1.0) * 100.0,
                report.reads,
                report.avg_read_latency,
            );
        }
    }
}
