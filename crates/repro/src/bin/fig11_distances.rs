//! Regenerates **Figure 11**: the union of neighbor-region distances found
//! at each level of the recursion, for modules of vendors A, B, and C.
//!
//! Paper reference values (8 K-cell rows, levels 4096/512/64/8/1):
//! * A: L1 {0}, L2 {0}, L3 {0, ±1}, L4 {±1, ±2, ±6}, L5 {±8, ±16, ±48}
//! * B: ..., L5 {±1, ±64}
//! * C: ..., L5 {±16, ±33, ±49}

use parbor_core::{Parbor, ParborConfig};
use parbor_dram::{ChipGeometry, Vendor};
use parbor_repro::build_module;

fn main() {
    let _timer = parbor_repro::FigureTimer::start("fig11_distances");
    let geometry = ChipGeometry::new(1, 256, 8192).expect("valid geometry");
    println!("Figure 11: neighbor-region distances per recursion level\n");
    for vendor in Vendor::ALL {
        let mut module = build_module(vendor, 1, geometry).expect("module builds");
        let parbor = Parbor::new(ParborConfig::default());
        let victims = parbor.discover(&mut module).expect("victims found");
        let outcome = parbor
            .locate(&mut module, &victims)
            .expect("recursion converges");
        println!("Vendor {vendor} (module {}):", module.name());
        for (i, level) in outcome.levels.iter().enumerate() {
            println!(
                "  L{} (region {:>4} bits): {:?}",
                i + 1,
                level.region_size,
                level.kept
            );
        }
        println!("  paper L5: {:?}\n", vendor.paper_distances());
    }
}
