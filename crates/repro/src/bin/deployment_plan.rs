//! End-to-end deployment: run PARBOR on a module, persist the findings as a
//! [`FailureDirectory`], and digest them into the mitigation actions the
//! paper's introduction motivates — refresh management, ECC guardbanding,
//! and page retirement.

use parbor_core::{FailureDirectory, Parbor, ParborConfig};
use parbor_dram::{ChipGeometry, PatternKind, Vendor};
use parbor_repro::build_module;

fn main() {
    let _timer = parbor_repro::FigureTimer::start("deployment_plan");
    let geometry = ChipGeometry::new(1, 256, 8192).expect("valid geometry");
    for vendor in Vendor::ALL {
        let mut module = build_module(vendor, 1, geometry).expect("module builds");
        let report = Parbor::new(ParborConfig::default())
            .run(&mut module)
            .expect("pipeline runs");
        let directory = FailureDirectory::from_chipwide(&report.chipwide, report.distances());
        let plan = directory.plan(24); // retire rows with ≥ 24 failing cells

        let total_rows = 8 * geometry.rows_per_bank as usize;
        println!(
            "vendor {vendor}: {} failing cells across {} of {total_rows} rows",
            directory.failing_cells(),
            directory.affected_rows()
        );
        println!(
            "  fast-refresh rows : {} ({:.1}% of all rows)",
            plan.fast_refresh_rows.len(),
            plan.fast_refresh_rows.len() as f64 * 100.0 / total_rows as f64
        );
        println!(
            "  ECC hazard rows   : {} (>=2 failing bits in a 64-bit word)",
            plan.ecc_hazard_rows.len()
        );
        println!("  pages to retire   : {}", plan.retire_pages.len());

        // How many of the fast-refresh rows would DC-REF actually keep hot
        // under benign (checkerboard) content?
        let monitor = directory.dcref_monitor().expect("monitor builds");
        let hot = monitor.hot_fraction(|_, row| PatternKind::Checkerboard.row_bits(row.row, 8192));
        println!(
            "  DC-REF under checkerboard content: {:.1}% of vulnerable rows stay hot\n",
            hot * 100.0
        );
    }
}
