//! `parbor` — command-line front end to the reproduction.
//!
//! ```text
//! parbor detect  [--vendor A|B|C] [--seed N] [--rows N] [--chips N]
//! parbor census  [--vendor A|B|C] [--seed N] [--rows N]
//! parbor compare [--vendor A|B|C] [--seed N] [--rows N]
//! parbor profile [--vendor A|B|C] [--seed N] [--rows N] [--base-interval S]
//! parbor dcref   [--cycles N] [--mixes N] [--density 8|16|32]
//! ```
//!
//! Every subcommand operates on the simulated devices; see the fig*/table*
//! binaries for the exact paper reproductions.

use std::collections::HashMap;
use std::process::ExitCode;

use parbor_core::{random_pattern_test, Parbor, ParborConfig};
use parbor_dram::{
    CellCensus, Celsius, ChipGeometry, ModuleConfig, ModuleId, RetentionProfiler, RowId, Seconds,
    Vendor,
};
use parbor_memsim::{Density, RefreshPolicyKind, Simulation, SystemConfig};
use parbor_obs::{InMemoryRecorder, RecorderHandle, RunSummary};
use parbor_workloads::paper_mixes;

struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Self, String> {
        let mut flags = HashMap::new();
        let mut it = raw.iter();
        while let Some(flag) = it.next() {
            let name = flag
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {flag}"))?;
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags.insert(name.to_string(), value.clone());
        }
        Ok(Args { flags })
    }

    fn vendor(&self) -> Result<Vendor, String> {
        match self.flags.get("vendor").map(String::as_str) {
            None | Some("A") | Some("a") => Ok(Vendor::A),
            Some("B") | Some("b") => Ok(Vendor::B),
            Some("C") | Some("c") => Ok(Vendor::C),
            Some(other) => Err(format!("unknown vendor {other} (use A, B, or C)")),
        }
    }

    fn u64_or(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name} must be a number")),
        }
    }

    fn f64_or(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name} must be a number")),
        }
    }
}

fn build(
    vendor: Vendor,
    seed: u64,
    rows: u64,
    chips: u64,
) -> Result<parbor_dram::DramModule, String> {
    ModuleConfig::new(vendor)
        .geometry(ChipGeometry::new(1, rows as u32, 8192).map_err(|e| e.to_string())?)
        .chips(chips as usize)
        .seed(seed)
        .module_id(ModuleId(1))
        .build()
        .map_err(|e| e.to_string())
}

fn cmd_detect(args: &Args) -> Result<(), String> {
    let vendor = args.vendor()?;
    let recorder = InMemoryRecorder::handle();
    let rec = RecorderHandle::from(recorder.clone());
    let mut module = build(
        vendor,
        args.u64_or("seed", 1)?,
        args.u64_or("rows", 128)?,
        args.u64_or("chips", 8)?,
    )?
    .with_recorder(rec.clone());
    let report = Parbor::new(ParborConfig::default())
        .with_recorder(rec)
        .run(&mut module)
        .map_err(|e| e.to_string())?;
    println!("vendor           : {vendor}");
    println!("victims          : {}", report.victim_count);
    println!("distances        : {:?}", report.distances());
    println!(
        "tests per level  : {:?}",
        report.recursion.tests_per_level()
    );
    println!("chip-wide rounds : {}", report.chipwide.rounds);
    println!("failures found   : {}", report.failure_count());
    println!("total budget     : {} rounds", report.total_rounds());
    println!();
    print!("{}", RunSummary::from_recorder(&recorder).render());
    let trace = "results/trace.jsonl";
    recorder
        .write_trace(trace)
        .map_err(|e| format!("writing {trace}: {e}"))?;
    println!("trace written    : {trace}");
    Ok(())
}

fn cmd_census(args: &Args) -> Result<(), String> {
    let vendor = args.vendor()?;
    let rows_n = args.u64_or("rows", 128)?;
    let mut module = build(vendor, args.u64_or("seed", 1)?, rows_n, 8)?;
    let rows: Vec<RowId> = (0..rows_n as u32).map(|r| RowId::new(0, r)).collect();
    let mut census = CellCensus::default();
    for chip in module.chips_mut() {
        census.merge(&CellCensus::take(chip, &rows).map_err(|e| e.to_string())?);
    }
    println!("vendor {vendor}: {} rows x 8 chips", rows_n);
    println!("  retention-weak  : {}", census.retention_weak);
    println!("  strongly coupled: {}", census.strongly_coupled);
    println!("  weakly coupled  : {}", census.weakly_coupled);
    println!("  deep coupled    : {}", census.deep_coupled);
    println!("  marginal        : {}", census.marginal);
    println!("  vrt             : {}", census.vrt);
    println!("  coupling BER    : {:.2e}", census.coupling_ber());
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let vendor = args.vendor()?;
    let seed = args.u64_or("seed", 1)?;
    let rows_n = args.u64_or("rows", 128)?;
    let mut module = build(vendor, seed, rows_n, 8)?;
    let parbor = Parbor::new(ParborConfig::default());
    let report = parbor.run(&mut module).map_err(|e| e.to_string())?;
    let budget = report.total_rounds();
    let mut fresh = build(vendor, seed, rows_n, 8)?;
    let rows: Vec<RowId> = (0..rows_n as u32).map(|r| RowId::new(0, r)).collect();
    let random = random_pattern_test(&mut fresh, &rows, budget, 0xC0).map_err(|e| e.to_string())?;
    let p = report.chipwide.failing_bits();
    let only_p = p.difference(&random.failing).count();
    println!("vendor {vendor}, budget {budget} rounds each");
    println!("  PARBOR failures : {}", p.len());
    println!("  random failures : {}", random.failure_count());
    println!(
        "  only PARBOR     : {} ({:+.1}% over random)",
        only_p,
        only_p as f64 * 100.0 / random.failure_count().max(1) as f64
    );
    Ok(())
}

fn cmd_profile(args: &Args) -> Result<(), String> {
    let vendor = args.vendor()?;
    let rows_n = args.u64_or("rows", 128)?;
    let base = Seconds(args.f64_or("base-interval", 2.0)?);
    let mut module = build(vendor, args.u64_or("seed", 1)?, rows_n, 1)?;
    let rows: Vec<RowId> = (0..rows_n as u32).map(|r| RowId::new(0, r)).collect();
    let profiler = RetentionProfiler::raidr(base, 3).map_err(|e| e.to_string())?;
    let profile = profiler
        .profile(&mut module.chips_mut()[0], &rows, Celsius(45.0))
        .map_err(|e| e.to_string())?;
    println!("vendor {vendor}: retention ladder from {base}");
    for (interval, frac) in profile
        .intervals()
        .iter()
        .zip(profile.cumulative_fail_fractions())
    {
        println!("  <= {interval}: {:.1}% of rows fail", frac * 100.0);
    }
    Ok(())
}

fn cmd_dcref(args: &Args) -> Result<(), String> {
    let cycles = args.u64_or("cycles", 300_000)?;
    let n_mixes = args.u64_or("mixes", 4)? as usize;
    let density = match args.u64_or("density", 32)? {
        8 => Density::Gb8,
        16 => Density::Gb16,
        32 => Density::Gb32,
        other => return Err(format!("unsupported density {other} (use 8, 16, or 32)")),
    };
    let config = SystemConfig {
        density,
        ..SystemConfig::paper()
    };
    let mixes = paper_mixes(n_mixes, 8, 2016);
    let mut sums = [0u64; 3];
    for mix in &mixes {
        for (i, policy) in [
            RefreshPolicyKind::Uniform64,
            RefreshPolicyKind::Raidr,
            RefreshPolicyKind::DcRef,
        ]
        .into_iter()
        .enumerate()
        {
            sums[i] += Simulation::new(config, policy, mix, 9)
                .run(cycles)
                .total_instructions();
        }
    }
    println!("{density:?}, {n_mixes} mixes, {cycles} memory cycles each:");
    println!("  baseline : {} instructions", sums[0]);
    println!(
        "  RAIDR    : {} ({:+.1}%)",
        sums[1],
        (sums[1] as f64 / sums[0] as f64 - 1.0) * 100.0
    );
    println!(
        "  DC-REF   : {} ({:+.1}%)",
        sums[2],
        (sums[2] as f64 / sums[0] as f64 - 1.0) * 100.0
    );
    Ok(())
}

const USAGE: &str = "usage: parbor <detect|census|compare|profile|dcref> [--flag value]...
  detect   run the full PARBOR pipeline on a simulated module
  census   device-side cell-class census (ground truth)
  compare  PARBOR vs equal-budget random-pattern testing
  profile  RAIDR-style retention-interval ladder
  dcref    refresh-policy performance comparison
common flags: --vendor A|B|C  --seed N  --rows N  --chips N
dcref flags : --cycles N  --mixes N  --density 8|16|32";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let args = match Args::parse(&argv[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "detect" => cmd_detect(&args),
        "census" => cmd_census(&args),
        "compare" => cmd_compare(&args),
        "profile" => cmd_profile(&args),
        "dcref" => cmd_dcref(&args),
        other => Err(format!("unknown command {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
