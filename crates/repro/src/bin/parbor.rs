//! `parbor` — command-line front end to the reproduction.
//!
//! ```text
//! parbor detect  [--vendor A|B|C] [--seed N] [--rows N] [--chips N]
//! parbor efficacy [--vendors A,B,C] [--mechanisms SPEC] [--out FILE]
//! parbor census  [--vendor A|B|C] [--seed N] [--rows N]
//! parbor compare [--vendor A|B|C] [--seed N] [--rows N]
//! parbor profile [--vendor A|B|C] [--seed N] [--rows N] [--base-interval S]
//! parbor dcref   [--cycles N] [--mixes N] [--density 8|16|32]
//! parbor fleet   <run|resume|status|show|top> [--dir D] [--flag value]...
//! parbor store   <stats|compact|aggregate> [--dir D] [--flag value]...
//! parbor serve   [--store D] [--workers N] [--engine inline|threads]
//!                [--mode open|closed] [--rate R] [--inflight N] [--seconds S]
//! parbor obs     report [--trace F] [--out F]
//! ```
//!
//! `--parallel auto|always|never` and `--kernel stencil|reference` apply to
//! every device-building subcommand. `detect` and `fleet run`/`fleet resume`
//! additionally accept `--backend sim|replay:<path>`, `--record <path>`,
//! `--record-format json|binary`, and `--inject rate=<p>,seed=<s>` to swap
//! or decorate the test-port backend.
//! Every subcommand defaults to the simulated devices; see the fig*/table*
//! binaries for the exact paper reproductions.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

use parbor_core::{random_pattern_test, run_efficacy, EfficacyConfig, Parbor, ParborConfig};
use parbor_dram::{
    CellCensus, Celsius, ChipGeometry, ModuleConfig, ModuleId, ModuleSpec, RetentionProfiler,
    RowId, Seconds, Vendor,
};
use parbor_fleet::{Fleet, FleetConfig, ProfileStore, ScanJob, CRASH_EXIT_CODE};
use parbor_hal::{
    FaultInjectingPort, InjectionConfig, KernelMode, MechanismSpec, ParallelMode, RecordingPort,
    ReplayPort, TestPort, TranscriptFormat,
};
use parbor_memsim::{Density, RefreshPolicyKind, Simulation, SystemConfig};
use parbor_obs::{
    folded_stacks, trace, FleetStatus, InMemoryRecorder, Profile, RecorderHandle, RunSummary,
    ShardedRecorder, Trace,
};
use parbor_store::CompactPhase;
use parbor_workloads::paper_mixes;

struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Self, String> {
        let mut flags = HashMap::new();
        let mut it = raw.iter();
        while let Some(flag) = it.next() {
            let name = flag
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {flag}"))?;
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags.insert(name.to_string(), value.clone());
        }
        Ok(Args { flags })
    }

    fn vendor(&self) -> Result<Vendor, String> {
        match self.flags.get("vendor").map(String::as_str) {
            None | Some("A") | Some("a") => Ok(Vendor::A),
            Some("B") | Some("b") => Ok(Vendor::B),
            Some("C") | Some("c") => Ok(Vendor::C),
            Some(other) => Err(format!("unknown vendor {other} (use A, B, or C)")),
        }
    }

    fn u64_or(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name} must be a number")),
        }
    }

    fn f64_or(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name} must be a number")),
        }
    }

    fn u64_opt(&self, name: &str) -> Result<Option<u64>, String> {
        match self.flags.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{name} must be a number")),
        }
    }

    fn parallel_mode(&self) -> Result<ParallelMode, String> {
        match self.flags.get("parallel") {
            None => Ok(ParallelMode::Auto),
            Some(v) => v.parse().map_err(|e: parbor_dram::DramError| e.to_string()),
        }
    }

    fn kernel_mode(&self) -> Result<KernelMode, String> {
        match self.flags.get("kernel") {
            None => Ok(KernelMode::Stencil),
            Some(v) => v.parse().map_err(|e: parbor_dram::DramError| e.to_string()),
        }
    }

    fn backend(&self) -> Result<Backend, String> {
        match self.flags.get("backend").map(String::as_str) {
            None | Some("sim") => Ok(Backend::Sim),
            Some(v) => match v.strip_prefix("replay:") {
                Some(path) if !path.is_empty() => Ok(Backend::Replay(PathBuf::from(path))),
                _ => Err(format!("unknown backend {v} (use sim or replay:<path>)")),
            },
        }
    }

    fn record_format(&self) -> Result<TranscriptFormat, String> {
        match self.flags.get("record-format") {
            None => Ok(TranscriptFormat::default()),
            Some(v) => v.parse().map_err(|e: parbor_dram::DramError| e.to_string()),
        }
    }

    fn inject(&self) -> Result<Option<InjectionConfig>, String> {
        match self.flags.get("inject") {
            None => Ok(None),
            Some(spec) => InjectionConfig::parse(spec)
                .map(Some)
                .map_err(|e| e.to_string()),
        }
    }

    /// The `--mechanisms` stack (`hammer=thresh:50k,seed:7;press;drift`),
    /// empty when the flag is absent.
    fn mechanisms(&self) -> Result<Vec<MechanismSpec>, String> {
        match self.flags.get("mechanisms") {
            None => Ok(Vec::new()),
            Some(spec) => MechanismSpec::parse_stack(spec).map_err(|e| e.to_string()),
        }
    }
}

/// Which [`TestPort`] implementation backs a run.
enum Backend {
    /// The deterministic DRAM simulator (the default).
    Sim,
    /// A recorded transcript — a file for `detect`, a directory of
    /// `<job>.jsonl`/`<job>.pbt` transcripts for `fleet`.
    Replay(PathBuf),
}

fn build(args: &Args, default_chips: u64) -> Result<parbor_dram::DramModule, String> {
    let rows = args.u64_or("rows", 128)?;
    let mut module = ModuleConfig::new(args.vendor()?)
        .geometry(ChipGeometry::new(1, rows as u32, 8192).map_err(|e| e.to_string())?)
        .chips(args.u64_or("chips", default_chips)? as usize)
        .seed(args.u64_or("seed", 1)?)
        .module_id(ModuleId(1))
        .mechanisms(args.mechanisms()?)
        .build()
        .map_err(|e| e.to_string())?;
    module.set_parallel_mode(args.parallel_mode()?);
    module.set_kernel_mode(args.kernel_mode()?);
    Ok(module)
}

/// Builds the stack of port decorators selected by `--backend`, `--inject`,
/// and `--record` around the base backend (innermost to outermost:
/// backend → fault injection → recording).
fn build_port(args: &Args, default_chips: u64) -> Result<Box<dyn TestPort>, String> {
    let mut port: Box<dyn TestPort> = match args.backend()? {
        Backend::Sim => Box::new(build(args, default_chips)?),
        Backend::Replay(path) => Box::new(ReplayPort::open(path).map_err(|e| e.to_string())?),
    };
    if let Some(config) = args.inject()? {
        port = Box::new(FaultInjectingPort::new(port, config));
    }
    if let Some(path) = args.flags.get("record") {
        port = Box::new(
            RecordingPort::create_with_format(port, path, args.record_format()?)
                .map_err(|e| e.to_string())?,
        );
    }
    Ok(port)
}

fn cmd_detect(args: &Args) -> Result<(), String> {
    let vendor = args.vendor()?;
    let recorder = ShardedRecorder::handle();
    let rec = RecorderHandle::from(recorder.clone());
    let mut port = build_port(args, 8)?;
    port.set_recorder(rec.clone());
    let report = Parbor::new(ParborConfig::default())
        .with_recorder(rec)
        .run(&mut *port)
        .map_err(|e| e.to_string())?;
    println!("vendor           : {vendor}");
    println!("victims          : {}", report.victim_count);
    println!("distances        : {:?}", report.distances());
    println!(
        "tests per level  : {:?}",
        report.recursion.tests_per_level()
    );
    println!("chip-wide rounds : {}", report.chipwide.rounds);
    println!("failures found   : {}", report.failure_count());
    println!("total budget     : {} rounds", report.total_rounds());
    println!();
    let snapshot = recorder.snapshot();
    print!("{}", RunSummary::from_snapshot(&snapshot).render());
    let trace_path = "results/trace.jsonl";
    let rotated = snapshot
        .write_trace_rotating(trace_path, trace::DEFAULT_TRACE_CAP_BYTES)
        .map_err(|e| format!("writing {trace_path}: {e}"))?;
    if rotated {
        println!("trace rotated    : {trace_path}.1");
    }
    println!("trace written    : {trace_path}");
    Ok(())
}

/// `parbor efficacy` — run the full pipeline against every mechanism ×
/// vendor family and score the chip-wide detection set per cell.
fn cmd_efficacy(args: &Args) -> Result<(), String> {
    let vendors = parse_vendors(
        args.flags
            .get("vendors")
            .map(String::as_str)
            .unwrap_or("A,B,C"),
    )?;
    let rows = args.u64_or("rows", 128)? as u32;
    let cols = args.u64_or("cols", 1024)? as u32;
    let extras = match args.flags.get("mechanisms") {
        None => MechanismSpec::parse_stack("hammer;press;drift").map_err(|e| e.to_string())?,
        Some(spec) => MechanismSpec::parse_stack(spec).map_err(|e| e.to_string())?,
    };
    let config = EfficacyConfig {
        vendors,
        geometry: ChipGeometry::new(1, rows, cols).map_err(|e| e.to_string())?,
        chips: args.u64_or("chips", 1)? as usize,
        seed: args.u64_or("seed", 5)?,
        extras,
        parbor: ParborConfig::default(),
    };
    let recorder = InMemoryRecorder::handle();
    let report = run_efficacy(&config, &RecorderHandle::from(recorder.clone()))
        .map_err(|e| e.to_string())?;
    println!(
        "{:<8} {:<10} {:>7} {:>9} {:>5} {:>5} {:>5} {:>10} {:>7}",
        "vendor", "mechanism", "truth", "detected", "tp", "fp", "fn", "precision", "recall"
    );
    for s in &report.scores {
        println!(
            "{:<8} {:<10} {:>7} {:>9} {:>5} {:>5} {:>5} {:>10.3} {:>7.3}{}",
            s.vendor,
            s.mechanism,
            s.truth_cells,
            s.detected_cells,
            s.true_positives,
            s.false_positives,
            s.false_negatives,
            s.precision,
            s.recall,
            s.error
                .as_deref()
                .map(|e| format!("  [pipeline: {e}]"))
                .unwrap_or_default()
        );
    }
    println!(
        "\nruns: {}  tp: {}  fp: {}  fn: {}",
        recorder.counter("efficacy.runs"),
        recorder.counter("efficacy.true_positives"),
        recorder.counter("efficacy.false_positives"),
        recorder.counter("efficacy.false_negatives"),
    );
    if let Some(path) = args.flags.get("out") {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| format!("creating {path}: {e}"))?;
            }
        }
        let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        println!("report written: {path}");
    }
    Ok(())
}

fn cmd_obs(argv: &[String]) -> Result<(), String> {
    let Some(sub) = argv.first() else {
        return Err("obs needs a subcommand: report".into());
    };
    if sub != "report" {
        return Err(format!("unknown obs subcommand {sub} (use report)"));
    }
    let args = Args::parse(&argv[1..])?;
    let trace_path = args
        .flags
        .get("trace")
        .cloned()
        .unwrap_or_else(|| "results/trace.jsonl".to_string());
    let out_path = args
        .flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "results/profile.folded".to_string());
    let trace = Trace::load(&trace_path).map_err(|e| format!("reading {trace_path}: {e}"))?;
    if trace.salvaged {
        println!("note: torn final line in {trace_path} was discarded");
    }
    println!(
        "{} spans, {} counters from {trace_path}",
        trace.spans.len(),
        trace.counters.len()
    );
    println!();
    print!("{}", Profile::from_trace(&trace).table());
    let folded = folded_stacks(&trace);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(&out_path, &folded).map_err(|e| format!("writing {out_path}: {e}"))?;
    println!();
    println!("folded stacks    : {out_path} (flamegraph.pl-compatible)");
    Ok(())
}

fn cmd_census(args: &Args) -> Result<(), String> {
    let vendor = args.vendor()?;
    let rows_n = args.u64_or("rows", 128)?;
    let mut module = build(args, 8)?;
    let rows: Vec<RowId> = (0..rows_n as u32).map(|r| RowId::new(0, r)).collect();
    let mut census = CellCensus::default();
    for chip in module.chips_mut() {
        census.merge(&CellCensus::take(chip, &rows).map_err(|e| e.to_string())?);
    }
    println!("vendor {vendor}: {} rows x 8 chips", rows_n);
    println!("  retention-weak  : {}", census.retention_weak);
    println!("  strongly coupled: {}", census.strongly_coupled);
    println!("  weakly coupled  : {}", census.weakly_coupled);
    println!("  deep coupled    : {}", census.deep_coupled);
    println!("  marginal        : {}", census.marginal);
    println!("  vrt             : {}", census.vrt);
    println!("  coupling BER    : {:.2e}", census.coupling_ber());
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let vendor = args.vendor()?;
    let rows_n = args.u64_or("rows", 128)?;
    let mut module = build(args, 8)?;
    let parbor = Parbor::new(ParborConfig::default());
    let report = parbor.run(&mut module).map_err(|e| e.to_string())?;
    let budget = report.total_rounds();
    let mut fresh = build(args, 8)?;
    let rows: Vec<RowId> = (0..rows_n as u32).map(|r| RowId::new(0, r)).collect();
    let random = random_pattern_test(&mut fresh, &rows, budget, 0xC0).map_err(|e| e.to_string())?;
    let p = report.chipwide.failing_bits();
    let only_p = p.difference(&random.failing).count();
    println!("vendor {vendor}, budget {budget} rounds each");
    println!("  PARBOR failures : {}", p.len());
    println!("  random failures : {}", random.failure_count());
    println!(
        "  only PARBOR     : {} ({:+.1}% over random)",
        only_p,
        only_p as f64 * 100.0 / random.failure_count().max(1) as f64
    );
    Ok(())
}

fn cmd_profile(args: &Args) -> Result<(), String> {
    let vendor = args.vendor()?;
    let rows_n = args.u64_or("rows", 128)?;
    let base = Seconds(args.f64_or("base-interval", 2.0)?);
    let mut module = build(args, 1)?;
    let rows: Vec<RowId> = (0..rows_n as u32).map(|r| RowId::new(0, r)).collect();
    let profiler = RetentionProfiler::raidr(base, 3).map_err(|e| e.to_string())?;
    let profile = profiler
        .profile(&mut module.chips_mut()[0], &rows, Celsius(45.0))
        .map_err(|e| e.to_string())?;
    println!("vendor {vendor}: retention ladder from {base}");
    for (interval, frac) in profile
        .intervals()
        .iter()
        .zip(profile.cumulative_fail_fractions())
    {
        println!("  <= {interval}: {:.1}% of rows fail", frac * 100.0);
    }
    Ok(())
}

fn cmd_dcref(args: &Args) -> Result<(), String> {
    let cycles = args.u64_or("cycles", 300_000)?;
    let n_mixes = args.u64_or("mixes", 4)? as usize;
    let density = match args.u64_or("density", 32)? {
        8 => Density::Gb8,
        16 => Density::Gb16,
        32 => Density::Gb32,
        other => return Err(format!("unsupported density {other} (use 8, 16, or 32)")),
    };
    let config = SystemConfig {
        density,
        ..SystemConfig::paper()
    };
    let mixes = paper_mixes(n_mixes, 8, 2016);
    let mut sums = [0u64; 3];
    for mix in &mixes {
        for (i, policy) in [
            RefreshPolicyKind::Uniform64,
            RefreshPolicyKind::Raidr,
            RefreshPolicyKind::DcRef,
        ]
        .into_iter()
        .enumerate()
        {
            sums[i] += Simulation::new(config, policy, mix, 9)
                .run(cycles)
                .total_instructions();
        }
    }
    println!("{density:?}, {n_mixes} mixes, {cycles} memory cycles each:");
    println!("  baseline : {} instructions", sums[0]);
    println!(
        "  RAIDR    : {} ({:+.1}%)",
        sums[1],
        (sums[1] as f64 / sums[0] as f64 - 1.0) * 100.0
    );
    println!(
        "  DC-REF   : {} ({:+.1}%)",
        sums[2],
        (sums[2] as f64 / sums[0] as f64 - 1.0) * 100.0
    );
    Ok(())
}

/// Parses a comma-separated vendor list like `A,B,C`.
fn parse_vendors(list: &str) -> Result<Vec<Vendor>, String> {
    list.split(',')
        .map(|v| match v.trim() {
            "A" | "a" => Ok(Vendor::A),
            "B" | "b" => Ok(Vendor::B),
            "C" | "c" => Ok(Vendor::C),
            other => Err(format!("unknown vendor {other} (use A, B, or C)")),
        })
        .collect()
}

/// Builds the job list for `fleet run` from the CLI flags.
fn fleet_jobs(args: &Args) -> Result<Vec<ScanJob>, String> {
    let vendors = parse_vendors(
        args.flags
            .get("vendors")
            .map(String::as_str)
            .unwrap_or("A,B,C"),
    )?;
    let modules = args.u64_or("modules", 1)?;
    let chips = args.u64_or("chips", 1)? as usize;
    let rows = args.u64_or("rows", 48)? as u32;
    let cols = args.u64_or("cols", 8192)? as u32;
    let base_seed = args.u64_or("seed", 1)?;
    let geometry = ChipGeometry::new(1, rows, cols).map_err(|e| e.to_string())?;
    let mechanisms = args.mechanisms()?;
    let mechanisms = (!mechanisms.is_empty()).then_some(mechanisms);
    let mut jobs = Vec::new();
    for vendor in vendors {
        let vendor_code = match vendor {
            Vendor::A => 0u64,
            Vendor::B => 1,
            Vendor::C => 2,
        };
        for idx in 0..modules {
            let spec = ModuleSpec {
                chips,
                geometry,
                seed: base_seed + idx * 997 + vendor_code * 131_071,
                mechanisms: mechanisms.clone(),
                ..ModuleSpec::new(vendor)
            };
            jobs.push(ScanJob::new(format!("{vendor}{idx}"), spec));
        }
    }
    Ok(jobs)
}

fn fleet_config(args: &Args) -> Result<FleetConfig, String> {
    Ok(FleetConfig {
        workers: args.u64_or("workers", 2)? as usize,
        checkpoint_every: args.u64_or("checkpoint-every", 32)? as usize,
        parallel: args.parallel_mode()?,
        kernel: args.kernel_mode()?,
        crash_after_checkpoints: args.u64_opt("crash-after")?,
        halt_after_checkpoints: None,
    })
}

fn fleet_print_report(report: &parbor_fleet::FleetReport, store_dir: &std::path::Path) {
    for job in &report.jobs {
        let outcome = if let Some(err) = &job.error {
            format!("FAILED  {err}")
        } else if job.skipped {
            "skipped (already stored)".to_string()
        } else if job.halted {
            format!("halted  rounds {}", job.rounds)
        } else {
            format!(
                "done    rounds {:>5}  checkpoints {:>3}  failures {:>4}  {}{}",
                job.rounds,
                job.checkpoints,
                job.failures.unwrap_or(0),
                job.profile_hash.as_deref().unwrap_or("-"),
                if job.resumed { "  (resumed)" } else { "" },
            )
        };
        println!("  {:<8} {outcome}", job.name);
    }
    println!(
        "completed {}, skipped {}, failed {}, halted {}; {} rounds, {} checkpoint bytes",
        report.completed(),
        report.jobs.iter().filter(|j| j.skipped).count(),
        report.failed(),
        report.halted(),
        report.total_rounds(),
        report.checkpoint_bytes(),
    );
    println!("store: {}", store_dir.display());
}

/// Builds the per-job port factory for `fleet run`/`fleet resume` when any
/// backend flag is present; `None` keeps the orchestrator's built-in
/// simulator factory. Transcripts live at `<dir>/<job-name>.jsonl` (JSON) or
/// `<dir>/<job-name>.pbt` (binary, per `--record-format`) for `--record`;
/// `--backend replay:<dir>` accepts either extension and auto-detects the
/// encoding from the file itself.
fn fleet_port_factory(args: &Args) -> Result<Option<parbor_fleet::PortFactory>, String> {
    let backend = args.backend()?;
    let inject = args.inject()?;
    let record = args.flags.get("record").map(PathBuf::from);
    let format = args.record_format()?;
    if matches!(backend, Backend::Sim) && inject.is_none() && record.is_none() {
        return Ok(None);
    }
    if let Some(dir) = &record {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("creating record dir {}: {e}", dir.display()))?;
    }
    Ok(Some(Box::new(move |job: &ScanJob| {
        let mut port: Box<dyn TestPort> = match &backend {
            Backend::Sim => Box::new(job.module.build()?),
            Backend::Replay(dir) => {
                // Whichever extension the recording run used; the replay
                // port sniffs the actual encoding either way.
                let json = dir.join(format!("{}.jsonl", job.name));
                let path = if json.exists() {
                    json
                } else {
                    dir.join(format!("{}.pbt", job.name))
                };
                Box::new(ReplayPort::open(path)?)
            }
        };
        if let Some(config) = inject {
            port = Box::new(FaultInjectingPort::new(port, config));
        }
        if let Some(dir) = &record {
            port = Box::new(RecordingPort::create_with_format(
                port,
                dir.join(format!("{}.{}", job.name, format.extension())),
                format,
            )?);
        }
        Ok(port)
    })))
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let setup = parbor_repro::servecli::setup(&args.flags)?;
    println!(
        "serve: {} module(s), {} compiled stencil(s), {} worker(s)",
        setup.snapshot.module_count(),
        setup.snapshot.stencil_count(),
        setup.config.workers,
    );
    let recorder = ShardedRecorder::handle();
    let report = parbor_serve::run(
        setup.snapshot,
        &setup.config,
        setup.engine,
        &setup.load,
        RecorderHandle::from(recorder.clone()),
    );
    print!("{}", parbor_repro::servecli::summary(&report));
    if let Some(path) = args.flags.get("status-out") {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("creating {}: {e}", dir.display()))?;
            }
        }
        let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        std::fs::write(path, json + "\n").map_err(|e| format!("writing {path}: {e}"))?;
        println!("status written   : {path}");
    }
    if !report.clean_shutdown {
        return Err(format!(
            "{} accepted request(s) never produced a reply",
            report.unexplained_drops
        ));
    }
    Ok(())
}

fn cmd_fleet(argv: &[String]) -> Result<(), String> {
    let Some(sub) = argv.first() else {
        return Err("fleet needs a subcommand: run, resume, status, show, or top".into());
    };
    // `--once` is the one valueless flag; strip it before pair-wise parsing.
    let mut rest: Vec<String> = argv[1..].to_vec();
    let once = if let Some(i) = rest.iter().position(|a| a == "--once") {
        rest.remove(i);
        true
    } else {
        false
    };
    let args = Args::parse(&rest)?;
    let dir = args
        .flags
        .get("dir")
        .cloned()
        .unwrap_or_else(|| "results/fleet".to_string());
    match sub.as_str() {
        "run" | "resume" => {
            let jobs = if sub == "run" {
                fleet_jobs(&args)?
            } else {
                Vec::new()
            };
            let mut fleet = Fleet::new(&dir, fleet_config(&args)?)
                .map_err(|e| e.to_string())?
                .with_recorder(RecorderHandle::from(InMemoryRecorder::handle()));
            if let Some(factory) = fleet_port_factory(&args)? {
                fleet = fleet.with_port_factory(factory);
            }
            println!(
                "fleet {sub}: {} under {dir}",
                if sub == "run" {
                    format!("{} jobs", jobs.len())
                } else {
                    "journaled jobs".to_string()
                }
            );
            let report = if sub == "run" {
                fleet.run(jobs).map_err(|e| e.to_string())?
            } else {
                fleet.resume().map_err(|e| e.to_string())?
            };
            fleet_print_report(&report, &fleet.store_dir());
            if report.failed() > 0 {
                return Err(format!("{} job(s) failed", report.failed()));
            }
            Ok(())
        }
        "status" => {
            let fleet = Fleet::new(&dir, FleetConfig::default()).map_err(|e| e.to_string())?;
            let statuses = fleet.status().map_err(|e| e.to_string())?;
            if statuses.is_empty() {
                println!("no jobs under {dir}");
                return Ok(());
            }
            for status in statuses {
                match status.state {
                    parbor_fleet::JobState::Done => println!(
                        "  {:<8} done       rounds {:>5}  failures {}",
                        status.name,
                        status.rounds,
                        status.failures.unwrap_or(0)
                    ),
                    parbor_fleet::JobState::InFlight => println!(
                        "  {:<8} in-flight  rounds {:>5}  stage {}",
                        status.name, status.rounds, status.stage
                    ),
                }
            }
            Ok(())
        }
        "show" => {
            let name = args
                .flags
                .get("module")
                .ok_or("fleet show needs --module <name>")?;
            let store = ProfileStore::open(std::path::Path::new(&dir).join("store"))
                .map_err(|e| e.to_string())?;
            let stored = store.get(name).map_err(|e| e.to_string())?;
            let profile = &stored.profile;
            println!("module           : {name}");
            println!("victims          : {}", profile.victim_count);
            println!("distances        : {:?}", profile.distances);
            println!("tests per level  : {:?}", profile.tests_per_level);
            println!("chip-wide rounds : {}", profile.chipwide_rounds);
            println!("failures         : {}", profile.failures.len());
            println!("total budget     : {} rounds", profile.total_rounds());
            if stored.recovered {
                println!(
                    "WARNING: segment was recovered from corruption ({})",
                    if stored.complete {
                        "complete"
                    } else {
                        "partial"
                    }
                );
            }
            for cell in profile.failures.iter().take(10) {
                println!(
                    "  unit {} bank {} row {:>5} col {:>5} value {}",
                    cell.unit, cell.bank, cell.row, cell.col, cell.value as u8
                );
            }
            if profile.failures.len() > 10 {
                println!("  … {} more", profile.failures.len() - 10);
            }
            Ok(())
        }
        "top" => {
            let interval = args.u64_or("interval-ms", 500)?;
            let path = std::path::Path::new(&dir).join(FleetStatus::FILE_NAME);
            loop {
                match FleetStatus::load(&path) {
                    Ok(status) => {
                        if !once {
                            // Clear the screen and home the cursor so the
                            // panel repaints in place.
                            print!("\x1b[2J\x1b[H");
                        }
                        print!("{}", status.render());
                        if once || status.is_terminal() {
                            return Ok(());
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                        if once {
                            return Err(format!(
                                "no status surface at {} (has a fleet run started?)",
                                path.display()
                            ));
                        }
                        println!("waiting for {} ...", path.display());
                    }
                    Err(e) => return Err(format!("reading {}: {e}", path.display())),
                }
                std::thread::sleep(std::time::Duration::from_millis(interval));
            }
        }
        other => Err(format!(
            "unknown fleet subcommand {other} (use run, resume, status, show, or top)"
        )),
    }
}

fn cmd_store(argv: &[String]) -> Result<(), String> {
    let Some(sub) = argv.first() else {
        return Err("store needs a subcommand: stats, compact, or aggregate".into());
    };
    let args = Args::parse(&argv[1..])?;
    let dir = args
        .flags
        .get("dir")
        .cloned()
        .unwrap_or_else(|| "results/fleet/store".to_string());
    let recorder = InMemoryRecorder::handle();
    let rec = RecorderHandle::from(recorder.clone());
    match sub.as_str() {
        "stats" => {
            let store = ProfileStore::open_with_recorder(&dir, rec).map_err(|e| e.to_string())?;
            let stats = store.stats().map_err(|e| e.to_string())?;
            println!("store            : {dir}");
            println!("modules          : {}", stats.modules);
            println!("legacy modules   : {}", stats.legacy_modules);
            println!("l0 segments      : {}", stats.l0_segments);
            for (gen, chunks) in &stats.generation_segments {
                println!("generation {gen:>2}    : {chunks} chunk file(s)");
            }
            println!("index shards     : {}", stats.index_shards);
            println!("live records     : {}", stats.live_records);
            println!("dead records     : {}", stats.dead_records);
            println!("corrupt records  : {}", stats.corrupt_records);
            println!("total failures   : {}", stats.total_failures);
            println!("segment bytes    : {}", stats.segment_bytes);
            println!(
                "recovery events  : {}",
                recorder.counter(parbor_obs::metrics::store::RECOVERY)
            );
            println!("ledger balanced  : {}", stats.ledger_balanced);
            if !stats.ledger_balanced {
                return Err("store ledger does not balance".into());
            }
            Ok(())
        }
        "compact" => {
            let crash_phase = match args.flags.get("crash-after-phase").map(String::as_str) {
                None => None,
                Some("1") => Some(CompactPhase::Segments),
                Some("2") => Some(CompactPhase::Manifest),
                Some("3") => Some(CompactPhase::Cleanup),
                Some(other) => {
                    return Err(format!(
                        "--crash-after-phase must be 1, 2, or 3 (got {other})"
                    ))
                }
            };
            let mut store =
                ProfileStore::open_with_recorder(&dir, rec).map_err(|e| e.to_string())?;
            let report = store
                .compact_with_abort(crash_phase)
                .map_err(|e| e.to_string())?;
            if report.aborted {
                // Model a hard kill mid-compaction for the recovery smoke:
                // the on-disk state stays exactly as the crash left it.
                eprintln!("compaction crashed after phase (simulated)");
                std::process::exit(CRASH_EXIT_CODE);
            }
            println!("store            : {dir}");
            println!(
                "compacted        : {} record(s) from {} segment(s)",
                report.input_records, report.input_segments
            );
            println!(
                "generation {:>2}    : {} record(s) in {} chunk file(s), {} bytes",
                report.gen, report.output_records, report.output_segments, report.output_bytes
            );
            if report.salvaged > 0 || report.dropped > 0 {
                println!(
                    "recovered        : {} salvaged, {} dropped",
                    report.salvaged, report.dropped
                );
            }
            Ok(())
        }
        "aggregate" => {
            let store = ProfileStore::open_with_recorder(&dir, rec).map_err(|e| e.to_string())?;
            let agg = store.aggregate().map_err(|e| e.to_string())?;
            println!("store            : {dir}");
            println!("modules          : {}", agg.modules);
            println!("total failures   : {}", agg.total_failures);
            println!("distinct dists   : {}", agg.distinct_distances);
            for (distance, count) in &agg.distance_counts {
                println!("  distance {distance:>4}  : {count} module(s)");
            }
            println!(
                "failures/module  : mean {:.2}  p50 {}  p99 {}",
                agg.failures_per_module.mean,
                agg.failures_per_module.p50,
                agg.failures_per_module.p99
            );
            for (vendor, rollup) in &agg.vendors {
                println!(
                    "  vendor {vendor:<6}  : {} module(s), {} failure(s), {:.2} mean",
                    rollup.modules, rollup.failures, rollup.mean_failures
                );
            }
            if let Some(path) = args.flags.get("out") {
                let json = serde_json::to_string_pretty(&agg).map_err(|e| e.to_string())?;
                std::fs::write(path, json + "\n").map_err(|e| format!("writing {path}: {e}"))?;
                println!("aggregate written: {path}");
            }
            Ok(())
        }
        other => Err(format!(
            "unknown store subcommand {other} (use stats, compact, or aggregate)"
        )),
    }
}

const USAGE: &str =
    "usage: parbor <detect|census|compare|profile|dcref|efficacy|serve|fleet|store|obs> [--flag value]...
  detect   run the full PARBOR pipeline on a simulated module
  efficacy score pipeline detection against mechanism ground truth:
             efficacy [--vendors A,B,C] [--rows N] [--cols N] [--chips N]
                      [--seed N] [--mechanisms SPEC] [--out FILE]
             runs the full pipeline once per (vendor, mechanism) cell —
             the coupling model plus each extra mechanism in isolation —
             and reports per-cell precision/recall against the mechanism's
             truth set; --out writes the matrix as JSON
  census   device-side cell-class census (ground truth)
  compare  PARBOR vs equal-budget random-pattern testing
  profile  RAIDR-style retention-interval ladder
  dcref    refresh-policy performance comparison
  serve    thread-per-core profile-query service under synthetic load:
             serve [--vendors A,B,C] [--modules N] [--chips N] [--rows N]
                   [--cols N] [--seed N] [--store DIR] [--workers N]
                   [--queue-capacity N] [--engine inline|threads]
                   [--mode open|closed] [--rate R] [--inflight N]
                   [--seconds S] [--rescan-every N] [--stats-every N]
                   [--measure-latency true|false] [--status-out FILE]
             --store points at a fleet store (e.g. results/fleet/store) to
             serve only profiled rows; without it every row is compiled
             (ground truth). Prints a grep-stable `serve OK:` verdict and
             optionally writes the full JSON report to --status-out.
  fleet    sharded scan campaigns with checkpoint/resume:
             fleet run    --dir D [--vendors A,B,C] [--modules N] [--chips N]
                          [--rows N] [--cols N] [--seed N] [--workers N]
                          [--checkpoint-every N] [--crash-after N]
             fleet resume --dir D [--workers N] [--checkpoint-every N]
             fleet status --dir D
             fleet show   --dir D --module NAME
             fleet top    --dir D [--once] [--interval-ms N]
                          live campaign panel from status.json; --once prints
                          a single snapshot and exits
  store    columnar profile-store maintenance and rollups:
             store stats     --dir D    segment/index ledger; non-zero exit
                                        when the ledger does not balance
             store compact   --dir D [--crash-after-phase 1|2|3]
                                        merge L0 appends, older generations,
                                        and legacy JSONL into one sorted
                                        deduplicated generation; the crash
                                        flag simulates a mid-compaction kill
                                        (exits 42) for recovery testing
             store aggregate --dir D [--out FILE]
                                        streaming fleet-wide rollups: distance
                                        histogram, per-vendor failure rates
             --dir defaults to results/fleet/store
  obs      telemetry post-processing:
             obs report   [--trace results/trace.jsonl]
                          [--out results/profile.folded]
                          per-stage self/total wall-clock table + folded
                          stacks for flamegraph.pl
common flags: --vendor A|B|C  --seed N  --rows N  --chips N
              --parallel auto|always|never   row-level parallelism policy
              --kernel stencil|reference     coupling kernel implementation
backend flags (detect, fleet run/resume):
              --backend sim|replay:PATH      test-port backend; replay reads a
                                             transcript (detect: file, fleet:
                                             directory of <job>.jsonl files)
              --record PATH                  record a transcript while running
                                             (detect: file, fleet: directory)
              --record-format json|binary    transcript encoding for --record;
                                             json is grep-able, binary is
                                             compact (replay detects either)
              --inject rate=P,seed=S[,intermittent=Q]
                                             decorate the port with seeded
                                             random + intermittent bit flips
              --mechanisms SPEC              compose extra failure mechanisms
                                             into the simulated device, e.g.
                                             hammer=thresh:50k,rate:1e-3;press;
                                             drift=rate:1e-3,period:120
                                             (also: efficacy's matrix)
dcref flags : --cycles N  --mixes N  --density 8|16|32
help        : parbor --help (or -h) prints this message";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    if argv
        .iter()
        .any(|a| a == "--help" || a == "-h" || a == "help")
    {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let cmd = &argv[0];
    let result = if cmd == "fleet" {
        cmd_fleet(&argv[1..])
    } else if cmd == "store" {
        cmd_store(&argv[1..])
    } else if cmd == "obs" {
        cmd_obs(&argv[1..])
    } else {
        match Args::parse(&argv[1..]) {
            Err(e) => Err(e),
            Ok(args) => match cmd.as_str() {
                "detect" => cmd_detect(&args),
                "efficacy" => cmd_efficacy(&args),
                "census" => cmd_census(&args),
                "compare" => cmd_compare(&args),
                "profile" => cmd_profile(&args),
                "dcref" => cmd_dcref(&args),
                "serve" => cmd_serve(&args),
                other => Err(format!("unknown command {other}")),
            },
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
