//! Ablation: physical-address mapping (row-buffer locality vs bank-level
//! parallelism). The paper's system uses a Ramulator-style default; this
//! binary shows how the choice moves row-hit rates, latency, and the
//! refresh-policy gains.

use parbor_memsim::{AddressMapping, RefreshPolicyKind, Simulation, SystemConfig};
use parbor_workloads::paper_mixes;

fn main() {
    let _timer = parbor_repro::FigureTimer::start("ablation_mapping");
    let cycles = 300_000;
    let mix = &paper_mixes(1, 8, 5)[0];
    println!("Ablation: address mapping ({})\n", mix.label());
    for (label, mapping) in [
        (
            "RoRaBaCoCh (row-locality friendly)",
            AddressMapping::RoRaBaCoCh,
        ),
        (
            "RoCoRaBaCh (bank-parallelism friendly)",
            AddressMapping::RoCoRaBaCh,
        ),
    ] {
        println!("{label}:");
        let config = SystemConfig {
            mapping,
            ..SystemConfig::paper()
        };
        let mut base_insts = 0u64;
        for policy in [RefreshPolicyKind::Uniform64, RefreshPolicyKind::DcRef] {
            let report = Simulation::new(config, policy, mix, 17).run(cycles);
            if policy == RefreshPolicyKind::Uniform64 {
                base_insts = report.total_instructions();
            }
            println!(
                "  {policy:?}: {:>9} insts ({:+.1}%), row-hit {:>5.1}%, avg read lat {:>6.1} cyc",
                report.total_instructions(),
                (report.total_instructions() as f64 / base_insts as f64 - 1.0) * 100.0,
                report.row_hit_rate() * 100.0,
                report.avg_read_latency,
            );
        }
    }
}
