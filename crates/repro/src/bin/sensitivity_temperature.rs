//! Regenerates the paper's §6 temperature sensitivity claim: PARBOR's
//! neighbor locations are independent of temperature (tested at 40/45/50 °C),
//! even though the failure population grows with heat.

use parbor_core::{Parbor, ParborConfig};
use parbor_dram::{Celsius, ChipGeometry, Seconds, Vendor};
use parbor_repro::build_module;

fn main() {
    let _timer = parbor_repro::FigureTimer::start("sensitivity_temperature");
    let geometry = ChipGeometry::new(1, 128, 8192).expect("valid geometry");
    println!("Temperature sensitivity (paper §6): 40 / 45 / 50 °C\n");
    for vendor in Vendor::ALL {
        println!("Vendor {vendor}:");
        let mut reference: Option<Vec<i64>> = None;
        for temp in [40.0, 45.0, 50.0] {
            let mut module = build_module(vendor, 1, geometry).expect("module builds");
            module.set_conditions(Celsius(temp), Seconds(4.0));
            let report = Parbor::new(ParborConfig::default())
                .run(&mut module)
                .expect("pipeline runs");
            println!(
                "  {temp:>4} degC: distances {:?}, failures {}",
                report.distances(),
                report.failure_count()
            );
            match &reference {
                None => reference = Some(report.distances().to_vec()),
                Some(r) => assert_eq!(
                    r.as_slice(),
                    report.distances(),
                    "neighbor locations moved with temperature!"
                ),
            }
        }
        println!("  -> neighbor locations identical across temperatures\n");
    }
}
