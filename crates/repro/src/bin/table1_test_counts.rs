//! Regenerates **Table 1**: the number of tests PARBOR performs at each
//! recursion level, per vendor, plus the headline reduction factors.
//!
//! Paper: A = 2+8+8+24+48 = 90, B = 2+8+8+24+24 = 66, C = 90; 90×/745,654×
//! fewer tests than the O(n)/O(n²) searches.

use parbor_core::{Parbor, ParborConfig, ReductionReport};
use parbor_dram::{ChipGeometry, Vendor};
use parbor_repro::{build_module, table_row};

fn main() {
    let _timer = parbor_repro::FigureTimer::start("table1_test_counts");
    let geometry = ChipGeometry::new(1, 256, 8192).expect("valid geometry");
    println!("Table 1: number of tests performed by PARBOR\n");
    let widths = [12usize, 5, 5, 5, 5, 5, 7];
    println!(
        "{}",
        table_row(
            ["Manufacturer", "L1", "L2", "L3", "L4", "L5", "Total"]
                .map(String::from)
                .as_ref(),
            &widths
        )
    );
    let paper = [90usize, 66, 90];
    for (vendor, paper_total) in Vendor::ALL.into_iter().zip(paper) {
        let mut module = build_module(vendor, 1, geometry).expect("module builds");
        let parbor = Parbor::new(ParborConfig::default());
        let victims = parbor.discover(&mut module).expect("victims found");
        let outcome = parbor
            .locate(&mut module, &victims)
            .expect("recursion converges");
        let mut cells = vec![vendor.to_string()];
        cells.extend(outcome.tests_per_level().iter().map(|t| t.to_string()));
        cells.push(outcome.total_tests.to_string());
        println!("{}", table_row(&cells, &widths));
        let reduction = ReductionReport::new(8192, outcome.total_tests);
        println!(
            "    paper total: {paper_total}; reduction: {:.0}x vs O(n), {:.0}x vs O(n^2)",
            reduction.vs_linear, reduction.vs_quadratic
        );
    }
}
