//! `bench_report` — records a fixed-seed pipeline run and writes
//! `results/BENCH_pipeline.json`: per-phase wall-clock timings plus the
//! final counter totals. Later performance PRs diff their runs against this
//! baseline.
//!
//! The run itself is fully deterministic (default vendor-A module, seed 1);
//! only the wall-clock fields vary between machines.

use std::process::ExitCode;

use parbor_core::{Parbor, ParborConfig};
use parbor_dram::{ChipGeometry, ModuleConfig, ModuleId, Vendor};
use parbor_obs::{InMemoryRecorder, RecorderHandle, RunSummary};

const OUT: &str = "results/BENCH_pipeline.json";

fn run() -> Result<RunSummary, String> {
    let recorder = InMemoryRecorder::handle();
    let rec = RecorderHandle::from(recorder.clone());
    let mut module = ModuleConfig::new(Vendor::A)
        .geometry(ChipGeometry::new(1, 128, 8192).map_err(|e| e.to_string())?)
        .chips(8)
        .seed(1)
        .module_id(ModuleId(1))
        .build()
        .map_err(|e| e.to_string())?
        .with_recorder(rec.clone());
    let report = Parbor::new(ParborConfig::default())
        .with_recorder(rec)
        .run(&mut module)
        .map_err(|e| e.to_string())?;
    println!(
        "pipeline: {} victims, distances {:?}, {} failures, {} rounds",
        report.victim_count,
        report.distances(),
        report.failure_count(),
        report.total_rounds(),
    );
    Ok(RunSummary::from_recorder(&recorder))
}

fn main() -> ExitCode {
    match run() {
        Ok(summary) => {
            print!("{}", summary.render());
            let json = summary.to_json();
            if let Err(e) = std::fs::write(OUT, json + "\n") {
                eprintln!("error: writing {OUT}: {e}");
                return ExitCode::FAILURE;
            }
            println!("baseline written : {OUT}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
