//! `bench_report` — records a fixed-seed pipeline run and writes
//! `results/BENCH_pipeline.json`: per-phase wall-clock timings, final counter
//! totals, and a serial-vs-parallel multi-chip comparison. Later performance
//! PRs diff their runs against this baseline.
//!
//! The run itself is fully deterministic (default vendor-A module, seed 1);
//! only the wall-clock fields vary between machines. The same pipeline is
//! executed twice — once with the module's chips forced serial, once with
//! the default scoped-thread parallel path — and the results are checked for
//! equality before timings are reported.

use std::process::ExitCode;
use std::time::Instant;

use parbor_core::{Parbor, ParborConfig, ParborReport};
use parbor_dram::{ChipGeometry, DramModule, ModuleConfig, ModuleId, Vendor};
use parbor_obs::{InMemoryRecorder, RecorderHandle, RunSummary};
use serde::Serialize;

const OUT: &str = "results/BENCH_pipeline.json";

/// Serial-vs-parallel timing of the identical multi-chip pipeline run.
#[derive(Debug, Serialize)]
struct MultiChipBench {
    chips: usize,
    serial_ms: f64,
    parallel_ms: f64,
    speedup: f64,
    results_identical: bool,
}

/// The full benchmark document written to `results/BENCH_pipeline.json`.
#[derive(Debug, Serialize)]
struct BenchDoc {
    multi_chip: MultiChipBench,
    summary: RunSummary,
}

fn build_module(rec: Option<RecorderHandle>) -> Result<DramModule, String> {
    let cfg = ModuleConfig::new(Vendor::A)
        .geometry(ChipGeometry::new(1, 128, 8192).map_err(|e| e.to_string())?)
        .chips(8)
        .seed(1)
        .module_id(ModuleId(1));
    let module = cfg.build().map_err(|e| e.to_string())?;
    Ok(match rec {
        Some(rec) => module.with_recorder(rec),
        None => module,
    })
}

fn timed_run(parallel: bool) -> Result<(ParborReport, f64), String> {
    let mut module = build_module(None)?;
    module.set_parallel(parallel);
    let start = Instant::now();
    let report = Parbor::new(ParborConfig::default())
        .run(&mut module)
        .map_err(|e| e.to_string())?;
    Ok((report, start.elapsed().as_secs_f64() * 1e3))
}

fn run() -> Result<BenchDoc, String> {
    // Timed pair: identical seed, serial vs parallel chip execution.
    let (serial_report, serial_ms) = timed_run(false)?;
    let (parallel_report, parallel_ms) = timed_run(true)?;
    let results_identical = serial_report == parallel_report;
    if !results_identical {
        return Err("serial and parallel pipeline runs disagree".into());
    }

    // Recorded run for the counter/phase summary (parallel path, as shipped).
    let recorder = InMemoryRecorder::handle();
    let rec = RecorderHandle::from(recorder.clone());
    let mut module = build_module(Some(rec.clone()))?;
    let report = Parbor::new(ParborConfig::default())
        .with_recorder(rec)
        .run(&mut module)
        .map_err(|e| e.to_string())?;
    println!(
        "pipeline: {} victims, distances {:?}, {} failures, {} rounds",
        report.victim_count,
        report.distances(),
        report.failure_count(),
        report.total_rounds(),
    );
    println!(
        "multi-chip (8 chips): serial {serial_ms:.1} ms, parallel {parallel_ms:.1} ms, speedup {:.2}x",
        serial_ms / parallel_ms
    );
    Ok(BenchDoc {
        multi_chip: MultiChipBench {
            chips: 8,
            serial_ms,
            parallel_ms,
            speedup: serial_ms / parallel_ms,
            results_identical,
        },
        summary: RunSummary::from_recorder(&recorder),
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(doc) => {
            print!("{}", doc.summary.render());
            let json = serde_json::to_string_pretty(&doc).unwrap_or_else(|_| "{}".to_string());
            if let Err(e) = std::fs::write(OUT, json + "\n") {
                eprintln!("error: writing {OUT}: {e}");
                return ExitCode::FAILURE;
            }
            println!("baseline written : {OUT}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
